"""Diffusion models side by side: IC, LT, and a custom triggering model.

TIM supports the full triggering model (paper Section 4.2), of which IC and
LT are special cases.  This example runs all three on one network and shows:

* how much the *model choice* changes who the influencers are,
* that the triggering-model machinery reproduces IC when instantiated with
  IC's distribution, and
* how to define a custom triggering distribution (here: "stubborn minority"
  — each node listens to at most two random in-neighbours).

Run:  python examples/model_comparison.py
"""

from repro import build_dataset, estimate_spread, tim_plus
from repro.diffusion import ICTriggering, TriggeringDistribution, TriggeringModel


class AtMostTwoListeners(TriggeringDistribution):
    """Custom triggering distribution: each node's triggering set is at most
    two of its in-neighbours, each kept with the edge probability scaled up
    2x (capped at 1) — a crude 'limited attention' model."""

    def sample(self, node, rng):
        neighbors = self._in_adj[node]
        probs = self._in_probs[node]
        chosen = []
        order = list(range(len(neighbors)))
        rng.py.shuffle(order)
        for index in order:
            if len(chosen) == 2:
                break
            if rng.py.random() < min(1.0, 2.0 * probs[index]):
                chosen.append(neighbors[index])
        return chosen


def main() -> None:
    dataset = build_dataset("epinions", scale=0.6)
    ic_graph = dataset.weighted_for("IC")
    lt_graph = dataset.weighted_for("LT")
    print(f"network: {dataset.name} stand-in (n={ic_graph.n}, m={ic_graph.m})")

    k = 15
    runs = {}

    # Independent cascade (weighted cascade probabilities).
    runs["IC"] = tim_plus(ic_graph, k, epsilon=0.5, model="IC", rng=1)

    # Linear threshold (normalised random weights).
    runs["LT"] = tim_plus(lt_graph, k, epsilon=0.5, model="LT", rng=2)

    # Triggering model instantiated to IC — must behave like IC.
    ic_as_triggering = TriggeringModel(ICTriggering(ic_graph))
    runs["triggering(IC)"] = tim_plus(ic_graph, k, epsilon=0.5, model=ic_as_triggering, rng=1)

    # A custom distribution, only expressible through the triggering API.
    limited = TriggeringModel(AtMostTwoListeners(ic_graph))
    runs["limited-attention"] = tim_plus(ic_graph, k, epsilon=0.5, model=limited, rng=3)

    print(f"\n{'model':>18}  {'time':>6}  {'theta':>7}  {'spread (model-matched MC)':>26}")
    for label, result in runs.items():
        if label == "LT":
            graph, score_model = lt_graph, "LT"
        elif label in ("IC", "triggering(IC)"):
            graph, score_model = ic_graph, "IC"
        else:
            graph, score_model = ic_graph, limited
        spread = estimate_spread(
            graph, result.seeds, model=score_model, num_samples=1500, rng=50
        ).mean
        print(
            f"{label:>18}  {result.runtime_seconds:>5.1f}s  {result.theta:>7}  {spread:>26.1f}"
        )

    # Seed-set agreement between models.
    def overlap(a, b) -> float:
        return len(set(runs[a].seeds) & set(runs[b].seeds)) / k

    print("\nseed overlap between models:")
    print(f"  IC vs triggering(IC)   : {overlap('IC', 'triggering(IC)'):.0%}  (same distribution)")
    print(f"  IC vs LT               : {overlap('IC', 'LT'):.0%}")
    print(f"  IC vs limited-attention: {overlap('IC', 'limited-attention'):.0%}")
    print(
        "\ntakeaway: the algorithm is model-agnostic, but the *answer* is not —"
        "\nvalidate the diffusion model before trusting a seed set."
    )


if __name__ == "__main__":
    main()
