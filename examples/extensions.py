"""Extensions: time-critical campaigns and VIP-weighted objectives.

Two formulations from the paper's related/future work, both supported by the
same RR-set machinery:

* **Time-critical influence maximization** (Chen et al. [4] in the paper's
  bibliography): the campaign only counts adoptions within T propagation
  rounds.  Model: `BoundedIndependentCascade(T)`; the RR sampler truncates
  its reverse BFS at depth T.
* **Node-weighted influence maximization** (Kempe et al.'s general
  objective): nodes carry unequal benefits; RR roots are drawn proportional
  to weight.  Driver: `weighted_tim_plus`.

Run:  python examples/extensions.py
"""

import numpy as np

from repro import build_dataset, tim_plus
from repro.core import weighted_tim_plus
from repro.diffusion import BoundedIndependentCascade, estimate_spread


def time_critical_demo(graph) -> None:
    print("=" * 64)
    print("time-critical campaign: only T propagation rounds count")
    print("=" * 64)
    unbounded = tim_plus(graph, k=10, epsilon=0.5, model="IC", rng=1)
    for horizon in (1, 2, 4):
        model = BoundedIndependentCascade(horizon)
        result = tim_plus(graph, k=10, epsilon=0.5, model=model, rng=1)
        spread = estimate_spread(graph, result.seeds, model=model, num_samples=2000, rng=2)
        # How would the *unbounded* winner's seeds do under this deadline?
        lazy_spread = estimate_spread(
            graph, unbounded.seeds, model=model, num_samples=2000, rng=2
        )
        overlap = len(set(result.seeds) & set(unbounded.seeds))
        print(
            f"  T={horizon}: spread {spread.mean:7.1f} within deadline | "
            f"unbounded-optimised seeds achieve {lazy_spread.mean:7.1f} | "
            f"seed overlap with unbounded: {overlap}/10"
        )
    print(
        "  -> tight deadlines favour seeds with *fast* local reach;"
        " optimising for the wrong horizon leaves spread on the table.\n"
    )


def weighted_demo(graph) -> None:
    print("=" * 64)
    print("VIP-weighted campaign: converting some users is worth more")
    print("=" * 64)
    rng = np.random.default_rng(7)
    weights = np.ones(graph.n)
    vips = rng.choice(graph.n, size=graph.n // 20, replace=False)
    weights[vips] = 25.0  # 5% of users are 25x more valuable

    plain = tim_plus(graph, k=10, epsilon=0.5, model="IC", rng=3)
    weighted = weighted_tim_plus(graph, 10, weights, epsilon=0.5, rng=3)

    def weighted_spread(seeds) -> float:
        # MC estimate of E[sum of weights of activated nodes].
        from repro.diffusion import simulate_ic
        from repro.utils.rng import RandomSource

        source = RandomSource(11)
        runs = 2000
        total = 0.0
        for _ in range(runs):
            total += float(weights[list(simulate_ic(graph, seeds, source))].sum())
        return total / runs

    print(f"  plain TIM+ seeds    : weighted value {weighted_spread(plain.seeds):9.1f}")
    print(f"  weighted TIM+ seeds : weighted value {weighted_spread(weighted.seeds):9.1f}")
    overlap = len(set(plain.seeds) & set(weighted.seeds))
    print(f"  seed overlap: {overlap}/10")
    print("  -> when value is concentrated, the weighted objective re-targets seeds.\n")


def main() -> None:
    dataset = build_dataset("epinions", scale=0.5)
    graph = dataset.weighted_for("IC")
    print(f"network: {dataset.name} stand-in (n={graph.n}, m={graph.m})\n")
    time_critical_demo(graph)
    weighted_demo(graph)


if __name__ == "__main__":
    main()
