"""Outbreak containment: vaccinating super-spreaders.

The paper frames IC propagation as "the spread of an infectious disease"
(Section 2.1).  Flip the marketing story: on a contact network with
community structure, which k individuals would — if infected — cause the
largest expected outbreak?  Those are the ones to vaccinate or monitor.

This example also demonstrates using your *own* graph (built edge by edge
from a generator) rather than a bundled stand-in, and inspecting how seeds
distribute across communities.

Run:  python examples/outbreak_detection.py
"""

from collections import Counter

from repro import estimate_spread, tim_plus
from repro.graphs import constant_probability, planted_partition_digraph

NUM_PEOPLE = 400
NUM_COMMUNITIES = 4
TRANSMISSION_PROBABILITY = 0.06


def main() -> None:
    # A contact network: dense within households/workplaces (communities),
    # sparse across them; every contact transmits with fixed probability.
    contacts = planted_partition_digraph(
        NUM_PEOPLE, NUM_COMMUNITIES, p_in=0.08, p_out=0.004, rng=42
    )
    network = constant_probability(contacts, TRANSMISSION_PROBABILITY)
    print(
        f"contact network: {network.n} people, {network.m} directed contacts, "
        f"{NUM_COMMUNITIES} communities, transmission p={TRANSMISSION_PROBABILITY}"
    )

    # The k most dangerous potential patient-zeros = the influence-maximal
    # seed set under IC.
    k = 12
    result = tim_plus(network, k=k, epsilon=0.4, model="IC", rng=7)
    outbreak = estimate_spread(network, result.seeds, num_samples=4000, rng=8)
    print(f"\ntop {k} super-spreaders: {sorted(result.seeds)}")
    print(f"expected outbreak if all infected: {outbreak.mean:.1f} people")

    # Community coverage: maximizing spread should diversify across
    # communities rather than stacking one (overlapping audiences waste
    # marginal gain — submodularity at work).
    communities = Counter(node % NUM_COMMUNITIES for node in result.seeds)
    print("\nsuper-spreaders per community:")
    for community in range(NUM_COMMUNITIES):
        bar = "#" * communities.get(community, 0)
        print(f"  community {community}: {communities.get(community, 0):2d} {bar}")
    assert len(communities) == NUM_COMMUNITIES, "expected spread across all communities"

    # Vaccination what-if: remove the super-spreaders' outgoing contacts and
    # measure how much a random outbreak shrinks.
    import numpy as np

    vaccinated = set(result.seeds)
    keep = np.array([u not in vaccinated for u in network.src.tolist()])
    from repro.graphs import DiGraph

    protected = DiGraph(network.n, network.src[keep], network.dst[keep], network.prob[keep])

    rng_seed = 9
    random_patients = [5, 77, 201]  # arbitrary patient zeros, unvaccinated
    before = estimate_spread(network, random_patients, num_samples=4000, rng=rng_seed)
    after = estimate_spread(protected, random_patients, num_samples=4000, rng=rng_seed)
    reduction = (1 - after.mean / before.mean) * 100
    print(
        f"\noutbreak from patients {random_patients}: "
        f"{before.mean:.1f} -> {after.mean:.1f} people after vaccinating "
        f"{k} super-spreaders ({reduction:.0f}% smaller)"
    )


if __name__ == "__main__":
    main()
