"""Viral marketing: choosing influencers under a budget.

The paper's motivating application (Section 1): a company gives free samples
to k influencers on a follower network and wants the cascade of adoptions
maximised.  This example runs on the Twitter stand-in and answers the two
questions a marketing team actually asks:

1. *Who* should get the samples, and how does the answer change with budget?
2. *Is the fancy algorithm worth it* versus just picking celebrities
   (max-degree) or random users?

It also shows the diminishing returns (submodularity) that justify small
budgets.

Run:  python examples/viral_marketing.py
"""

from repro import build_dataset, estimate_spread, maximize_influence


BUDGETS = (1, 5, 10, 25, 50)


def main() -> None:
    dataset = build_dataset("twitter", scale=0.4)
    graph = dataset.weighted_for("IC")
    print(
        f"follower network: {dataset.name} stand-in "
        f"(n={graph.n}, m={graph.m}, avg followees={graph.m / graph.n:.1f})"
    )

    print(f"\n{'budget k':>8}  {'TIM+':>10}  {'celebrities':>11}  {'random':>8}  {'TIM+ vs celeb':>13}")
    tim_spreads: list[float] = []
    for k in BUDGETS:
        tim_result = maximize_influence(
            graph, k, algorithm="tim+", model="IC", epsilon=0.5, rng=10 + k
        )
        celeb_result = maximize_influence(graph, k, algorithm="degree", model="IC")
        random_result = maximize_influence(graph, k, algorithm="random", model="IC", rng=k)

        def score(seeds):
            return estimate_spread(graph, seeds, model="IC", num_samples=2000, rng=99).mean

        tim_spread = score(tim_result.seeds)
        celeb_spread = score(celeb_result.seeds)
        random_spread = score(random_result.seeds)
        tim_spreads.append(tim_spread)
        print(
            f"{k:>8}  {tim_spread:>10.1f}  {celeb_spread:>11.1f}  {random_spread:>8.1f}"
            f"  {(tim_spread / celeb_spread - 1) * 100:>+12.1f}%"
        )

    # Diminishing returns: the marginal value of budget shrinks — the
    # submodularity that underpins the (1 - 1/e - eps) guarantee.
    print("\nmarginal value of additional budget (TIM+):")
    for i in range(1, len(BUDGETS)):
        extra_seeds = BUDGETS[i] - BUDGETS[i - 1]
        extra_spread = tim_spreads[i] - tim_spreads[i - 1]
        print(
            f"  seeds {BUDGETS[i - 1]:>2} -> {BUDGETS[i]:>2}: "
            f"+{extra_spread:6.1f} adopters ({extra_spread / extra_seeds:5.1f} per extra seed)"
        )

    print(
        "\ntakeaway: influence maximization beats celebrity-picking because it"
        "\naccounts for audience overlap — and returns diminish, so small seed"
        "\nbudgets capture most of the value."
    )


if __name__ == "__main__":
    main()
