"""Quickstart: influence maximization with TIM+ in five minutes.

Builds the NetHEPT stand-in network, selects 20 seeds with TIM+ under the
independent cascade model, scores them with an independent Monte-Carlo
estimator, and compares against the cheap max-degree heuristic.

Run:  python examples/quickstart.py
"""

from repro import build_dataset, estimate_spread, maximize_influence, tim_plus


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A social network.  Stand-ins for the paper's five datasets ship
    #    with the library; weighted_for("IC") applies the weighted-cascade
    #    probabilities p(e) = 1/indeg the paper uses for the IC model.
    # ------------------------------------------------------------------
    dataset = build_dataset("nethept")
    graph = dataset.weighted_for("IC")
    print(f"network: {dataset.name} stand-in, n={graph.n} nodes, m={graph.m} arcs")

    # ------------------------------------------------------------------
    # 2. Run TIM+.  epsilon trades accuracy for speed (theta grows with
    #    1/eps^2); ell controls the failure probability 1 - n^-ell.
    # ------------------------------------------------------------------
    result = tim_plus(graph, k=20, epsilon=0.3, ell=1.0, rng=0)
    print(f"\nTIM+ selected {len(result.seeds)} seeds in {result.runtime_seconds:.2f}s")
    print(f"  seeds           : {result.seeds}")
    print(f"  KPT*  (Alg. 2)  : {result.kpt_star:.1f}")
    print(f"  KPT+  (Alg. 3)  : {result.kpt_plus:.1f}  <- refinement tightened the bound")
    print(f"  theta (RR sets) : {result.theta}")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:22s}: {seconds:.3f}s")

    # ------------------------------------------------------------------
    # 3. Score the seed set with fresh Monte-Carlo simulations (the
    #    estimate TIM+ used internally is from its own RR sets; always
    #    validate with an independent estimator, as the paper does).
    # ------------------------------------------------------------------
    score = estimate_spread(graph, result.seeds, model="IC", num_samples=5000, rng=1)
    low, high = score.confidence_interval()
    print(f"\nexpected spread: {score.mean:.1f} nodes (95% CI [{low:.1f}, {high:.1f}])")

    # ------------------------------------------------------------------
    # 4. Compare with a cheap heuristic via the uniform front door.
    # ------------------------------------------------------------------
    degree = maximize_influence(graph, 20, algorithm="degree")
    degree_score = estimate_spread(graph, degree.seeds, num_samples=5000, rng=2)
    print(f"max-degree spread: {degree_score.mean:.1f} nodes")
    advantage = (score.mean / degree_score.mean - 1) * 100
    print(f"TIM+ advantage: {advantage:+.1f}%")


if __name__ == "__main__":
    main()
