"""End-to-end quality tests: every algorithm against exact optima.

The approximation guarantee is (1 − 1/e − ε) ≈ 0.13 for ε = 0.5, but on
these tiny instances TIM-family results are near-optimal; we assert the
*theoretical* bound strictly and near-optimality loosely.
"""

import pytest

from repro.algorithms import maximize_influence
from repro.analysis import brute_force_opt, exact_spread_ic, exact_spread_lt
from repro.graphs import GraphBuilder


@pytest.fixture(scope="module")
def arena():
    """10 nodes / 14 probabilistic edges, exactly enumerable under IC."""
    builder = GraphBuilder(num_nodes=10)
    edges = [
        (0, 1, 0.8),
        (0, 2, 0.8),
        (1, 3, 0.5),
        (2, 3, 0.5),
        (3, 4, 0.5),
        (5, 6, 0.9),
        (6, 7, 0.9),
        (7, 8, 0.2),
        (8, 9, 0.2),
        (9, 5, 0.2),
        (4, 5, 0.1),
        (2, 6, 0.3),
        (1, 8, 0.1),
        (0, 9, 0.1),
    ]
    builder.add_edges_from(edges)
    return builder.build()


@pytest.fixture(scope="module")
def arena_opt(arena):
    return brute_force_opt(arena, 2, "IC")


# RIS gets a generous tau constant: at small budgets its cost-threshold
# stopping rule yields few, *correlated* RR sets and can misrank clear
# winners — exactly the failure mode the paper's Section 2.3 describes.
GUARANTEED_IC = [
    ("tim", {"epsilon": 0.5, "rng": 1}),
    ("tim+", {"epsilon": 0.5, "rng": 2}),
    ("ris", {"epsilon": 0.5, "rng": 3, "tau_constant": 4.0}),
    ("greedy", {"num_runs": 300, "rng": 4}),
    ("celf", {"num_runs": 300, "rng": 5}),
    ("celf++", {"num_runs": 300, "rng": 6}),
]


class TestApproximationGuaranteesIC:
    @pytest.mark.parametrize("algorithm,kwargs", GUARANTEED_IC)
    def test_beats_theoretical_ratio(self, arena, arena_opt, algorithm, kwargs):
        _, opt = arena_opt
        result = maximize_influence(arena, 2, algorithm=algorithm, model="IC", **kwargs)
        achieved = exact_spread_ic(arena, result.seeds)
        ratio = achieved / opt
        # Theoretical floor (1 - 1/e - 0.5) ~ 0.13; these methods actually
        # land far higher on small instances — assert a meaningful 0.75.
        assert ratio >= 0.75, f"{algorithm}: {achieved:.3f} vs OPT {opt:.3f}"

    def test_tim_plus_near_optimal_here(self, arena, arena_opt):
        _, opt = arena_opt
        result = maximize_influence(arena, 2, algorithm="tim+", model="IC", epsilon=0.3, rng=7)
        achieved = exact_spread_ic(arena, result.seeds)
        assert achieved >= 0.9 * opt

    def test_heuristics_above_random_floor(self, arena, arena_opt):
        _, opt = arena_opt
        for algorithm in ("degree", "degree-discount", "pagerank", "irie"):
            result = maximize_influence(arena, 2, algorithm=algorithm, model="IC", rng=8)
            achieved = exact_spread_ic(arena, result.seeds)
            assert achieved >= 0.4 * opt, algorithm


class TestApproximationGuaranteesLT:
    @pytest.fixture(scope="class")
    def lt_arena(self):
        builder = GraphBuilder(num_nodes=7)
        edges = [
            (0, 1, 0.9),
            (1, 2, 0.8),
            (2, 3, 0.5),
            (4, 5, 0.9),
            (5, 6, 0.5),
            (0, 5, 0.1),
            (3, 4, 0.1),
        ]
        builder.add_edges_from(edges)
        return builder.build()

    def test_tim_plus_lt(self, lt_arena):
        _, opt = brute_force_opt(lt_arena, 2, "LT")
        result = maximize_influence(
            lt_arena, 2, algorithm="tim+", model="LT", epsilon=0.4, rng=9
        )
        achieved = exact_spread_lt(lt_arena, result.seeds)
        assert achieved >= 0.85 * opt

    def test_simpath_lt(self, lt_arena):
        _, opt = brute_force_opt(lt_arena, 2, "LT")
        result = maximize_influence(lt_arena, 2, algorithm="simpath", model="LT")
        achieved = exact_spread_lt(lt_arena, result.seeds)
        assert achieved >= 0.85 * opt


class TestCrossAlgorithmConsistency:
    def test_guaranteed_methods_agree_on_clear_winner(self, arena):
        """On this arena the top singleton is unambiguous; every guaranteed
        method must find the same k=1 seed."""
        best = max(range(arena.n), key=lambda v: exact_spread_ic(arena, [v]))
        for algorithm, kwargs in GUARANTEED_IC:
            result = maximize_influence(arena, 1, algorithm=algorithm, model="IC", **kwargs)
            assert result.seeds == [best], algorithm

    def test_spread_estimates_close_to_exact(self, arena):
        result = maximize_influence(arena, 2, algorithm="tim+", model="IC", epsilon=0.3, rng=10)
        exact = exact_spread_ic(arena, result.seeds)
        # TIM's internal estimate n·F_R(S) should approximate the truth.
        assert result.estimated_spread == pytest.approx(exact, rel=0.25)
