"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "tim+"
        assert args.k == 10

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "nethept" in out
        assert "twitter" in out

    def test_run_tim_plus(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "nethept",
                "--scale",
                "0.05",
                "-k",
                "3",
                "--epsilon",
                "0.5",
                "--seed",
                "1",
                "--score-samples",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TIM+" in out
        assert "seeds" in out
        assert "MC spread" in out

    def test_run_heuristic(self, capsys):
        code = main(
            ["run", "--algorithm", "degree", "--dataset", "nethept", "--scale", "0.05", "-k", "2"]
        )
        assert code == 0
        assert "MaxDegree" in capsys.readouterr().out

    def test_run_from_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 3\n0 2\n")
        code = main(
            ["run", "--dataset", f"@{path}", "-k", "1", "--epsilon", "0.5", "--seed", "2"]
        )
        assert code == 0
        assert "seeds" in capsys.readouterr().out

    def test_run_with_horizon(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "nethept",
                "--scale",
                "0.05",
                "-k",
                "2",
                "--epsilon",
                "0.5",
                "--horizon",
                "2",
            ]
        )
        assert code == 0
        assert "bounded-IC" in capsys.readouterr().out

    def test_horizon_requires_ic(self):
        import pytest

        with pytest.raises(SystemExit, match="IC model"):
            main(
                [
                    "run",
                    "--dataset",
                    "nethept",
                    "--scale",
                    "0.05",
                    "--model",
                    "LT",
                    "-k",
                    "2",
                    "--horizon",
                    "2",
                ]
            )

    def test_spread(self, capsys):
        code = main(
            [
                "spread",
                "--dataset",
                "nethept",
                "--scale",
                "0.05",
                "--seeds",
                "0,1,2",
                "--samples",
                "200",
            ]
        )
        assert code == 0
        assert "E[I(S)]" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "[table-2]" in out
        assert "livejournal" in out

    def test_experiment_section5(self, capsys):
        assert main(["experiment", "section5"]) == 0
        out = capsys.readouterr().out
        assert "[section-5]" in out
        assert "greedy/tim" in out
