"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "tim+"
        assert args.k == 10

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "nethept" in out
        assert "twitter" in out

    def test_run_tim_plus(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "nethept",
                "--scale",
                "0.05",
                "-k",
                "3",
                "--epsilon",
                "0.5",
                "--seed",
                "1",
                "--score-samples",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TIM+" in out
        assert "seeds" in out
        assert "MC spread" in out

    def test_run_heuristic(self, capsys):
        code = main(
            ["run", "--algorithm", "degree", "--dataset", "nethept", "--scale", "0.05", "-k", "2"]
        )
        assert code == 0
        assert "MaxDegree" in capsys.readouterr().out

    def test_run_from_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 3\n0 2\n")
        code = main(
            ["run", "--dataset", f"@{path}", "-k", "1", "--epsilon", "0.5", "--seed", "2"]
        )
        assert code == 0
        assert "seeds" in capsys.readouterr().out

    def test_run_with_horizon(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "nethept",
                "--scale",
                "0.05",
                "-k",
                "2",
                "--epsilon",
                "0.5",
                "--horizon",
                "2",
            ]
        )
        assert code == 0
        assert "bounded-IC" in capsys.readouterr().out

    def test_horizon_requires_ic(self):
        import pytest

        with pytest.raises(SystemExit, match="IC model"):
            main(
                [
                    "run",
                    "--dataset",
                    "nethept",
                    "--scale",
                    "0.05",
                    "--model",
                    "LT",
                    "-k",
                    "2",
                    "--horizon",
                    "2",
                ]
            )

    def test_spread(self, capsys):
        code = main(
            [
                "spread",
                "--dataset",
                "nethept",
                "--scale",
                "0.05",
                "--seeds",
                "0,1,2",
                "--samples",
                "200",
            ]
        )
        assert code == 0
        assert "E[I(S)]" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "[table-2]" in out
        assert "livejournal" in out

    def test_experiment_section5(self, capsys):
        assert main(["experiment", "section5"]) == 0
        out = capsys.readouterr().out
        assert "[section-5]" in out
        assert "greedy/tim" in out


class TestEngineFlag:
    def test_engine_threaded_to_tim(self, capsys):
        for engine in ("vectorized", "python"):
            code = main(
                [
                    "run", "--algorithm", "tim", "--dataset", "nethept",
                    "--scale", "0.05", "-k", "2", "--epsilon", "0.5",
                    "--seed", "3", "--engine", engine,
                ]
            )
            assert code == 0
            assert "seeds" in capsys.readouterr().out

    def test_engine_accepted_for_ris(self, capsys):
        code = main(
            [
                "run", "--algorithm", "ris", "--dataset", "nethept",
                "--scale", "0.05", "-k", "2", "--epsilon", "0.5",
                "--seed", "3", "--engine", "python",
            ]
        )
        assert code == 0

    def test_engine_rejected_for_heuristics(self):
        import pytest

        with pytest.raises(SystemExit, match="--engine"):
            main(
                [
                    "run", "--algorithm", "degree", "--dataset", "nethept",
                    "--scale", "0.05", "-k", "2", "--engine", "python",
                ]
            )

    def test_engine_choices_validated(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "turbo"])


class TestSharedExecutionFlags:
    """--engine/--jobs/--trace-edges come from one parent parser, so the
    flag set (names, choices, defaults) is identical on every subcommand
    that samples RR sets."""

    SUBCOMMANDS = {
        "run": [],
        "sketch": ["--out", "x.npz"],
        "serve": [],
        "update": ["--sketch", "s.npz", "--updates", "u.jsonl", "--out", "x.npz"],
    }

    def test_every_sampling_subcommand_has_the_flags(self):
        parser = build_parser()
        for command, extra in self.SUBCOMMANDS.items():
            args = parser.parse_args(
                [command, *extra, "--engine", "python", "--jobs", "2",
                 "--trace-edges"]
            )
            assert args.engine == "python"
            assert args.jobs == 2
            assert args.trace_edges is True

    def test_unset_flags_default_to_none_for_env_layering(self):
        for command, extra in self.SUBCOMMANDS.items():
            args = build_parser().parse_args([command, *extra])
            assert args.engine is None
            assert args.jobs is None
            assert args.trace_edges is None

    def test_no_trace_edges_is_an_explicit_false(self):
        args = build_parser().parse_args(["sketch", "--out", "x.npz",
                                          "--no-trace-edges"])
        assert args.trace_edges is False

    def test_env_layer_feeds_run(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_ENGINE", "python")
        code = main(
            ["run", "--dataset", "nethept", "--scale", "0.05", "-k", "2",
             "--epsilon", "0.5", "--seed", "3"]
        )
        assert code == 0
        assert "seeds" in capsys.readouterr().out

    def test_cli_flag_beats_env(self, monkeypatch):
        from repro.api import ExecutionPolicy

        monkeypatch.setenv("REPRO_JOBS", "8")
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        args = build_parser().parse_args(
            ["run", "--jobs", "2", "--engine", "python"])
        policy = ExecutionPolicy.from_args(args)
        assert policy.jobs == 2
        assert policy.engine == "python"

    def test_env_epsilon_reaches_sketch_and_serve(self, monkeypatch):
        from repro.cli import _SERVING_DEFAULTS, _resolve_policy

        monkeypatch.setenv("REPRO_EPSILON", "0.05")
        args = build_parser().parse_args(["sketch", "--out", "x.npz"])
        assert _resolve_policy(args, base=_SERVING_DEFAULTS).epsilon == 0.05
        # the explicit flag still wins over the environment
        args = build_parser().parse_args(
            ["serve", "--epsilon", "0.4"])
        assert _resolve_policy(args, base=_SERVING_DEFAULTS).epsilon == 0.4
        # and without either, the serving default holds
        monkeypatch.delenv("REPRO_EPSILON")
        args = build_parser().parse_args(["sketch", "--out", "x.npz"])
        assert _resolve_policy(args, base=_SERVING_DEFAULTS).epsilon == 0.3

    def test_trace_edges_rejected_on_run(self):
        import pytest

        # run never persists a sketch: the flag would be a silent no-op,
        # so it is rejected for every algorithm, TIM family included.
        for algorithm in ("degree", "tim+"):
            with pytest.raises(SystemExit, match="--trace-edges"):
                main(
                    ["run", "--algorithm", algorithm, "--dataset", "nethept",
                     "--scale", "0.05", "-k", "2", "--trace-edges"]
                )

    def test_ris_keeps_its_historical_epsilon_default(self, monkeypatch, capsys):
        # No flags/env: the run policy for ris is based at epsilon 0.2, so
        # the CLI default matches the bare ris() library call.
        from repro.cli import _RIS_DEFAULTS, _resolve_policy

        assert _RIS_DEFAULTS.epsilon == 0.2
        args = build_parser().parse_args(["run", "--algorithm", "ris"])
        assert _resolve_policy(args, base=_RIS_DEFAULTS).epsilon == 0.2
        monkeypatch.setenv("REPRO_EPSILON", "0.45")
        assert _resolve_policy(args, base=_RIS_DEFAULTS).epsilon == 0.45

    def test_run_seeds_identical_with_and_without_flags(self, capsys):
        """The policy path resolves to the same execution as the old
        per-flag path: equal seeds for equal CLI seeds."""
        argv = ["run", "--dataset", "nethept", "--scale", "0.05", "-k", "2",
                "--epsilon", "0.5", "--seed", "3"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main([*argv, "--engine", "vectorized"]) == 0
        flagged = capsys.readouterr().out
        seeds = [line for line in plain.splitlines() if "seeds" in line]
        assert seeds == [line for line in flagged.splitlines() if "seeds" in line]


class TestSketchAndServe:
    def _build_sketch(self, tmp_path, capsys):
        out = tmp_path / "nh.npz"
        code = main(
            [
                "sketch", "--dataset", "nethept", "--scale", "0.05",
                "--model", "IC", "--theta", "500", "--seed", "7",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "rr sets" in capsys.readouterr().out
        assert out.exists()
        return out

    def test_sketch_build_and_serve_batch(self, tmp_path, capsys):
        import json

        sketch = self._build_sketch(tmp_path, capsys)
        batch = tmp_path / "queries.jsonl"
        lines = [json.dumps({"op": "select", "k": k}) for k in (1, 2, 3)]
        lines.append(json.dumps({"op": "spread", "seeds": [0, 1]}))
        lines.append(json.dumps({"op": "stats"}))
        batch.write_text("\n".join(lines) + "\n")
        code = main(
            [
                "serve", "--dataset", "nethept", "--scale", "0.05",
                "--model", "IC", "--sketch", str(sketch), "--mmap",
                "--batch", str(batch), "--seed", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        responses = [json.loads(line) for line in out.strip().splitlines()]
        assert len(responses) == 5
        assert all(response["ok"] for response in responses)
        # The preloaded sketch serves every query: no cold builds.
        assert all(r["cache"] == "hit" for r in responses if r["cache"] != "n/a")

    def test_serve_reports_errors_in_exit_code(self, tmp_path, capsys):
        batch = tmp_path / "bad.jsonl"
        batch.write_text('{"op": "unknown"}\n')
        code = main(
            [
                "serve", "--dataset", "nethept", "--scale", "0.05",
                "--theta", "200", "--batch", str(batch), "--seed", "1",
            ]
        )
        assert code == 1
        capsys.readouterr()

    def test_serve_save_sketch_roundtrip(self, tmp_path, capsys):
        import json

        batch = tmp_path / "queries.jsonl"
        batch.write_text(json.dumps({"op": "select", "k": 2}) + "\n")
        saved = tmp_path / "grown.npz"
        code = main(
            [
                "serve", "--dataset", "nethept", "--scale", "0.05",
                "--theta", "300", "--batch", str(batch), "--seed", "1",
                "--save-sketch", str(saved),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert saved.exists()

    def test_stale_sketch_rejected(self, tmp_path, capsys):
        sketch = self._build_sketch(tmp_path, capsys)
        import pytest

        from repro.sketch import SketchGraphMismatchError

        with pytest.raises(SketchGraphMismatchError):
            main(
                [
                    "serve", "--dataset", "nethept", "--scale", "0.1",
                    "--sketch", str(sketch), "--batch", str(tmp_path / "none.jsonl"),
                ]
            )
