"""Statistical verification of the paper's key lemmas on exact oracles.

All tests run at fixed seeds with tolerances wide enough to be deterministic
in practice (≥5σ), yet tight enough that a wrong implementation (e.g. biased
RR sampling) fails decisively.
"""

import pytest

from repro.analysis import (
    estimate_ept,
    exact_activation_probability_ic,
    exact_spread_ic,
    sample_indegree_weighted_node,
)
from repro.graphs import GraphBuilder, gnm_random_digraph, weighted_cascade
from repro.rrset import RRCollection, make_rr_sampler
from repro.utils.rng import RandomSource


@pytest.fixture
def oracle_graph():
    """8 nodes, 12 random-probability edges — enumerable exactly."""
    builder = GraphBuilder(num_nodes=8)
    edges = [
        (0, 1, 0.5),
        (1, 2, 0.4),
        (2, 3, 0.6),
        (0, 4, 0.3),
        (4, 5, 0.7),
        (5, 1, 0.2),
        (3, 6, 0.5),
        (6, 7, 0.8),
        (7, 0, 0.1),
        (2, 5, 0.3),
        (4, 2, 0.4),
        (1, 6, 0.25),
    ]
    builder.add_edges_from(edges)
    return builder.build()


class TestLemma2:
    """RR-set overlap probability == activation probability."""

    @pytest.mark.parametrize("target,seeds", [(3, [0]), (6, [0, 4]), (1, [5]), (7, [2])])
    def test_overlap_equals_activation(self, oracle_graph, target, seeds):
        exact_rho2 = exact_activation_probability_ic(oracle_graph, seeds, target)
        sampler = make_rr_sampler(oracle_graph, "IC")
        rng = RandomSource(1000 + target)
        runs = 8000
        overlaps = 0
        for _ in range(runs):
            nodes = sampler.sample_rooted(target, rng).nodes
            if any(s in nodes for s in seeds):
                overlaps += 1
        rho1 = overlaps / runs
        assert rho1 == pytest.approx(exact_rho2, abs=0.03)


class TestCorollary1:
    """E[n · F_R(S)] == E[I(S)]."""

    @pytest.mark.parametrize("seeds", [[0], [0, 2], [1, 4, 7]])
    def test_rr_spread_estimator_unbiased(self, oracle_graph, seeds):
        exact = exact_spread_ic(oracle_graph, seeds)
        sampler = make_rr_sampler(oracle_graph, "IC")
        collection = RRCollection(oracle_graph.n, oracle_graph.m)
        collection.extend(sampler.sample_many(20000, RandomSource(7)))
        estimate = collection.estimate_spread(seeds)
        assert estimate == pytest.approx(exact, abs=0.15)


class TestLemma4:
    """(n/m) · EPT == E[I({v*})] with v* in-degree weighted."""

    def test_identity_on_wc_graph(self):
        graph = weighted_cascade(gnm_random_digraph(40, 160, rng=11))
        sampler = make_rr_sampler(graph, "IC")
        rng = RandomSource(12)
        ept = estimate_ept(sampler, num_samples=12000, rng=rng)
        lhs = graph.n / graph.m * ept

        # Right side: two-level MC over v* and the propagation process.
        from repro.diffusion import simulate_ic

        rng2 = RandomSource(13)
        runs = 12000
        total = 0
        for _ in range(runs):
            v_star = sample_indegree_weighted_node(graph, rng2)
            total += len(simulate_ic(graph, [v_star], rng2))
        rhs = total / runs
        assert lhs == pytest.approx(rhs, rel=0.08)


class TestLemma3Empirically:
    """With θ from Equation 2, n·F_R(S) lands within (ε/2)·OPT of E[I(S)]."""

    def test_estimator_within_band(self, oracle_graph):
        from repro.analysis import brute_force_opt
        from repro.core.parameters import lambda_param, theta_from_kpt

        k, epsilon, ell = 2, 0.5, 1.0
        _, opt = brute_force_opt(oracle_graph, k, "IC")
        theta = theta_from_kpt(lambda_param(oracle_graph.n, k, epsilon, ell), opt)
        sampler = make_rr_sampler(oracle_graph, "IC")
        collection = RRCollection(oracle_graph.n, oracle_graph.m)
        collection.extend(sampler.sample_many(theta, RandomSource(21)))
        # Check the band for a handful of seed sets, as Lemma 3 promises
        # for every set simultaneously whp.
        for seeds in ([0, 1], [2, 3], [4, 7], [0, 6]):
            estimate = collection.estimate_spread(seeds)
            exact = exact_spread_ic(oracle_graph, seeds)
            assert abs(estimate - exact) < epsilon / 2 * opt
