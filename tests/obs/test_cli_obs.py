"""The observability CLI surface: --metrics-out and `repro obs ...`."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.export import read_jsonl


@pytest.fixture
def run_metrics(tmp_path):
    """A metrics JSONL produced by an instrumented `repro run`."""
    path = tmp_path / "run_metrics.jsonl"
    code = main([
        "run", "--dataset", "nethept", "--scale", "0.05", "-k", "3",
        "--epsilon", "0.5", "--seed", "1", "--metrics-out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_metrics_out_on_execution_commands(self):
        for command in (["run"], ["sketch", "--out", "s.npz"], ["serve"],
                        ["update", "--sketch", "s.npz",
                         "--updates", "u.jsonl", "--out", "s2.npz"]):
            args = build_parser().parse_args(command + ["--metrics-out", "m.jsonl"])
            assert args.metrics_out == "m.jsonl"

    def test_obs_subcommand(self):
        args = build_parser().parse_args(["obs", "report", "m.jsonl"])
        assert (args.action, args.path) == ("report", "m.jsonl")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "dance", "m.jsonl"])


class TestMetricsOut:
    def test_run_writes_spans_and_metrics(self, run_metrics, capsys):
        capsys.readouterr()
        data = read_jsonl(run_metrics)
        assert data["meta"]["command"] == "run"
        groups = {span["name"].split(".", 1)[0] for span in data["spans"]}
        assert {"kpt", "sampling", "selection"} <= groups
        assert any(name.startswith("span.") for name in data["metrics"])

    def test_obs_report_and_prom_and_check(self, run_metrics, tmp_path, capsys):
        assert main(["obs", "report", str(run_metrics)]) == 0
        report = capsys.readouterr().out
        assert "== phases ==" in report and "kpt" in report

        assert main(["obs", "prom", str(run_metrics)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE" in prom

        prom_path = tmp_path / "metrics.prom"
        prom_path.write_text(prom, encoding="utf-8")
        assert main(["obs", "check", str(prom_path)]) == 0
        assert "valid Prometheus" in capsys.readouterr().out

    def test_obs_check_rejects_corrupt_text(self, tmp_path, capsys):
        bad = tmp_path / "bad.prom"
        bad.write_text("# TYPE foo flotilla\nfoo{le=} }{\n", encoding="utf-8")
        assert main(["obs", "check", str(bad)]) == 1
        assert "bad.prom" in capsys.readouterr().err

    def test_serve_batch_exports_phase_spans(self, tmp_path, capsys):
        batch = tmp_path / "batch.jsonl"
        requests = [
            {"op": "select", "schema_version": 1, "k": 3},
            {"op": "select", "schema_version": 1, "k": 5},
            {"op": "update", "schema_version": 1, "action": "delete",
             "u": 0, "v": 1},
            {"op": "stats", "schema_version": 1},
        ]
        batch.write_text(
            "\n".join(json.dumps(r) for r in requests) + "\n", encoding="utf-8")
        metrics = tmp_path / "serve_metrics.jsonl"
        code = main([
            "serve", "--dataset", "nethept", "--scale", "0.05",
            "--epsilon", "0.5", "--seed", "7",
            "--batch", str(batch), "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        stats_line = json.loads(out.strip().splitlines()[-1])
        phases = stats_line["result"]["phases"]
        assert {"kpt", "sampling", "selection", "repair"} <= set(phases)
        data = read_jsonl(metrics)
        groups = {span["name"].split(".", 1)[0] for span in data["spans"]}
        assert {"kpt", "sampling", "selection", "repair", "serve"} <= groups
        latency = data["metrics"]["service.request_latency_ms"]
        assert latency["count"] == 4
        assert latency["p50"] <= latency["p99"]
