"""The span tracer: zero-overhead off switch, nesting, capacity, rollups."""

import numpy as np
import pytest

from repro.obs import runtime as obs
from repro.obs.registry import Histogram


class TestDisabledPath:
    def test_disabled_by_default_in_tests(self):
        assert not obs.enabled()

    def test_trace_returns_shared_noop_singleton(self):
        """Off means off: every trace() call hands back the same object —
        no allocation, no span, no metric."""
        first = obs.trace("kpt.estimate")
        second = obs.trace("sampling.ic_batch", sets=10)
        assert first is second
        with first:
            pass
        assert obs.spans() == []
        assert len(obs.registry()) == 0

    def test_recording_helpers_are_noops_when_disabled(self):
        obs.add("rr.sets", 5)
        obs.gauge_set("pool.size", 3)
        obs.observe("x", 0.5)
        obs.observe_many("y", np.asarray([1.0, 2.0]))
        assert len(obs.registry()) == 0

    def test_now_is_live_even_when_disabled(self):
        start = obs.now()
        assert obs.now() >= start


class TestSpans:
    def test_span_records_duration_and_labels(self):
        obs.configure(enabled=True)
        with obs.trace("kpt.estimate", k=5):
            pass
        (span,) = obs.spans()
        assert span.name == "kpt.estimate"
        assert span.labels == {"k": 5}
        assert span.seconds >= 0.0
        assert span.depth == 0 and span.parent is None

    def test_nesting_depth_and_parent(self):
        obs.configure(enabled=True)
        with obs.trace("serve.request"):
            with obs.trace("sketch.select"):
                with obs.trace("selection.greedy"):
                    pass
        names = [s.name for s in obs.spans()]
        # Spans complete innermost-first.
        assert names == ["selection.greedy", "sketch.select", "serve.request"]
        by_name = {s.name: s for s in obs.spans()}
        assert by_name["serve.request"].depth == 0
        assert by_name["sketch.select"].depth == 1
        assert by_name["sketch.select"].parent == "serve.request"
        assert by_name["selection.greedy"].depth == 2
        assert by_name["selection.greedy"].parent == "sketch.select"

    def test_span_feeds_duration_histogram(self):
        obs.configure(enabled=True)
        with obs.trace("sampling.ic_batch"):
            pass
        metric = obs.registry().get("span.sampling.ic_batch.seconds")
        assert isinstance(metric, Histogram)
        assert metric.count == 1

    def test_span_survives_exception(self):
        obs.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with obs.trace("kpt.estimate"):
                raise RuntimeError("boom")
        assert [s.name for s in obs.spans()] == ["kpt.estimate"]

    def test_capacity_cap_counts_drops(self):
        obs.configure(enabled=True, span_capacity=2)
        for _ in range(5):
            with obs.trace("sampling.ic_batch"):
                pass
        assert len(obs.spans()) == 2
        assert obs.dropped_spans() == 3
        # The histogram still sees every span — only the event list is capped.
        metric = obs.registry().get("span.sampling.ic_batch.seconds")
        assert metric is not None and metric.count == 5

    def test_reset_clears_everything(self):
        obs.configure(enabled=True)
        with obs.trace("kpt.estimate"):
            pass
        obs.add("rr.sets")
        obs.reset()
        assert obs.spans() == []
        assert obs.dropped_spans() == 0
        assert len(obs.registry()) == 0

    def test_span_record_as_dict(self):
        obs.configure(enabled=True)
        with obs.trace("repair.apply_update", action="delete"):
            pass
        record = obs.spans()[0].as_dict()
        assert record["type"] == "span"
        assert record["name"] == "repair.apply_update"
        assert record["labels"] == {"action": "delete"}
        assert "rss_kb_delta" not in record  # memory accounting off


class TestRecordingHelpers:
    def test_add_creates_and_increments(self):
        obs.configure(enabled=True)
        obs.add("rr.sets", 10)
        obs.add("rr.sets", 5)
        counter = obs.registry().get("rr.sets")
        assert counter is not None and counter.value == 15

    def test_gauge_and_observe(self):
        obs.configure(enabled=True)
        obs.gauge_set("pool.size", 4)
        obs.observe("lat", 0.25, bounds=(1.0,))
        obs.observe_many("widths", np.asarray([1.0, 3.0]), bounds=(2.0, 4.0))
        assert obs.registry().get("pool.size").value == 4
        assert obs.registry().get("lat").count == 1
        assert obs.registry().get("widths").count == 2

    def test_configure_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            obs.configure(span_capacity=-1)


class TestPhaseBreakdown:
    def test_groups_by_first_dotted_component(self):
        obs.configure(enabled=True)
        with obs.trace("kpt.estimate"):
            pass
        with obs.trace("kpt.refine"):
            pass
        with obs.trace("sampling.ic_batch"):
            pass
        obs.add("not.a.span")  # counters are ignored by the rollup
        breakdown = obs.phase_breakdown()
        assert set(breakdown) == {"kpt", "sampling"}
        assert breakdown["kpt"]["count"] == 2
        assert breakdown["sampling"]["count"] == 1
        assert breakdown["kpt"]["seconds"] >= 0.0

    def test_empty_when_nothing_recorded(self):
        assert obs.phase_breakdown() == {}
