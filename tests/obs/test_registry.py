"""MetricsRegistry primitives: counters, gauges, deterministic histograms."""

import numpy as np
import pytest

from repro.obs.registry import (
    LATENCY_MS_BUCKETS,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("pool")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3
        assert g.snapshot() == {"type": "gauge", "value": 3}


class TestHistogramBuckets:
    def test_bounds_must_be_nonempty_and_ascending(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", bounds=())
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("h", bounds=(1.0, 1.0, 2.0))

    def test_le_inclusive_bucketing(self):
        """A value equal to a bound lands in that bound's bucket
        (Prometheus ``le`` semantics)."""
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.5)
        h.observe(100.0)  # overflow
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(105.5)

    def test_observe_many_matches_observe(self):
        values = [0.3, 1.0, 1.5, 3.9, 4.0, 77.0]
        one = Histogram("a", bounds=(1.0, 2.0, 4.0))
        many = Histogram("b", bounds=(1.0, 2.0, 4.0))
        for v in values:
            one.observe(v)
        many.observe_many(np.asarray(values))
        assert many.counts == one.counts
        assert many.count == one.count
        assert many.sum == pytest.approx(one.sum)

    def test_observe_many_empty_is_noop(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe_many(np.asarray([], dtype=np.float64))
        assert h.count == 0 and h.sum == 0.0


class TestHistogramPercentiles:
    def test_empty_histogram_reports_zero(self):
        assert Histogram("h", bounds=(1.0,)).percentile(0.5) == 0.0

    def test_quantile_domain(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_single_bucket_interpolates_from_zero(self):
        """One observation in [0, 10] → p50 sits mid-bucket at 5.0."""
        h = Histogram("h", bounds=(10.0,))
        h.observe(7.0)
        assert h.percentile(0.5) == pytest.approx(5.0)
        assert h.percentile(1.0) == pytest.approx(10.0)

    def test_crossing_bucket_interpolation(self):
        """[1, 3, 9, 200] over power-of-two buckets: the p50 rank (2.0)
        crosses in the (2, 4] bucket and interpolates to exactly 4.0."""
        h = Histogram("h", bounds=SIZE_BUCKETS)
        h.observe_many(np.asarray([1.0, 3.0, 9.0, 200.0]))
        assert h.percentile(0.5) == pytest.approx(4.0)

    def test_overflow_rank_clamps_to_top_bound(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe_many(np.asarray([10.0, 20.0, 30.0]))
        assert h.percentile(0.5) == 2.0
        assert h.percentile(0.99) == 2.0

    def test_deterministic_across_runs(self):
        """Identical inputs give byte-identical snapshots (no sampling)."""
        def build():
            h = Histogram("h", bounds=SECONDS_BUCKETS)
            h.observe_many(np.linspace(0.0001, 2.0, 257))
            return h.snapshot()

        assert build() == build()

    def test_mean(self):
        h = Histogram("h", bounds=(10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2
        assert "a" in reg and "missing" not in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("a")

    def test_snapshot_is_json_able_and_insertion_ordered(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(3)
        reg.gauge("a").set(-1)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["z", "a", "h"]
        assert snap["z"] == {"type": "counter", "value": 3}
        assert snap["h"]["counts"] == [1, 0]

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert len(reg) == 0
        assert reg.get("a") is None


class TestBucketPresets:
    @pytest.mark.parametrize(
        "bounds", [LATENCY_MS_BUCKETS, SECONDS_BUCKETS, SIZE_BUCKETS]
    )
    def test_presets_are_strictly_ascending(self, bounds):
        assert all(b > a for a, b in zip(bounds, bounds[1:]))
