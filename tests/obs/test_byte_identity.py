"""The hard invariant: instrumentation never perturbs results.

Metrics-on and metrics-off runs must agree to the byte — identical tim
seed sets (serial and with a worker pool) and identical serialized sketch
files.  The tracer reads clocks and writes counters; it must never touch
an RNG stream.
"""

import pytest

from repro.api.policy import ExecutionPolicy
from repro.core.tim import tim
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.obs import runtime as obs
from repro.sketch import SketchIndex


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(120, 480, rng=21))


def run_tim(graph, *, enabled, jobs):
    obs.configure(enabled=enabled)
    obs.reset()
    try:
        result = tim(
            graph, 3, epsilon=0.5, rng=11, refine=True,
            policy=ExecutionPolicy(jobs=jobs),
        )
    finally:
        obs.configure(enabled=False)
        obs.reset()
    return result


def build_sketch_bytes(graph, tmp_path, *, enabled, tag):
    obs.configure(enabled=enabled)
    obs.reset()
    try:
        index = SketchIndex.build(graph, "IC", theta=800, rng=7)
        path = tmp_path / f"sketch_{tag}.npz"
        index.save(path)
    finally:
        obs.configure(enabled=False)
        obs.reset()
    return path.read_bytes()


class TestTimSeedIdentity:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_seeds_identical_obs_on_vs_off(self, wc_graph, jobs):
        off = run_tim(wc_graph, enabled=False, jobs=jobs)
        on = run_tim(wc_graph, enabled=True, jobs=jobs)
        assert on.seeds == off.seeds
        assert on.theta == off.theta
        assert on.kpt_star == off.kpt_star
        assert on.kpt_plus == off.kpt_plus
        assert on.rr_sets_per_phase == off.rr_sets_per_phase

    def test_enabled_run_actually_recorded(self, wc_graph):
        """Guard against the test trivially passing because obs was off."""
        obs.configure(enabled=True)
        obs.reset()
        try:
            tim(wc_graph, 2, epsilon=0.5, rng=3,
                policy=ExecutionPolicy(jobs=1))
            groups = set(obs.phase_breakdown())
            assert {"kpt", "sampling", "selection"} <= groups
        finally:
            obs.configure(enabled=False)
            obs.reset()


class TestSketchByteIdentity:
    def test_sketch_file_bytes_identical(self, wc_graph, tmp_path):
        off = build_sketch_bytes(wc_graph, tmp_path, enabled=False, tag="off")
        on = build_sketch_bytes(wc_graph, tmp_path, enabled=True, tag="on")
        assert on == off
