"""Exporters: JSONL round-trips, Prometheus exposition + checker, report."""

import io
import math

import pytest

from repro.obs import runtime as obs
from repro.obs.export import (
    read_jsonl,
    render_report,
    snapshot_to_prometheus,
    to_prometheus,
    validate_prometheus_text,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry


def record_some_activity():
    obs.configure(enabled=True)
    with obs.trace("serve.request"):
        with obs.trace("sketch.select", k=3):
            pass
    obs.add("rr.sets", 42)
    obs.gauge_set("pool.size", 2)
    obs.observe("service.request_latency_ms", 1.5, bounds=(1.0, 10.0))


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        record_some_activity()
        path = tmp_path / "metrics.jsonl"
        write_jsonl(path, meta={"command": "serve"})
        data = read_jsonl(path)
        assert data["meta"]["version"] == 1
        assert data["meta"]["command"] == "serve"
        assert data["meta"]["spans"] == 2
        assert [s["name"] for s in data["spans"]] == ["sketch.select", "serve.request"]
        assert data["spans"][0]["labels"] == {"k": 3}
        assert data["metrics"]["rr.sets"] == {"type": "counter", "value": 42}
        assert data["metrics"]["service.request_latency_ms"]["type"] == "histogram"

    def test_write_to_text_io(self):
        record_some_activity()
        sink = io.StringIO()
        write_jsonl(sink)
        lines = [line for line in sink.getvalue().splitlines() if line]
        assert len(lines) == 4  # meta + 2 spans + metrics

    def test_read_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            read_jsonl(path)
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown event type"):
            read_jsonl(path)


class TestPrometheus:
    def test_live_registry_exports_valid_text(self):
        record_some_activity()
        text = to_prometheus()
        assert validate_prometheus_text(text) == []
        assert "# TYPE repro_rr_sets counter" in text
        assert "repro_rr_sets 42" in text
        assert "# TYPE repro_pool_size gauge" in text
        assert 'repro_service_request_latency_ms_bucket{le="+Inf"} 1' in text
        assert "repro_service_request_latency_ms_count 1" in text

    def test_snapshot_round_trip_matches_live(self, tmp_path):
        """prom-from-JSONL (what `repro obs prom` does) equals prom-live."""
        record_some_activity()
        live = to_prometheus()
        path = tmp_path / "m.jsonl"
        write_jsonl(path)
        from_snapshot = snapshot_to_prometheus(read_jsonl(path)["metrics"])
        assert from_snapshot == live

    def test_empty_registry_exports_empty_text(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert validate_prometheus_text("") == []

    def test_histogram_buckets_are_cumulative_and_close_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 2.0))
        for v in (0.5, 0.6, 1.5, 99.0):
            h.observe(v)
        text = to_prometheus(reg)
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="2"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert validate_prometheus_text(text) == []

    def test_unknown_metric_type_raises(self):
        with pytest.raises(ValueError, match="unknown type"):
            snapshot_to_prometheus({"x": {"type": "summary", "value": 1}})


class TestPrometheusChecker:
    def test_malformed_sample_line(self):
        errors = validate_prometheus_text("this is } not a sample\n")
        assert any("malformed sample line" in e for e in errors)

    def test_unknown_declared_type(self):
        errors = validate_prometheus_text("# TYPE foo flotilla\nfoo 1\n")
        assert any("unknown metric type" in e for e in errors)

    def test_type_after_samples(self):
        errors = validate_prometheus_text("foo 1\n# TYPE foo counter\n")
        assert any("after its samples" in e for e in errors)

    def test_histogram_without_buckets(self):
        errors = validate_prometheus_text("# TYPE h histogram\nh_count 3\n")
        assert any("no _bucket series" in e for e in errors)

    def test_histogram_missing_inf_bucket(self):
        text = '# TYPE h histogram\nh_bucket{le="1"} 2\nh_count 2\n'
        errors = validate_prometheus_text(text)
        assert any("+Inf" in e for e in errors)

    def test_histogram_decreasing_cumulative_counts(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        errors = validate_prometheus_text(text)
        assert any("decrease" in e for e in errors)

    def test_histogram_inf_disagrees_with_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_count 9\n"
        )
        errors = validate_prometheus_text(text)
        assert any("!= _count" in e for e in errors)

    def test_malformed_label(self):
        errors = validate_prometheus_text('foo{le=unquoted} 1\n')
        assert any("malformed label" in e for e in errors)

    def test_inf_and_nan_values_parse(self):
        assert validate_prometheus_text("foo +Inf\nbar NaN\n") == []
        assert math.isinf(math.inf)  # sanity


class TestReport:
    def test_report_sections_from_round_trip(self, tmp_path):
        record_some_activity()
        path = tmp_path / "m.jsonl"
        write_jsonl(path)
        report = render_report(read_jsonl(path))
        assert "== phases ==" in report
        assert "== spans ==" in report
        assert "== counters / gauges ==" in report
        assert "== histograms ==" in report
        assert "serve" in report and "sketch" in report
        assert "rr.sets" in report

    def test_report_is_deterministic(self, tmp_path):
        record_some_activity()
        path = tmp_path / "m.jsonl"
        write_jsonl(path)
        data = read_jsonl(path)
        assert render_report(data) == render_report(data)

    def test_empty_stream(self):
        assert render_report({"spans": [], "metrics": {}}) == "no metrics recorded\n"
