"""Every obs test starts and ends with the tracer off and empty.

The runtime is process-global (that is the point — one switch, one
registry), so tests must not leak enabled-state or recorded spans into
each other or into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.configure(enabled=False, memory=False, span_capacity=100_000)
    obs.reset()
    yield
    obs.configure(enabled=False, memory=False, span_capacity=100_000)
    obs.reset()
