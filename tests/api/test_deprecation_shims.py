"""Legacy call shapes: still working, warning, and byte-identical.

The acceptance bar for the unified API: ``tim_plus(graph, k, engine=...,
jobs=..., sketch_index=...)`` and dict-based ``InfluenceService.query``
must keep producing byte-identical seed sets / sketch bytes to the new
``ExecutionPolicy`` / typed-request path at equal seeds, under a
``DeprecationWarning``.
"""

import json

import pytest

from repro import InfluenceService, SketchIndex, maximize_influence, ris, tim, tim_plus
from repro.algorithms import register_algorithm, supports_policy
from repro.api import ExecutionPolicy, SelectRequest
from repro.graphs import gnm_random_digraph, weighted_cascade


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(60, 240, rng=11))


def _legacy(call, *args, **kwargs):
    """Run a legacy-shaped call, asserting it warns, and return its result."""
    with pytest.warns(DeprecationWarning):
        return call(*args, **kwargs)


class TestTimFamilyShims:
    def test_tim_plus_engine_jobs_kwargs_byte_identical(self, wc_graph):
        legacy = _legacy(tim_plus, wc_graph, 4, epsilon=0.5, rng=13,
                         engine="vectorized", jobs=1)
        modern = tim_plus(wc_graph, 4, epsilon=0.5, rng=13,
                          policy=ExecutionPolicy(engine="vectorized", jobs=1))
        assert legacy.seeds == modern.seeds
        assert legacy.theta == modern.theta
        assert legacy.kpt_star == modern.kpt_star
        assert legacy.rr_collection_bytes == modern.rr_collection_bytes

    def test_tim_python_engine_kwarg_byte_identical(self, wc_graph):
        legacy = _legacy(tim, wc_graph, 3, epsilon=0.6, rng=19, engine="python")
        modern = tim(wc_graph, 3, epsilon=0.6, rng=19,
                     policy=ExecutionPolicy(engine="python"))
        assert legacy.seeds == modern.seeds
        assert legacy.theta == modern.theta

    def test_tim_sketch_index_kwarg_byte_identical(self, wc_graph):
        def build():
            return SketchIndex.build(wc_graph, "IC", theta=800, rng=23)

        legacy = _legacy(tim, wc_graph, 4, epsilon=0.6, rng=29,
                         sketch_index=build())
        modern = tim(wc_graph, 4, epsilon=0.6, rng=29, index=build())
        assert legacy.seeds == modern.seeds
        assert legacy.theta == modern.theta

    def test_ris_legacy_kwargs_byte_identical(self, wc_graph):
        legacy = _legacy(ris, wc_graph, 3, rng=5, epsilon=0.4,
                         engine="vectorized", jobs=1)
        modern = ris(wc_graph, 3, rng=5, epsilon=0.4,
                     policy=ExecutionPolicy(jobs=1))
        assert legacy.seeds == modern.seeds

    def test_default_paths_do_not_warn(self, wc_graph, recwarn):
        tim(wc_graph, 2, epsilon=0.6, rng=1)
        tim_plus(wc_graph, 2, epsilon=0.6, rng=1)
        ris(wc_graph, 2, rng=1, epsilon=0.5)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_ris_honours_policy_epsilon(self, wc_graph):
        # A passed policy's epsilon governs the tau budget; without one,
        # RIS keeps its historical coarser 0.2 default.
        coarse = ris(wc_graph, 3, rng=5, policy=ExecutionPolicy(epsilon=0.5))
        tight = ris(wc_graph, 3, rng=5, policy=ExecutionPolicy(epsilon=0.2))
        default = ris(wc_graph, 3, rng=5)
        baseline = ris(wc_graph, 3, rng=5, epsilon=0.2)
        assert default.seeds == baseline.seeds  # bare call keeps 0.2
        assert tight.seeds == baseline.seeds    # policy epsilon applied
        assert coarse.extras["num_rr_sets"] <= tight.extras["num_rr_sets"]

    def test_policy_epsilon_is_the_default_layer(self, wc_graph):
        explicit = tim(wc_graph, 3, epsilon=0.5, rng=7)
        via_policy = tim(wc_graph, 3, rng=7, policy=ExecutionPolicy(epsilon=0.5))
        assert explicit.seeds == via_policy.seeds
        assert explicit.epsilon == via_policy.epsilon == 0.5
        # explicit argument beats the policy field
        override = tim(wc_graph, 3, epsilon=0.5, rng=7,
                       policy=ExecutionPolicy(epsilon=0.3))
        assert override.epsilon == 0.5
        assert override.seeds == explicit.seeds


class TestSketchBytesShim:
    def test_sketch_file_bytes_identical_across_paths(self, wc_graph, tmp_path):
        a = SketchIndex.build(wc_graph, "IC", theta=600, rng=31,
                              engine="vectorized", jobs=None)
        b = SketchIndex.build(wc_graph, "IC", theta=600, rng=31,
                              policy=ExecutionPolicy())
        path_a, path_b = tmp_path / "a.npz", tmp_path / "b.npz"
        a.save(path_a)
        b.save(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()


class TestServiceQueryShim:
    def test_dict_query_warns_and_matches_typed_execute(self, wc_graph):
        # Two identically-seeded services: cold builds are deterministic, so
        # the typed path and the dict shim must agree byte for byte.
        typed = InfluenceService(theta=500, rng=0).execute(
            wc_graph, SelectRequest(k=3, id="q")).to_wire()
        legacy = _legacy(InfluenceService(theta=500, rng=0).query,
                         wc_graph, {"op": "select", "k": 3, "id": "q"})
        # identical payloads modulo wall-clock
        typed.pop("latency_ms")
        legacy.pop("latency_ms")
        assert legacy == typed
        assert typed["cache"] == "miss"

    def test_run_batch_does_not_warn(self, wc_graph, recwarn):
        service = InfluenceService(theta=300, rng=0)
        responses = service.run_batch(
            wc_graph, [json.dumps({"op": "select", "k": 2})])
        assert responses[0]["ok"]
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestMaximizeInfluencePolicy:
    def test_policy_forwards_to_tim_family(self, wc_graph):
        result = maximize_influence(wc_graph, 3, algorithm="tim+", rng=3,
                                    epsilon=0.5, policy=ExecutionPolicy(jobs=1))
        baseline = maximize_influence(wc_graph, 3, algorithm="tim+", rng=3,
                                      epsilon=0.5, policy=ExecutionPolicy(jobs=2))
        assert result.seeds == baseline.seeds

    def test_policy_rejected_for_heuristics(self, wc_graph):
        with pytest.raises(ValueError, match="does not accept an execution"):
            maximize_influence(wc_graph, 2, algorithm="degree",
                               policy=ExecutionPolicy())

    def test_supports_policy_probe(self):
        assert supports_policy("tim")
        assert supports_policy("tim+")
        assert supports_policy("ris")
        assert not supports_policy("degree")


class TestRegistryReload:
    def test_reregistering_same_definition_is_idempotent(self):
        register_algorithm("tim", tim)  # the reimport / reload shape
        register_algorithm("tim+", tim_plus)

    def test_different_callable_still_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("tim", lambda *a, **k: None)

    def test_replace_true_overrides_and_restores(self, wc_graph):
        shim_called = []

        def shim(graph, k, *, model="IC", rng=None, **kwargs):
            shim_called.append(k)
            return tim(graph, k, model=model, rng=rng, **kwargs)

        register_algorithm("tim", shim, replace=True)
        try:
            maximize_influence(wc_graph, 2, algorithm="tim", rng=0, epsilon=0.6)
            assert shim_called == [2]
        finally:
            register_algorithm("tim", tim, replace=True)
