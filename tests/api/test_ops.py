"""The versioned op layer: strict parsing, wire round-trips, golden fixtures."""

import json
import pathlib

import pytest

from repro.api.ops import (
    SCHEMA_VERSION,
    ApiError,
    ErrorResponse,
    MarginalRequest,
    MarginalResponse,
    SelectRequest,
    SelectResponse,
    SpreadRequest,
    SpreadResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    parse_request,
    response_from_wire,
)

FIXTURES = pathlib.Path(__file__).parent


def _load_jsonl(name):
    with open(FIXTURES / name, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestGoldenRequests:
    """The checked-in fixtures pin the wire format; regenerating them is a
    deliberate (versioned) act, not a side effect of a refactor."""

    @pytest.mark.parametrize("case", _load_jsonl("golden_requests.jsonl"),
                             ids=lambda case: json.dumps(case["request"])[:60])
    def test_parse_then_serialize_matches_golden_wire(self, case):
        parsed = parse_request(case["request"])
        assert parsed.to_wire() == case["wire"]

    @pytest.mark.parametrize("case", _load_jsonl("golden_requests.jsonl"),
                             ids=lambda case: json.dumps(case["request"])[:60])
    def test_wire_form_reparses_to_equal_request(self, case):
        parsed = parse_request(case["request"])
        assert parse_request(parsed.to_wire()) == parsed

    @pytest.mark.parametrize("case", _load_jsonl("golden_requests.jsonl"),
                             ids=lambda case: json.dumps(case["request"])[:60])
    def test_wire_form_is_json_clean(self, case):
        wire = parse_request(case["request"]).to_wire()
        assert json.loads(json.dumps(wire)) == wire


class TestGoldenErrors:
    @pytest.mark.parametrize("case", _load_jsonl("golden_errors.jsonl"),
                             ids=lambda case: json.dumps(case["request"])[:60])
    def test_rejected_with_stable_code(self, case):
        with pytest.raises(ApiError) as info:
            parse_request(case["request"])
        assert info.value.code == case["code"]

    def test_non_dict_request(self):
        with pytest.raises(ApiError) as info:
            parse_request(["op", "select"])
        assert info.value.code == "bad_request"

    def test_error_payload_shape(self):
        try:
            parse_request({"op": "select", "k": 3, "includ": [1]})
        except ApiError as exc:
            wire = ErrorResponse.from_exception(exc, op="select", id="x").to_wire()
        assert wire["ok"] is False
        assert wire["id"] == "x"
        assert wire["op"] == "select"
        assert wire["schema_version"] == SCHEMA_VERSION
        assert wire["error"]["code"] == "unknown_field"
        assert "includ" in wire["error"]["message"]
        assert wire["error"]["retryable"] is False

    def test_error_payload_marks_retryable_failures(self):
        from repro.faults.errors import TransientError

        wire = ErrorResponse.from_exception(
            TransientError("pool crashed"), op="select"
        ).to_wire()
        assert wire["error"] == {"code": "transient", "message": "pool crashed",
                                 "retryable": True}
        parsed = response_from_wire(wire)
        assert isinstance(parsed, ErrorResponse)
        assert parsed.retryable is True


class TestTypedPassthrough:
    def test_typed_requests_pass_through_unparsed(self):
        request = SelectRequest(k=3, id="a")
        assert parse_request(request) is request

    def test_update_request_to_edge_update(self):
        update = UpdateRequest(action="insert", u=1, v=2, p=0.5).to_edge_update()
        assert (update.action, update.u, update.v, update.prob) == ("insert", 1, 2, 0.5)

    def test_request_equality_and_normalization(self):
        a = parse_request({"op": "select", "k": 3, "include": [1, 2]})
        b = SelectRequest(k=3, include=(1, 2))
        assert a == b
        assert isinstance(a.include, tuple)


class TestResponseRoundTrips:
    RESPONSES = [
        SelectResponse(seeds=[1, 2], coverage_fraction=0.5, estimated_spread=10.0,
                       num_rr_sets=100, cache="hit", id="q"),
        SpreadResponse(spread=12.5, coverage_fraction=0.25, num_rr_sets=200,
                       cache="miss"),
        MarginalResponse(gain=1.5, num_rr_sets=50, cache="hit"),
        UpdateResponse(action="insert", u=1, v=2, version=3,
                       fingerprint="abc", num_edges=10,
                       repaired_indexes=[{"num_affected": 4}], cache="n/a"),
        StatsResponse(stats={"queries": 5, "per_op": {"select": 5}}, cache="n/a"),
        ErrorResponse(code="unknown_field", message="nope", failed_op="select",
                      id=9),
        ErrorResponse(code="invalid_json", message="bad line", line=4),
        ErrorResponse(code="transient", message="pool crashed", retryable=True),
    ]

    @pytest.mark.parametrize("response", RESPONSES,
                             ids=lambda response: type(response).__name__)
    def test_wire_round_trip(self, response):
        assert response_from_wire(response.to_wire()) == response

    def test_schema_version_stamped_on_every_response(self):
        for response in self.RESPONSES:
            assert response.to_wire()["schema_version"] == SCHEMA_VERSION

    def test_legacy_string_error_payloads_still_parse(self):
        legacy = {"op": "select", "ok": False, "error": "boom", "latency_ms": 1.0}
        parsed = response_from_wire(legacy)
        assert isinstance(parsed, ErrorResponse)
        assert parsed.code == "bad_request"
        assert parsed.message == "boom"

    def test_future_schema_version_rejected(self):
        with pytest.raises(ApiError) as info:
            response_from_wire({"op": "stats", "ok": True, "result": {},
                                "schema_version": SCHEMA_VERSION + 1})
        assert info.value.code == "unsupported_schema_version"


class TestRequestConstructorsValidate:
    def test_select_validates_eagerly(self):
        with pytest.raises(ApiError):
            SelectRequest(k=0)
        with pytest.raises(ApiError):
            SelectRequest(k=3, include=[1.5])

    def test_spread_requires_seeds(self):
        with pytest.raises(ApiError):
            SpreadRequest(seeds=())

    def test_marginal_requires_int_candidate(self):
        with pytest.raises(ApiError):
            MarginalRequest(seeds=(1,), candidate=True)

    def test_update_validates_through_edge_update(self):
        with pytest.raises(ApiError):
            UpdateRequest(action="insert", u=1, v=2)  # missing p
        with pytest.raises(ApiError):
            UpdateRequest(action="insert", u=1, v=2, p=1.5)

    def test_stats_takes_only_an_id(self):
        assert StatsRequest(id="s").to_wire() == {
            "op": "stats", "schema_version": SCHEMA_VERSION, "id": "s"}
