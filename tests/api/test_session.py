"""InfluenceSession: facade behaviour, determinism, lifecycle, typed ops."""

import pytest

from repro.api import (
    ApiError,
    ExecutionPolicy,
    InfluenceSession,
    SelectRequest,
    SelectResponse,
    SpreadRequest,
    StatsRequest,
    UpdateRequest,
)
from repro.dynamic import DynamicDiGraph
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.sketch import SketchIndex


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(60, 240, rng=11))


class TestQueries:
    def test_select_returns_typed_response(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=0) as session:
            response = session.select(4)
        assert isinstance(response, SelectResponse)
        assert len(response.seeds) == 4
        assert len(set(response.seeds)) == 4
        assert 0.0 < response.coverage_fraction <= 1.0
        assert response.estimated_spread == pytest.approx(
            wc_graph.n * response.coverage_fraction)
        assert response.num_rr_sets >= 1

    def test_select_matches_direct_sketch_index(self, wc_graph):
        session = InfluenceSession(wc_graph, "IC", rng=5)
        picked = session.select(5)
        # Same RR sets => same greedy answer as querying the index directly.
        assert picked.seeds == session.index.select(5).seeds
        session.close()

    def test_spread_and_marginal_are_consistent(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=1) as session:
            seeds = session.select(3).seeds
            base = session.spread(seeds)
            gain = session.marginal(seeds, seeds[0])
            assert gain == 0.0  # already a seed: no new coverage
            assert base > 0.0

    def test_same_seed_same_results(self, wc_graph):
        def run():
            with InfluenceSession(wc_graph, "IC", rng=42) as session:
                response = session.select(4)
                return response.seeds, session.spread(response.seeds)
        assert run() == run()

    def test_constrained_selection(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=3) as session:
            response = session.select(3, include=[7], exclude=[0])
            assert response.seeds[0] == 7
            assert 0 not in response.seeds

    def test_select_with_larger_k_extends_incrementally(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=9) as session:
            small = session.select(2)
            large = session.select(5)
            assert large.seeds[:2] == small.seeds


class TestEnsure:
    def test_ensure_theta_grows_to_target(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=2) as session:
            session.select(2)
            before = session.num_rr_sets
            added = session.ensure(theta=before + 500)
            assert added == 500
            assert session.num_rr_sets == before + 500

    def test_ensure_epsilon_tightening_only_adds(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=2,
                              policy=ExecutionPolicy(epsilon=0.5)) as session:
            session.select(2)
            before = session.num_rr_sets
            added = session.ensure(epsilon=0.3, k=2)
            assert added >= 0
            assert session.num_rr_sets == before + added

    def test_ensure_theta_on_fresh_session_samples_exactly_theta(self, wc_graph):
        # Regression: the first sketch must be built straight to the
        # requested size, not epsilon-derived first (which could sample
        # hundreds of thousands of sets before the theta target applies).
        with InfluenceSession(wc_graph, "IC", rng=3) as session:
            added = session.ensure(theta=100)
            assert added == 100
            assert session.num_rr_sets == 100

    def test_ensure_epsilon_on_fresh_session_uses_requested_epsilon(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=3,
                              policy=ExecutionPolicy(epsilon=0.1)) as session:
            session.ensure(epsilon=0.9, k=2)
            assert session.index.meta["epsilon"] == 0.9

    def test_ensure_requires_exactly_one_target(self, wc_graph):
        session = InfluenceSession(wc_graph, rng=0)
        with pytest.raises(ValueError, match="exactly one"):
            session.ensure()
        with pytest.raises(ValueError, match="exactly one"):
            session.ensure(epsilon=0.2, theta=10)
        session.close()


class TestPolicy:
    def test_reuse_sketch_false_rebuilds_each_select(self, wc_graph):
        policy = ExecutionPolicy(reuse_sketch=False)
        with InfluenceSession(wc_graph, "IC", policy=policy, rng=0) as session:
            session.select(2)
            first = session.index
            session.select(2)
            assert session.index is not first

    def test_reuse_sketch_true_keeps_index(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=0) as session:
            session.select(2)
            first = session.index
            session.select(3)
            assert session.index is first

    def test_policy_dict_coercion(self, wc_graph):
        session = InfluenceSession(wc_graph, policy={"epsilon": 0.5}, rng=0)
        assert session.policy.epsilon == 0.5
        session.close()

    def test_jobs_invariance_of_results(self, wc_graph):
        # The sharded path is byte-identical for every worker count >= 1
        # (jobs=None is the separate legacy single-stream RNG path).
        def seeds_for(jobs):
            policy = ExecutionPolicy(jobs=jobs, epsilon=0.4)
            with InfluenceSession(wc_graph, "IC", policy=policy, rng=7) as session:
                return session.select(3).seeds
        assert seeds_for(1) == seeds_for(2) == seeds_for(4)


class TestDynamicUpdates:
    def test_apply_update_repairs_owned_index(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=4) as session:
            session.select(2)
            theta = session.num_rr_sets
            u, v = int(wc_graph.src[0]), int(wc_graph.dst[0])
            response = session.apply_update(action="delete", u=u, v=v)
            assert response.version == 1
            assert response.num_edges == wc_graph.m - 1
            assert len(response.repaired_indexes) == 1
            assert session.num_rr_sets == theta  # repaired, not rebuilt
            assert session.graph.m == wc_graph.m - 1
            # the index now serves the new snapshot
            assert session.index.meta["graph_fingerprint"] == response.fingerprint

    def test_invalid_update_rejected_even_before_first_query(self):
        """Regression: model validation must run even when no sketch has
        been built yet, or an invalid update commits and wedges the
        session permanently."""
        import numpy as np

        from repro.graphs import gnm_random_digraph, uniform_random_lt

        graph = uniform_random_lt(gnm_random_digraph(40, 160, rng=7), rng=1)
        with InfluenceSession(graph, "LT", rng=0) as session:
            heavy = int(np.argmax(np.bincount(
                graph.dst.astype(int), weights=graph.prob, minlength=graph.n)))
            with pytest.raises(ValueError, match="LT weights"):
                session.apply_update(action="insert",
                                     u=(heavy + 1) % graph.n, v=heavy, p=1.0)
            assert session.dynamic_graph.version == 0
            session.select(2)  # the session still works

    def test_update_before_any_query_only_mutates_graph(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=4) as session:
            response = session.apply_update(action="insert", u=0, v=59, p=0.2)
            assert response.repaired_indexes == []
            assert session.index is None
            assert session.dynamic_graph.version == 1

    def test_rejected_update_leaves_everything_untouched(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=4) as session:
            session.select(2)
            with pytest.raises((ValueError, KeyError)):
                session.apply_update(action="delete", u=0, v=0)  # no self loop
            assert session.dynamic_graph.version == 0

    def test_accepts_every_update_shape(self, wc_graph):
        from repro.dynamic import EdgeUpdate

        shapes = [
            EdgeUpdate(action="insert", u=0, v=50, prob=0.1),
            UpdateRequest(action="reweight", u=0, v=50, p=0.2),
            {"action": "delete", "u": 0, "v": 50},
        ]
        with InfluenceSession(wc_graph, "IC", rng=4) as session:
            for version, update in enumerate(shapes, start=1):
                assert session.apply_update(update).version == version

    def test_adopts_existing_dynamic_graph(self, wc_graph):
        dynamic = DynamicDiGraph(wc_graph)
        with InfluenceSession(dynamic, "IC", rng=0) as session:
            session.apply_update(action="insert", u=1, v=58, p=0.3)
        assert dynamic.version == 1  # shared, not copied


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_growth(self, wc_graph):
        session = InfluenceSession(wc_graph, rng=0)
        session.select(2)
        session.close()
        session.close()
        with pytest.raises(ValueError, match="closed"):
            session.select(3)

    def test_adopted_index(self, wc_graph):
        index = SketchIndex.build(wc_graph, "IC", theta=400, rng=8)
        with InfluenceSession(wc_graph, "IC", rng=0, index=index) as session:
            assert session.num_rr_sets >= 400
            assert session.select(2).seeds == index.select(2).seeds

    def test_adopted_index_model_mismatch(self, wc_graph):
        index = SketchIndex.build(wc_graph, "IC", theta=50, rng=8)
        with pytest.raises(ValueError, match="model"):
            InfluenceSession(wc_graph, "LT", index=index)


class TestTypedOps:
    def test_execute_select_and_spread(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            picked = session.execute(SelectRequest(k=3, id="q1"))
            assert picked.id == "q1"
            spread = session.execute(SpreadRequest(seeds=tuple(picked.seeds)))
            assert spread.spread == pytest.approx(session.spread(picked.seeds))

    def test_execute_wire_dicts(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            response = session.execute({"op": "select", "k": 2})
            assert len(response.seeds) == 2

    def test_execute_stats(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            session.select(2)
            stats = session.execute(StatsRequest()).stats
            assert stats["model"] == "IC"
            assert stats["num_rr_sets"] == session.num_rr_sets
            assert stats["policy"]["engine"] == "vectorized"

    def test_stats_report_sketch_certification(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            session.select(2)
            sketch = session.execute(StatsRequest()).stats["sketch"]
            assert sketch["theta"] == session.num_rr_sets
            assert sketch["algorithm"] == "tim"
            assert sketch["epsilon"] == session.policy.epsilon
            assert sketch["theta_capped"] is False

    def test_stats_report_imm_derivation(self, wc_graph):
        policy = ExecutionPolicy(algorithm="imm", epsilon=0.5)
        with InfluenceSession(wc_graph, "IC", policy=policy, rng=6) as session:
            session.select(2)
            sketch = session.execute(StatsRequest()).stats["sketch"]
            assert sketch["algorithm"] == "imm"
            assert sketch["epsilon"] == 0.5

    def test_stats_before_any_query_have_empty_sketch(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            sketch = session.execute(StatsRequest()).stats["sketch"]
            assert sketch == {"theta": 0, "algorithm": None, "epsilon": None,
                              "theta_capped": False}

    def test_execute_raises_api_errors(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            with pytest.raises(ApiError) as info:
                session.execute({"op": "select", "k": 2, "includ": [1]})
            assert info.value.code == "unknown_field"

    def test_model_override_rejected(self, wc_graph):
        with InfluenceSession(wc_graph, "IC", rng=6) as session:
            with pytest.raises(ApiError, match="InfluenceService"):
                session.execute(SelectRequest(k=2, model="LT"))
