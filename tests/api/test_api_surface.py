"""Snapshot of the public API surface: symbols + signatures.

Guards against *accidental* breaks: renaming a keyword, dropping a default,
or losing an export now fails a test instead of shipping silently.  An
intentional change regenerates the snapshot::

    PYTHONPATH=src python tests/api/test_api_surface.py --update

and the resulting diff of ``api_surface.txt`` is reviewed like any other
wire-format change.

Annotations are stripped before rendering (their string forms vary across
Python versions); default values are rendered by ``repr`` and are part of
the contract — a changed default is an API change.
"""

import inspect
import pathlib
import sys

SNAPSHOT = pathlib.Path(__file__).parent / "api_surface.txt"

#: Classes whose public methods are part of the pinned surface.
_EXPANDED_CLASSES = (
    "ExecutionPolicy",
    "InfluenceSession",
    "InfluenceService",
    "SketchIndex",
    "DynamicDiGraph",
)


def _clean_signature(obj) -> str:
    signature = inspect.signature(obj)
    parameters = [
        parameter.replace(annotation=inspect.Parameter.empty)
        for parameter in signature.parameters.values()
    ]
    return str(signature.replace(parameters=parameters,
                                 return_annotation=inspect.Signature.empty))


def _render_symbol(prefix: str, name: str, obj) -> list[str]:
    qualified = f"{prefix}.{name}"
    if inspect.isclass(obj):
        try:
            signature = _clean_signature(obj)
        except (TypeError, ValueError):
            signature = "(...)"
        lines = [f"class {qualified}{signature}"]
        if name in _EXPANDED_CLASSES:
            for method_name, member in sorted(vars(obj).items()):
                if method_name.startswith("_"):
                    continue
                if isinstance(member, property):
                    lines.append(f"  {qualified}.{method_name} <property>")
                    continue
                if isinstance(member, (classmethod, staticmethod)):
                    member = member.__func__
                if callable(member):
                    try:
                        lines.append(
                            f"  {qualified}.{method_name}{_clean_signature(member)}")
                    except (TypeError, ValueError):  # pragma: no cover
                        lines.append(f"  {qualified}.{method_name}(...)")
        return lines
    if callable(obj):
        try:
            return [f"{qualified}{_clean_signature(obj)}"]
        except (TypeError, ValueError):  # pragma: no cover
            return [f"{qualified}(...)"]
    return [f"{qualified} = {obj!r}"]


def render_api_surface() -> str:
    import repro
    import repro.api as repro_api

    lines = []
    for module, prefix in ((repro, "repro"), (repro_api, "repro.api")):
        for name in sorted(set(module.__all__)):
            if prefix == "repro.api" and name in repro.__all__:
                continue  # already pinned at the top level
            lines.extend(_render_symbol(prefix, name, getattr(module, name)))
    return "\n".join(lines) + "\n"


def test_api_surface_matches_snapshot():
    expected = SNAPSHOT.read_text(encoding="utf-8")
    actual = render_api_surface()
    assert actual == expected, (
        "public API surface drifted from tests/api/api_surface.txt; if the "
        "change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/api/test_api_surface.py --update` "
        "and review the diff"
    )


if __name__ == "__main__":
    if "--update" in sys.argv:
        SNAPSHOT.write_text(render_api_surface(), encoding="utf-8")
        print(f"wrote {SNAPSHOT}")
    else:
        print(render_api_surface(), end="")
