"""ExecutionPolicy: validation, merging, and env/CLI resolution."""

import argparse

import pytest

from repro.api import ExecutionPolicy
from repro.api.policy import DEPRECATED, resolve_call_policy


class TestValidation:
    def test_defaults_match_legacy_call_defaults(self):
        policy = ExecutionPolicy()
        assert policy.engine == "vectorized"
        assert policy.jobs is None
        assert policy.trace_edges is False
        assert policy.epsilon == 0.1
        assert policy.ell == 1.0
        assert policy.reuse_sketch is True

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().engine = "python"

    @pytest.mark.parametrize("bad", [
        {"engine": "turbo"},
        {"jobs": -1},
        {"jobs": 1.5},
        {"jobs": True},
        {"trace_edges": 1},
        {"epsilon": 0.0},
        {"epsilon": 1.5},
        {"ell": 0.0},
        {"reuse_sketch": "yes"},
    ])
    def test_rejects_invalid_fields(self, bad):
        with pytest.raises((ValueError, TypeError)):
            ExecutionPolicy(**bad)

    def test_jobs_zero_means_all_cores_and_is_valid(self):
        assert ExecutionPolicy(jobs=0).jobs == 0

    def test_numeric_coercion(self):
        policy = ExecutionPolicy(epsilon="0.2", ell=2)
        assert policy.epsilon == 0.2 and isinstance(policy.epsilon, float)
        assert policy.ell == 2.0 and isinstance(policy.ell, float)

    def test_epsilon_one_is_the_paper_boundary(self):
        assert ExecutionPolicy(epsilon=1).epsilon == 1.0

    def test_algorithm_defaults_to_tim(self):
        assert ExecutionPolicy().algorithm == "tim"

    def test_algorithm_normalizes_case(self):
        assert ExecutionPolicy(algorithm="IMM").algorithm == "imm"

    @pytest.mark.parametrize("bad", [{"algorithm": ""}, {"algorithm": 3}])
    def test_rejects_invalid_algorithm(self, bad):
        with pytest.raises((ValueError, TypeError)):
            ExecutionPolicy(**bad)


class TestMerge:
    def test_merge_skips_none(self):
        base = ExecutionPolicy(engine="python", jobs=4)
        merged = base.merge(engine=None, jobs=None, epsilon=0.2)
        assert merged.engine == "python"
        assert merged.jobs == 4
        assert merged.epsilon == 0.2

    def test_merge_applies_explicit_false(self):
        base = ExecutionPolicy(trace_edges=True)
        assert base.merge(trace_edges=False).trace_edges is False

    def test_merge_no_overrides_returns_self(self):
        base = ExecutionPolicy()
        assert base.merge() is base
        assert base.merge(engine=None) is base

    def test_merge_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown execution-policy field"):
            ExecutionPolicy().merge(engin="python")

    def test_from_kwargs_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown execution-policy field"):
            ExecutionPolicy.from_kwargs(threads=4)

    def test_from_kwargs_layers_over_base(self):
        base = ExecutionPolicy(engine="python")
        policy = ExecutionPolicy.from_kwargs(base=base, jobs=2)
        assert (policy.engine, policy.jobs) == ("python", 2)

    def test_coerce(self):
        assert ExecutionPolicy.coerce(None) == ExecutionPolicy()
        policy = ExecutionPolicy(jobs=3)
        assert ExecutionPolicy.coerce(policy) is policy
        assert ExecutionPolicy.coerce({"engine": "python"}).engine == "python"
        with pytest.raises(ValueError, match="policy must be"):
            ExecutionPolicy.coerce("vectorized")

    def test_as_dict_roundtrip(self):
        policy = ExecutionPolicy(engine="python", jobs=2, trace_edges=True,
                                 epsilon=0.25, ell=1.5, reuse_sketch=False)
        assert ExecutionPolicy(**policy.as_dict()) == policy


class TestEnvResolution:
    def test_reads_all_variables(self):
        env = {"REPRO_ENGINE": "python", "REPRO_JOBS": "4",
               "REPRO_TRACE_EDGES": "yes", "REPRO_EPSILON": "0.2",
               "REPRO_ELL": "2.0", "REPRO_ALGORITHM": "imm"}
        policy = ExecutionPolicy.from_env(env)
        assert policy == ExecutionPolicy(engine="python", jobs=4,
                                         trace_edges=True, epsilon=0.2, ell=2.0,
                                         algorithm="imm")

    def test_empty_and_missing_are_unset(self):
        assert ExecutionPolicy.from_env({"REPRO_ENGINE": ""}) == ExecutionPolicy()
        assert ExecutionPolicy.from_env({}) == ExecutionPolicy()

    @pytest.mark.parametrize("env, message", [
        ({"REPRO_JOBS": "many"}, "REPRO_JOBS"),
        ({"REPRO_TRACE_EDGES": "maybe"}, "REPRO_TRACE_EDGES"),
        ({"REPRO_EPSILON": "tight"}, "REPRO_EPSILON"),
        ({"REPRO_ENGINE": "turbo"}, "engine must be"),
    ])
    def test_invalid_values_fail_loudly(self, env, message):
        with pytest.raises(ValueError, match=message):
            ExecutionPolicy.from_env(env)

    def test_bool_spellings(self):
        for text, expected in [("1", True), ("true", True), ("ON", True),
                               ("0", False), ("no", False), ("Off", False)]:
            assert ExecutionPolicy.from_env(
                {"REPRO_TRACE_EDGES": text}).trace_edges is expected

    def test_real_environ_is_the_default_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert ExecutionPolicy.from_env().jobs == 3


class TestArgsResolution:
    def _args(self, **kwargs):
        namespace = argparse.Namespace(engine=None, jobs=None, trace_edges=None,
                                       epsilon=None, ell=None)
        for key, value in kwargs.items():
            setattr(namespace, key, value)
        return namespace

    def test_cli_flags_override_env(self):
        policy = ExecutionPolicy.from_args(
            self._args(engine="python", jobs=2),
            env={"REPRO_ENGINE": "vectorized", "REPRO_JOBS": "8"},
        )
        assert (policy.engine, policy.jobs) == ("python", 2)

    def test_algorithm_flag_layers_over_env(self):
        policy = ExecutionPolicy.from_args(
            self._args(algorithm="imm"), env={"REPRO_ALGORITHM": "tim"})
        assert policy.algorithm == "imm"
        env_only = ExecutionPolicy.from_args(
            self._args(), env={"REPRO_ALGORITHM": "imm"})
        assert env_only.algorithm == "imm"

    def test_absent_flags_keep_env_layer(self):
        policy = ExecutionPolicy.from_args(
            self._args(), env={"REPRO_TRACE_EDGES": "1", "REPRO_JOBS": "8"}
        )
        assert policy.trace_edges is True
        assert policy.jobs == 8

    def test_namespace_without_policy_attributes(self):
        policy = ExecutionPolicy.from_args(argparse.Namespace(), env={})
        assert policy == ExecutionPolicy()


class TestLegacyResolution:
    def test_no_legacy_kwargs_no_warning(self, recwarn):
        policy, index = resolve_call_policy("f()", None)
        assert policy == ExecutionPolicy()
        assert index is None
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_legacy_kwargs_warn_and_merge(self):
        with pytest.warns(DeprecationWarning, match="engine, jobs"):
            policy, index = resolve_call_policy(
                "f()", None, engine="python", jobs=2, sketch_index="IDX")
        assert (policy.engine, policy.jobs) == ("python", 2)
        assert index == "IDX"

    def test_explicit_legacy_jobs_none_overrides_policy(self):
        # jobs=None is the old API's spelling of "single stream"; passing
        # it explicitly must win over a policy's worker count.
        with pytest.warns(DeprecationWarning):
            policy, _ = resolve_call_policy(
                "f()", ExecutionPolicy(jobs=4), jobs=None)
        assert policy.jobs is None

    def test_modern_index_wins_over_legacy(self):
        with pytest.warns(DeprecationWarning):
            _, index = resolve_call_policy(
                "f()", None, sketch_index="OLD", index="NEW")
        assert index == "NEW"

    def test_sentinel_repr_and_singleton(self):
        assert repr(DEPRECATED) == "<deprecated>"
        assert type(DEPRECATED)() is DEPRECATED
