"""Tests for the experiment harness."""


from repro.experiments import run_algorithm


class TestRunAlgorithm:
    def test_records_basics(self, small_wc_graph):
        record = run_algorithm(
            small_wc_graph, "tim+", 3, model="IC", dataset="demo", rng=1, epsilon=0.5
        )
        assert record.algorithm == "TIM+"
        assert record.dataset == "demo"
        assert record.k == 3
        assert record.runtime_seconds > 0
        assert len(record.seeds) == 3

    def test_tim_diagnostics_captured(self, small_wc_graph):
        record = run_algorithm(small_wc_graph, "tim+", 3, rng=2, epsilon=0.5)
        assert record.kpt_star is not None
        assert record.kpt_plus >= record.kpt_star
        assert record.theta > 0
        assert record.rr_collection_bytes > 0
        assert "node_selection" in record.phase_seconds

    def test_non_tim_algorithms_have_no_theta(self, small_wc_graph):
        record = run_algorithm(small_wc_graph, "degree", 3, rng=3)
        assert record.theta is None
        assert record.kpt_star is None

    def test_spread_rescoring(self, small_wc_graph):
        record = run_algorithm(
            small_wc_graph, "degree", 3, rng=4, spread_samples=300
        )
        assert record.spread is not None
        assert record.spread >= 3.0  # seeds activate themselves

    def test_no_rescoring_by_default(self, small_wc_graph):
        record = run_algorithm(small_wc_graph, "degree", 3, rng=5)
        assert record.spread is None

    def test_memory_tracking(self, small_wc_graph):
        record = run_algorithm(
            small_wc_graph, "tim+", 2, rng=6, epsilon=0.5, track_memory=True
        )
        assert record.peak_memory_bytes is not None
        assert record.peak_memory_bytes > 0

    def test_kwargs_forwarded(self, small_wc_graph):
        record = run_algorithm(small_wc_graph, "greedy", 2, rng=7, num_runs=5)
        assert record.extras["num_runs"] == 5

    def test_deterministic_given_seed(self, small_wc_graph):
        a = run_algorithm(small_wc_graph, "tim+", 3, rng=8, epsilon=0.5)
        b = run_algorithm(small_wc_graph, "tim+", 3, rng=8, epsilon=0.5)
        assert a.seeds == b.seeds
