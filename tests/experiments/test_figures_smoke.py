"""Smoke tests for the figure generators at miniature parameters.

Full-size reproductions live in benchmarks/; here we only verify that each
experiment runs end to end, produces the advertised columns, and satisfies
the cheap invariants (counts, orderings that are deterministic).
"""

import pytest

from repro.experiments import (
    ablation_coverage,
    ablation_ic_fast_path,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table2,
)

TINY = {"scale": 0.05}  # nethept stand-in at n=75 etc.


class TestTable2:
    def test_five_rows(self):
        result = table2(scale=0.1)
        assert len(result.rows) == 5
        assert result.column("name") == [
            "nethept",
            "epinions",
            "dblp",
            "livejournal",
            "twitter",
        ]

    def test_types_match_paper(self):
        result = table2(scale=0.1)
        assert result.column("type") == [
            "undirected",
            "directed",
            "undirected",
            "directed",
            "directed",
        ]


class TestBaselineFigures:
    def test_figure3_columns(self):
        result = figure3(scale=0.05, k_values=(1, 3), epsilon=0.5, celf_runs=10, ris_tau_constant=0.05)
        assert result.headers == ["k", "TIM", "TIM+", "RIS", "CELF++"]
        assert len(result.rows) == 2
        assert all(isinstance(v, float) and v >= 0 for row in result.rows for v in row[1:])

    def test_figure4_phases_sum(self):
        result = figure4(refine=True, scale=0.05, k_values=(1, 3), epsilon=0.5)
        for row in result.rows:
            assert row[4] == pytest.approx(row[1] + row[2] + row[3])

    def test_figure4_tim_has_no_refinement(self):
        result = figure4(refine=False, scale=0.05, k_values=(2,), epsilon=0.5)
        assert result.rows[0][2] == 0.0

    def test_figure5_kpt_ordering(self):
        result = figure5(
            scale=0.05, k_values=(1, 3), epsilon=0.5, celf_runs=10,
            ris_tau_constant=0.05, spread_samples=200,
        )
        for row in result.rows:
            kpt_star, kpt_plus = row[5], row[6]
            assert kpt_plus >= kpt_star


class TestScaleFigures:
    def test_figure6_shape(self):
        result = figure6(scale=0.03, k_values=(1, 3), epsilon=0.5, datasets=("epinions",))
        assert len(result.rows) == 2
        assert result.headers[2:] == ["TIM(IC)", "TIM+(IC)", "TIM(LT)", "TIM+(LT)"]

    def test_figure6_tim_omitted_on_twitter(self):
        result = figure6(scale=0.02, k_values=(2,), epsilon=0.5, datasets=("twitter",))
        assert result.rows[0][2] is None  # TIM(IC)
        assert result.rows[0][4] is None  # TIM(LT)
        assert result.rows[0][3] is not None  # TIM+ runs

    def test_figure7_rows(self):
        result = figure7(scale=0.03, epsilons=(0.5, 1.0), k=3, datasets=("epinions",))
        assert len(result.rows) == 2
        assert result.column("epsilon") == [0.5, 1.0]

    def test_figure12_memory_positive(self):
        result = figure12(scale=0.03, k_values=(2,), epsilon=0.5, datasets=("nethept",))
        row = result.rows[0]
        assert row[2] > 0 and row[3] > 0  # IC and LT MiB
        assert row[4] > 0 and row[5] > 0  # theta columns


class TestHeuristicFigures:
    def test_figure8_and_9_consistency(self):
        runtime = figure8(scale=0.05, k_values=(1, 3), datasets=("nethept",))
        spread = figure9(
            scale=0.05, k_values=(1, 3), datasets=("nethept",), spread_samples=200
        )
        assert runtime.headers[-1] == "IRIE"
        assert len(runtime.rows) == len(spread.rows) == 2
        # Spreads at least cover the seeds themselves.
        for row in spread.rows:
            assert row[2] >= row[1] * 0  # defined
            assert row[2] >= 1.0

    def test_figure10_and_11(self):
        runtime = figure10(scale=0.05, k_values=(1, 3), datasets=("nethept",))
        spread = figure11(
            scale=0.05, k_values=(1, 3), datasets=("nethept",), spread_samples=200
        )
        assert runtime.headers[-1] == "SIMPATH"
        assert len(runtime.rows) == 2
        for row in spread.rows:
            assert row[2] >= 1.0 and row[3] >= 1.0


class TestAblations:
    def test_sampler_ablation_width_agreement(self):
        result = ablation_ic_fast_path(datasets=("nethept",), scale=0.05, num_sets=2000)
        row = result.rows[0]
        mean_slow, mean_fast = row[4], row[5]
        assert mean_fast == pytest.approx(mean_slow, rel=0.25)

    def test_coverage_ablation_equality(self):
        result = ablation_coverage(dataset="nethept", scale=0.05, num_sets=2000, k_values=(1, 3))
        for row in result.rows:
            assert row[3] == row[4]  # exact_covered == lazy_covered
