"""Tests for the Section 5 theory table."""

from repro.experiments import section5_table


class TestSection5:
    def test_five_rows(self):
        result = section5_table()
        assert len(result.rows) == 5

    def test_tim_dominates_everywhere(self):
        result = section5_table()
        for row in result.rows:
            dataset, tim, ris, greedy, ris_ratio, greedy_ratio = row
            assert ris > tim, dataset
            assert greedy > ris, dataset
            assert ris_ratio > 1
            assert greedy_ratio > ris_ratio

    def test_greedy_gap_is_astronomical_at_scale(self):
        result = section5_table()
        by_name = {row[0]: row for row in result.rows}
        # On the twitter-scale sizes Greedy is > 10^6 x TIM's bound.
        assert by_name["twitter"][5] > 1e6

    def test_parameters_change_ratios(self):
        loose = section5_table(epsilon=0.5)
        tight = section5_table(epsilon=0.1)
        # RIS/TIM ratio carries a 1/eps factor: tighter eps widens the gap.
        assert tight.rows[0][4] > loose.rows[0][4]
