"""Tests for experiment result rendering."""

from repro.experiments import ExperimentResult, format_table, render


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult("t", "title", headers=["k", "time"])
        result.add_row(1, 0.5)
        result.add_row(5, 0.7)
        assert result.column("time") == [0.5, 0.7]

    def test_column_unknown_header(self):
        result = ExperimentResult("t", "title", headers=["k"])
        try:
            result.column("nope")
            assert False, "expected ValueError"
        except ValueError:
            pass


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # All lines equal width per column: header and separator align.
        assert len(lines[1]) == len(lines[0])

    def test_none_renders_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table(["x"], [[0.12345], [1234.5], [12.3]])
        assert "0.1234" in text or "0.1235" in text
        assert "1,234" in text or "1,235" in text

    def test_title_line(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"


class TestRender:
    def test_includes_name_title_and_notes(self):
        result = ExperimentResult(
            "figure-x", "demo title", headers=["k"], notes=["remember this"]
        )
        result.add_row(1)
        text = render(result)
        assert "[figure-x]" in text
        assert "demo title" in text
        assert "note: remember this" in text
