"""Tests for result export / import."""

import csv
import json

from repro.experiments import (
    ExperimentResult,
    RunRecord,
    load_result_json,
    records_to_json,
    result_to_csv,
    result_to_json,
)


def sample_result() -> ExperimentResult:
    result = ExperimentResult("figure-x", "demo", headers=["k", "time", "label"])
    result.add_row(1, 0.5, "a")
    result.add_row(5, None, "b")
    result.notes.append("a note")
    return result


class TestCsv:
    def test_round_trip_values(self, tmp_path):
        path = tmp_path / "out.csv"
        result_to_csv(sample_result(), path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["k", "time", "label"]
        assert rows[1] == ["1", "0.5", "a"]
        assert rows[2] == ["5", "", "b"]  # None -> empty cell


class TestJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        original = sample_result()
        result_to_json(original, path)
        loaded = load_result_json(path)
        assert loaded.name == original.name
        assert loaded.headers == original.headers
        assert loaded.rows == original.rows
        assert loaded.notes == original.notes

    def test_json_is_valid(self, tmp_path):
        path = tmp_path / "out.json"
        result_to_json(sample_result(), path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "figure-x"


class TestRecords:
    def test_records_serialise(self, tmp_path):
        records = [
            RunRecord(
                algorithm="TIM+",
                dataset="nethept",
                model="IC",
                k=5,
                runtime_seconds=0.4,
                seeds=[1, 2, 3, 4, 5],
                theta=1000,
            )
        ]
        path = tmp_path / "records.json"
        records_to_json(records, path)
        payload = json.loads(path.read_text())
        assert payload[0]["algorithm"] == "TIM+"
        assert payload[0]["seeds"] == [1, 2, 3, 4, 5]
        assert payload[0]["theta"] == 1000
