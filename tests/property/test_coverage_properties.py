"""Property-based tests for max-coverage greedy (Algorithm 1's engine)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rrset import (
    brute_force_max_coverage,
    coverage_of,
    greedy_max_coverage,
    lazy_greedy_max_coverage,
)


@st.composite
def coverage_instances(draw, max_nodes=8, max_sets=20):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    num_sets = draw(st.integers(min_value=0, max_value=max_sets))
    sets = [
        tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=min(4, n),
                    unique=True,
                )
            )
        )
        for _ in range(num_sets)
    ]
    k = draw(st.integers(min_value=1, max_value=n))
    return n, sets, k


class TestGreedyCoverageProperties:
    @given(coverage_instances())
    @settings(max_examples=80, deadline=None)
    def test_contract(self, instance):
        n, sets, k = instance
        result = greedy_max_coverage(sets, n, k)
        assert len(result.seeds) == k
        assert len(set(result.seeds)) == k
        assert all(0 <= s < n for s in result.seeds)
        assert result.covered == coverage_of(sets, result.seeds)
        assert 0 <= result.covered <= len(sets)

    @given(coverage_instances())
    @settings(max_examples=80, deadline=None)
    def test_gains_non_increasing(self, instance):
        n, sets, k = instance
        gains = list(greedy_max_coverage(sets, n, k).marginal_gains)
        assert gains == sorted(gains, reverse=True)

    @given(coverage_instances())
    @settings(max_examples=80, deadline=None)
    def test_lazy_matches_exact_coverage(self, instance):
        n, sets, k = instance
        exact = greedy_max_coverage(sets, n, k)
        lazy = lazy_greedy_max_coverage(sets, n, k)
        assert exact.covered == lazy.covered

    @given(coverage_instances(max_nodes=6, max_sets=12))
    @settings(max_examples=40, deadline=None)
    def test_approximation_guarantee(self, instance):
        n, sets, k = instance
        if k > 3:
            k = 3  # keep brute force cheap
        greedy = greedy_max_coverage(sets, n, k)
        optimal = brute_force_max_coverage(sets, n, k)
        assert greedy.covered >= (1 - 1 / 2.718281828) * optimal.covered - 1e-9

    @given(coverage_instances())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_k(self, instance):
        n, sets, k = instance
        if k >= n:
            return
        smaller = greedy_max_coverage(sets, n, k)
        larger = greedy_max_coverage(sets, n, k + 1)
        assert larger.covered >= smaller.covered
        # Greedy is prefix-consistent: first k picks identical.
        assert larger.seeds[:k] == smaller.seeds
