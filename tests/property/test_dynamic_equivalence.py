"""Property suite: incremental repair is equivalent to a cold rebuild.

For any random sequence of insert/delete/reweight operations, the repaired
sketch must

* hold exactly as many RR sets as a cold rebuild (θ never drifts),
* keep the *identical* root sequence (roots are drawn before membership, so
  a cold rebuild from the build seed shares them),
* keep every never-invalidated set bit-identical (kept sets are exact under
  the live-edge coupling, not merely equidistributed),
* maintain the width invariant ``w(R) = Σ in-degree over members`` against
  the *current* snapshot after every update (this is what KPT reads), and
* when no update invalidated any set, reproduce the pre-update selection
  bit-for-bit,

and its seed selection must be statistically as good as the cold rebuild's
(checked by exact spread on enumerable graphs).
"""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import exact_spread_ic
from repro.dynamic import DynamicDiGraph
from repro.graphs import from_edges
from repro.sketch import SketchIndex

THETA = 300
BUILD_SEED = 1234


@st.composite
def evolving_ic_graphs(draw):
    """A small IC graph plus a short valid update sequence.

    Sizes are capped so the *final* graph stays exactly enumerable
    (≤ 16 probabilistic edges), letting the equivalence assertions use
    exact spread instead of a second layer of sampling noise.
    """
    n = draw(st.integers(min_value=4, max_value=8))
    pair_space = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=2, max_value=min(12, len(pair_space))))
    pairs = draw(st.permutations(pair_space).map(lambda p: p[:count]))
    probs = draw(st.lists(st.floats(min_value=0.05, max_value=0.95),
                          min_size=count, max_size=count))
    edges = [(u, v, p) for (u, v), p in zip(pairs, probs)]
    num_ops = draw(st.integers(min_value=1, max_value=4))
    ops = []
    current = list(edges)
    for _ in range(num_ops):
        kind = draw(st.sampled_from(["insert", "delete", "reweight"]))
        if kind == "delete" and len(current) > 1:
            index = draw(st.integers(min_value=0, max_value=len(current) - 1))
            u, v, _ = current.pop(index)
            ops.append(("delete", u, v, None))
        elif kind == "reweight" and current:
            index = draw(st.integers(min_value=0, max_value=len(current) - 1))
            u, v, _ = current[index]
            p = draw(st.floats(min_value=0.05, max_value=0.95))
            current[index] = (u, v, p)
            ops.append(("reweight", u, v, p))
        else:
            free = [pair for pair in pair_space if pair not in {(u, v) for u, v, _ in current}]
            if not free or len(current) >= 16:
                continue
            u, v = draw(st.sampled_from(free))
            p = draw(st.floats(min_value=0.05, max_value=0.95))
            current.append((u, v, p))
            ops.append(("insert", u, v, p))
    return n, edges, ops


def apply_ops(dynamic, index, ops):
    """Run the update sequence; returns total invalidations."""
    total_affected = 0
    for step, (kind, u, v, p) in enumerate(ops):
        if kind == "insert":
            delta = dynamic.insert_edge(u, v, p)
        elif kind == "delete":
            delta = dynamic.delete_edge(u, v)
        else:
            delta = dynamic.reweight_edge(u, v, p)
        report = index.apply_update(delta, rng=9000 + step)
        total_affected += report.num_affected
        # Structural invariants hold after *every* update, not just at the end.
        graph = dynamic.graph
        coll = index.collection
        indeg = np.diff(graph.in_ptr)
        ptr, nodes = coll.ptr_array, coll.nodes_array
        sizes = np.diff(ptr)
        widths = np.where(sizes > 0, np.add.reduceat(indeg[nodes], ptr[:-1]), 0) \
            if nodes.size else np.zeros(len(coll), dtype=np.int64)
        assert np.array_equal(widths, coll.widths_array)
    return total_affected


class TestDynamicEquivalence:
    @given(evolving_ic_graphs())
    @settings(max_examples=30, deadline=None)
    def test_repair_matches_cold_rebuild(self, data):
        n, edges, ops = data
        graph = from_edges(edges, num_nodes=n)
        dynamic = DynamicDiGraph(graph)
        index = SketchIndex.build(graph, "IC", theta=THETA, rng=BUILD_SEED,
                                  trace_edges=True)
        original = index.collection
        original_seeds = index.select(2).seeds
        total_affected = apply_ops(dynamic, index, ops)

        cold = SketchIndex.build(dynamic.graph, "IC", theta=THETA, rng=BUILD_SEED,
                                 trace_edges=True)
        repaired = index.collection

        # Identical RR-set count and identical root sequence.
        assert len(repaired) == len(cold.collection) == THETA
        assert np.array_equal(repaired.roots_array, cold.collection.roots_array)

        # Seed sets are statistically equivalent: both selections clear the
        # same guarantee-anchored floor.  The exact optimum is enumerable on
        # graphs this small, and greedy over θ = 300 i.i.d. RR sets stays
        # within (1 − 1/e) of it plus a little sampling slack.  (Racing the
        # repaired selection against the cold one directly is flaky: two
        # valid sketches can near-tie on coverage counts, and the tie-break
        # then flips a seed, legally moving exact spread by ~1 node.)
        k = min(2, n)
        seeds_repaired = index.select(k, incremental=False).seeds
        seeds_cold = cold.select(k, incremental=False).seeds
        spread_repaired = exact_spread_ic(dynamic.graph, seeds_repaired)
        spread_cold = exact_spread_ic(dynamic.graph, seeds_cold)
        opt = max(exact_spread_ic(dynamic.graph, list(subset))
                  for subset in combinations(range(n), k))
        floor = (1.0 - 1.0 / np.e) * opt - 0.05
        assert spread_cold >= floor
        assert spread_repaired >= floor

        if total_affected == 0:
            # Nothing was invalidated: the repaired sketch is the original
            # sketch (traces re-addressed to the new CSR), and selection is
            # bit-for-bit reproducible.
            assert np.array_equal(repaired.ptr_array, original.ptr_array)
            assert np.array_equal(repaired.nodes_array, original.nodes_array)
            assert seeds_repaired[: len(original_seeds)] == original_seeds

    @given(evolving_ic_graphs())
    @settings(max_examples=20, deadline=None)
    def test_kpt_estimator_tracks_cold_rebuild(self, data):
        """Mean κ (Equation 8) of the repaired sketch sits within sampling
        tolerance of a cold rebuild's — the KPT refresh a warm `tim` reads."""
        n, edges, ops = data
        graph = from_edges(edges, num_nodes=n)
        dynamic = DynamicDiGraph(graph)
        index = SketchIndex.build(graph, "IC", theta=THETA, rng=BUILD_SEED,
                                  trace_edges=True)
        apply_ops(dynamic, index, ops)
        cold = SketchIndex.build(dynamic.graph, "IC", theta=THETA, rng=BUILD_SEED + 1,
                                 trace_edges=True)
        m = dynamic.graph.m
        k = 2
        kappa_repaired = 1.0 - (1.0 - index.collection.widths_array / m) ** k
        kappa_cold = 1.0 - (1.0 - cold.collection.widths_array / m) ** k
        pooled_std = max(float(np.std(kappa_repaired)), float(np.std(kappa_cold)), 1e-9)
        tolerance = 6.0 * pooled_std / np.sqrt(THETA) + 1e-9
        assert abs(float(kappa_repaired.mean()) - float(kappa_cold.mean())) <= tolerance
