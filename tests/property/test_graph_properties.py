"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges, save_edge_list, load_edge_list


@st.composite
def edge_lists(draw, max_nodes=12, max_edges=30):
    """Random (num_nodes, distinct edge list with probabilities)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pair_space = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=0, max_value=min(max_edges, len(pair_space))))
    pairs = draw(st.permutations(pair_space).map(lambda p: p[:count]))
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    return n, [(u, v, p) for (u, v), p in zip(pairs, probs)]


class TestCsrProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        assert int(g.out_degrees().sum()) == g.m
        assert int(g.in_degrees().sum()) == g.m

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edges_round_trip_through_csr(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        from_csr = set()
        for v in g.nodes():
            for u in g.out_neighbors(v):
                from_csr.add((v, int(u)))
        assert from_csr == {(u, v) for u, v, _ in edges}

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        assert g.transpose().transpose().same_structure(g)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_transpose_swaps_degrees(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        t = g.transpose()
        assert np.array_equal(g.out_degrees(), t.in_degrees())
        assert np.array_equal(g.in_degrees(), t.out_degrees())

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_in_out_adjacency_consistent(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        out_pairs = {(v, int(u)) for v in g.nodes() for u in g.out_neighbors(v)}
        in_pairs = {(int(u), v) for v in g.nodes() for u in g.in_neighbors(v)}
        assert out_pairs == in_pairs


class TestIoProperties:
    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_save_load_round_trip(self, tmp_path_factory, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        path = tmp_path_factory.mktemp("io") / "g.txt"
        save_edge_list(g, path)
        loaded, _ = load_edge_list(path)
        if g.m == 0:
            assert loaded.num_edges == 0
        else:
            import math

            # Node labels compact to first-seen order; compare the multiset
            # of probabilities (isomorphism-invariant) to 10-digit precision.
            for saved, read in zip(
                sorted(p for _, _, p in g.edges()),
                sorted(p for _, _, p in loaded.edges()),
            ):
                assert math.isclose(saved, read, rel_tol=1e-9, abs_tol=1e-15)
            assert loaded.num_edges == g.num_edges
