"""Property-based tests for the extension features (bounded IC, weighted IM)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weighted import WeightedRootSampler
from repro.graphs import from_edges
from repro.rrset import ICRRSampler, make_rr_sampler
from repro.utils.rng import RandomSource


@st.composite
def probabilistic_graphs(draw, max_nodes=9):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pair_space = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=1, max_value=min(20, len(pair_space))))
    pairs = draw(st.permutations(pair_space).map(lambda p: p[:count]))
    probs = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    return n, [(u, v, p) for (u, v), p in zip(pairs, probs)]


class TestBoundedRRProperties:
    @given(
        probabilistic_graphs(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_subset_of_unbounded_superset(self, data, horizon, seed):
        """A depth-T RR set must sit inside the deterministic depth-T reverse
        ball of its root, and contain the root."""
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        sampler = ICRRSampler(g, max_depth=horizon)
        rr = sampler.sample(RandomSource(seed))
        assert rr.root in rr.nodes
        # Depth-limited reverse reachability (all edges assumed live).
        from collections import deque

        in_adj, _ = g.in_adjacency()
        ball = {rr.root}
        queue = deque([(rr.root, 0)])
        while queue:
            node, depth = queue.popleft()
            if depth >= horizon:
                continue
            for source_node in in_adj[node]:
                if source_node not in ball:
                    ball.add(source_node)
                    queue.append((source_node, depth + 1))
        assert set(rr.nodes) <= ball

    @given(probabilistic_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_growing_horizon_in_expectation(self, data, seed):
        """Larger horizons cannot shrink the RR-set size distribution.

        Checked in (sampled) expectation: mean size at T=1 <= mean at T=3,
        with slack for Monte-Carlo noise on 300 draws.
        """
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        short_sampler = ICRRSampler(g, max_depth=1)
        long_sampler = ICRRSampler(g, max_depth=3)
        runs = 300
        rng_a = RandomSource(seed)
        rng_b = RandomSource(seed)
        short_mean = sum(len(short_sampler.sample(rng_a)) for _ in range(runs)) / runs
        long_mean = sum(len(long_sampler.sample(rng_b)) for _ in range(runs)) / runs
        assert long_mean >= short_mean - 0.5


class TestWeightedSamplerProperties:
    @given(
        probabilistic_graphs(),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_zero_weight_node_never_roots(self, data, seed, zero_node):
        n, edges = data
        if zero_node >= n:
            zero_node = 0
        g = from_edges(edges, num_nodes=n)
        weights = np.ones(n)
        weights[zero_node] = 0.0
        if weights.sum() == 0.0:
            return
        sampler = WeightedRootSampler(make_rr_sampler(g, "IC"), weights)
        rng = RandomSource(seed)
        assert all(sampler.sample(rng).root != zero_node for _ in range(100))

    @given(probabilistic_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_uniform_weights_keep_rr_invariants(self, data, seed):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        sampler = WeightedRootSampler(make_rr_sampler(g, "IC"), np.ones(n))
        rr = sampler.sample(RandomSource(seed))
        assert rr.root in rr.nodes
        assert len(set(rr.nodes)) == len(rr.nodes)
        assert 0 <= rr.root < n
