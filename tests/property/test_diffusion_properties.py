"""Property-based tests for diffusion semantics.

The deep invariants (monotonicity, seed containment, reachability bounds)
are checked against the *exact* oracles where possible so no statistical
slack is needed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import exact_spread_ic
from repro.diffusion import simulate_ic, simulate_lt
from repro.graphs import from_edges
from repro.graphs.transforms import reachable_from
from repro.utils.rng import RandomSource


@st.composite
def ic_graphs(draw, max_nodes=8, max_random_edges=10):
    """Graphs small enough for exact IC enumeration."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pair_space = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=1, max_value=min(max_random_edges, len(pair_space))))
    pairs = draw(st.permutations(pair_space).map(lambda p: p[:count]))
    probs = draw(
        st.lists(
            st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
            min_size=count,
            max_size=count,
        )
    )
    return n, [(u, v, p) for (u, v), p in zip(pairs, probs)]


class TestSimulationInvariants:
    @given(ic_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_activation_bounds(self, data, seed):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        seeds = [0]
        activated = simulate_ic(g, seeds, RandomSource(seed))
        assert set(seeds) <= activated
        assert activated <= reachable_from(g, seeds)

    @given(ic_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_lt_activation_bounds(self, data, seed):
        n, edges = data
        # Normalise weights so LT is valid.
        in_sums: dict[int, float] = {}
        for u, v, p in edges:
            in_sums[v] = in_sums.get(v, 0.0) + p
        lt_edges = [
            (u, v, p / in_sums[v] if in_sums[v] > 1.0 else p) for u, v, p in edges
        ]
        g = from_edges(lt_edges, num_nodes=n)
        seeds = [0]
        activated = simulate_lt(g, seeds, RandomSource(seed))
        assert set(seeds) <= activated
        assert activated <= reachable_from(g, seeds)


class TestExactSpreadProperties:
    @given(ic_graphs())
    @settings(max_examples=30, deadline=None)
    def test_monotonicity(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        spread_single = exact_spread_ic(g, [0])
        spread_pair = exact_spread_ic(g, [0, 1])
        assert spread_pair >= spread_single - 1e-12

    @given(ic_graphs())
    @settings(max_examples=30, deadline=None)
    def test_submodularity_on_fixed_triple(self, data):
        n, edges = data
        if n < 3:
            return
        g = from_edges(edges, num_nodes=n)
        # Marginal gain of node 2 shrinks as the base grows: f({0,2}) - f({0})
        # >= f({0,1,2}) - f({0,1}).
        gain_small = exact_spread_ic(g, [0, 2]) - exact_spread_ic(g, [0])
        gain_large = exact_spread_ic(g, [0, 1, 2]) - exact_spread_ic(g, [0, 1])
        assert gain_small >= gain_large - 1e-9

    @given(ic_graphs())
    @settings(max_examples=30, deadline=None)
    def test_spread_bounds(self, data):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        spread = exact_spread_ic(g, [0])
        assert 1.0 - 1e-12 <= spread <= n + 1e-12

    @given(ic_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_monte_carlo_consistent_with_exact(self, data, seed):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        exact = exact_spread_ic(g, [0])
        rng = RandomSource(seed)
        runs = 1500
        mc = sum(len(simulate_ic(g, [0], rng)) for _ in range(runs)) / runs
        # 1500 runs, spread range [1, 8]: allow a generous 5-sigma band.
        assert abs(mc - exact) < 0.45
