"""Distributional equivalence of the vectorized and Python RR engines.

The vectorized sampler consumes random numbers in a different order than the
scalar one, so set-for-set equality is impossible; what must hold is that
both draw from the *same distribution*.  These tests pin that down with
Monte-Carlo estimates under fixed seeds: marginal node-inclusion
frequencies, mean widths / κ, and end-to-end TIM results must agree within
sampling tolerance, and each engine must be exactly deterministic given its
seed.
"""

import numpy as np
import pytest

from repro.api import ExecutionPolicy
from repro.core import estimate_kpt, node_selection, tim, tim_plus
from repro.graphs import gnm_random_digraph, star_digraph, weighted_cascade
from repro.rrset import make_rr_sampler
from repro.rrset.ic_sampler import ICRRSampler
from repro.utils.rng import RandomSource

NUM_SAMPLES = 12_000


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(300, 1800, rng=42))


def scalar_reference(sampler, graph, count, seed):
    rng = RandomSource(seed)
    frequencies = np.zeros(graph.n)
    widths = np.zeros(count)
    sizes = np.zeros(count)
    for i in range(count):
        rr = sampler.sample_rooted(rng.randrange(graph.n), rng)
        widths[i] = rr.width
        sizes[i] = len(rr)
        for node in rr.nodes:
            frequencies[node] += 1
    return frequencies / count, widths, sizes


class TestSamplerEquivalence:
    def test_batch_deterministic_given_seed(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        roots = RandomSource(0).np.integers(0, wc_graph.n, size=500)
        a = sampler.sample_batch(roots, RandomSource(1))
        b = sampler.sample_batch(roots, RandomSource(1))
        assert np.array_equal(a.ptr_array, b.ptr_array)
        assert np.array_equal(a.nodes_array, b.nodes_array)
        assert np.array_equal(a.widths_array, b.widths_array)

    def test_marginal_inclusion_frequencies_match(self, wc_graph):
        """Per-node inclusion rates of both engines agree within MC noise."""
        sampler = make_rr_sampler(wc_graph, "IC")
        py_freq, py_widths, py_sizes = scalar_reference(
            sampler, wc_graph, NUM_SAMPLES, seed=7
        )
        batch = sampler.sample_random_batch(NUM_SAMPLES, RandomSource(8))
        vec_freq = batch.node_frequency_array() / NUM_SAMPLES

        # Binomial standard error per node is sqrt(p(1-p)/N); allow 5 sigma
        # plus an absolute floor for the rarely-included nodes.
        sigma = np.sqrt(np.maximum(py_freq * (1 - py_freq), 1e-4) / NUM_SAMPLES)
        assert np.all(np.abs(vec_freq - py_freq) < 5 * sigma + 5e-3)

        # Aggregate moments: mean set size and mean width within 5%.
        assert batch.set_sizes().mean() == pytest.approx(py_sizes.mean(), rel=0.05)
        assert batch.widths_array.mean() == pytest.approx(py_widths.mean(), rel=0.05)

    def test_mean_kappa_matches(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        _, py_widths, _ = scalar_reference(sampler, wc_graph, NUM_SAMPLES, seed=9)
        batch = sampler.sample_random_batch(NUM_SAMPLES, RandomSource(10))
        m = wc_graph.m
        for k in (1, 5, 20):
            py_kappa = float(np.mean(1.0 - (1.0 - py_widths / m) ** k))
            assert batch.mean_kappa(k) == pytest.approx(py_kappa, rel=0.05, abs=5e-4)

    def test_geometric_skip_on_off_equivalent(self, wc_graph):
        """Skip sampling is exact: both variants draw the same distribution."""
        on = ICRRSampler(wc_graph, use_geometric_skip=True)
        # Force the skip path to actually engage on modest frontiers.
        on.GEOMETRIC_SKIP_MIN_EDGES = 1
        off = ICRRSampler(wc_graph, use_geometric_skip=False)
        batch_on = on.sample_random_batch(NUM_SAMPLES, RandomSource(11))
        batch_off = off.sample_random_batch(NUM_SAMPLES, RandomSource(12))
        assert batch_on.set_sizes().mean() == pytest.approx(
            batch_off.set_sizes().mean(), rel=0.05
        )
        assert batch_on.widths_array.mean() == pytest.approx(
            batch_off.widths_array.mean(), rel=0.05
        )

    def test_mixed_probability_graph(self):
        """Non-uniform in-probabilities exercise the per-edge flip path."""
        rng = np.random.default_rng(13)
        base = gnm_random_digraph(200, 1200, rng=13)
        graph = base.with_probabilities(rng.uniform(0.02, 0.4, size=base.m))
        sampler = make_rr_sampler(graph, "IC")
        py_freq, py_widths, _ = scalar_reference(sampler, graph, 8000, seed=14)
        batch = sampler.sample_random_batch(8000, RandomSource(15))
        vec_freq = batch.node_frequency_array() / 8000
        sigma = np.sqrt(np.maximum(py_freq * (1 - py_freq), 1e-4) / 8000)
        assert np.all(np.abs(vec_freq - py_freq) < 5 * sigma + 8e-3)
        assert batch.widths_array.mean() == pytest.approx(py_widths.mean(), rel=0.05)

    def test_bounded_depth_equivalence(self, wc_graph):
        """max_depth truncation matches between wave BFS and scalar FIFO."""
        bounded_py = ICRRSampler(wc_graph, max_depth=2)
        py_freq, py_widths, py_sizes = scalar_reference(
            bounded_py, wc_graph, 8000, seed=16
        )
        batch = bounded_py.sample_random_batch(8000, RandomSource(17))
        assert batch.set_sizes().mean() == pytest.approx(py_sizes.mean(), rel=0.05)
        assert batch.widths_array.mean() == pytest.approx(py_widths.mean(), rel=0.05)
        vec_freq = batch.node_frequency_array() / 8000
        sigma = np.sqrt(np.maximum(py_freq * (1 - py_freq), 1e-4) / 8000)
        assert np.all(np.abs(vec_freq - py_freq) < 5 * sigma + 8e-3)

    def test_depth_one_is_direct_in_neighbors_subset(self, wc_graph):
        sampler = ICRRSampler(wc_graph, max_depth=1)
        batch = sampler.sample_random_batch(300, RandomSource(18))
        ptr, nodes = batch.ptr_array, batch.nodes_array
        for i, root in enumerate(batch.roots_array[:100]):
            members = set(nodes[ptr[i] : ptr[i + 1]].tolist())
            members.discard(int(root))
            allowed = set(wc_graph.in_neighbors(int(root)).tolist())
            assert members <= allowed


class TestAlgorithmEquivalence:
    def test_kpt_estimates_agree(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        vec = estimate_kpt(wc_graph, 5, sampler, rng=20, engine="vectorized")
        py = estimate_kpt(wc_graph, 5, sampler, rng=21, engine="python")
        assert vec.kpt_star == pytest.approx(py.kpt_star, rel=0.35)
        assert len(vec.last_iteration_sets) > 0

    def test_node_selection_spread_agrees(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        vec = node_selection(wc_graph, 5, theta=3000, sampler=sampler, rng=22, engine="vectorized")
        py = node_selection(wc_graph, 5, theta=3000, sampler=sampler, rng=23, engine="python")
        assert vec.estimated_spread == pytest.approx(py.estimated_spread, rel=0.1)

    def test_tim_engines_agree_on_spread(self, wc_graph):
        vec = tim(wc_graph, 5, epsilon=0.5, rng=24, policy=ExecutionPolicy(engine="vectorized"))
        py = tim(wc_graph, 5, epsilon=0.5, rng=24, policy=ExecutionPolicy(engine="python"))
        assert vec.extras["engine"] == "vectorized"
        assert py.extras["engine"] == "python"
        assert vec.estimated_spread == pytest.approx(py.estimated_spread, rel=0.1)

    def test_tim_plus_engines_agree_on_spread(self, wc_graph):
        vec = tim_plus(wc_graph, 4, epsilon=0.5, rng=25, policy=ExecutionPolicy(engine="vectorized"))
        py = tim_plus(wc_graph, 4, epsilon=0.5, rng=25, policy=ExecutionPolicy(engine="python"))
        assert vec.estimated_spread == pytest.approx(py.estimated_spread, rel=0.1)

    def test_engines_find_same_obvious_seed(self):
        g = star_digraph(40, prob=1.0, outward=True)
        vec = tim(g, 1, epsilon=0.5, rng=26, policy=ExecutionPolicy(engine="vectorized"))
        py = tim(g, 1, epsilon=0.5, rng=26, policy=ExecutionPolicy(engine="python"))
        assert vec.seeds == py.seeds == [0]

    def test_rejects_unknown_engine(self, wc_graph):
        with pytest.raises(ValueError, match="engine"):
            tim(wc_graph, 2, epsilon=0.5, rng=1, policy=ExecutionPolicy(engine="turbo"))
        sampler = make_rr_sampler(wc_graph, "IC")
        with pytest.raises(ValueError, match="engine"):
            node_selection(wc_graph, 2, theta=10, sampler=sampler, engine="turbo")
        with pytest.raises(ValueError, match="engine"):
            estimate_kpt(wc_graph, 2, sampler, engine="turbo")

    def test_python_fallback_batch_for_lt(self):
        """Samplers without a numpy path batch via the base-class loop."""
        from repro.graphs import uniform_random_lt

        g = uniform_random_lt(gnm_random_digraph(80, 400, rng=30), rng=31)
        result = tim(g, 3, epsilon=0.5, model="LT", rng=32, policy=ExecutionPolicy(engine="vectorized"))
        assert len(result.seeds) == 3
