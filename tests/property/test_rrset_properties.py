"""Property-based tests for RR-set samplers (the paper's core objects)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges
from repro.graphs.transforms import reverse_reachable_to
from repro.rrset import ICRRSampler, LTRRSampler
from repro.utils.rng import RandomSource


@st.composite
def weighted_graphs(draw, max_nodes=10):
    """Random digraph with per-node sub-stochastic in-weights (LT-legal)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pair_space = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=1, max_value=min(25, len(pair_space))))
    pairs = draw(st.permutations(pair_space).map(lambda p: p[:count]))
    # Assign weights then normalise per in-node so LT validity holds.
    raw = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    in_sums: dict[int, float] = {}
    for (u, v), w in zip(pairs, raw):
        in_sums[v] = in_sums.get(v, 0.0) + w
    edges = [
        (u, v, w / max(in_sums[v], 1.0) if in_sums[v] > 1.0 else w)
        for (u, v), w in zip(pairs, raw)
    ]
    return n, edges


class TestICSamplerProperties:
    @given(weighted_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, data, seed):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        sampler = ICRRSampler(g)
        rng = RandomSource(seed)
        rr = sampler.sample(rng)
        # Root membership.
        assert rr.root in rr.nodes
        # No duplicates.
        assert len(set(rr.nodes)) == len(rr.nodes)
        # Subset of deterministic reverse reachability.
        assert set(rr.nodes) <= reverse_reachable_to(g, rr.root)
        # Width accounting (Equation 1).
        in_degrees = g.in_degrees()
        assert rr.width == int(sum(in_degrees[v] for v in rr.nodes))
        # Cost = nodes + edges examined.
        assert rr.cost == len(rr.nodes) + rr.width

    @given(weighted_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_fast_and_slow_paths_share_invariants(self, data, seed):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        for fast in (True, False):
            sampler = ICRRSampler(g, use_fast_path=fast)
            rr = sampler.sample(RandomSource(seed))
            assert rr.root in rr.nodes
            assert set(rr.nodes) <= reverse_reachable_to(g, rr.root)


class TestLTSamplerProperties:
    @given(weighted_graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, data, seed):
        n, edges = data
        g = from_edges(edges, num_nodes=n)
        sampler = LTRRSampler(g)
        rr = sampler.sample(RandomSource(seed))
        assert rr.root in rr.nodes
        assert rr.nodes[0] == rr.root
        assert len(set(rr.nodes)) == len(rr.nodes)
        # Walk property: consecutive nodes are in-neighbour hops.
        in_adj, _ = g.in_adjacency()
        nodes = list(rr.nodes)
        for i in range(len(nodes) - 1):
            assert nodes[i + 1] in in_adj[nodes[i]]
        assert set(rr.nodes) <= reverse_reachable_to(g, rr.root)
