"""Tests for the sharded worker-pool RR engine (repro.parallel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import gnm_random_digraph, uniform_random_lt, weighted_cascade
from repro.parallel import (
    MAX_SHARDS,
    MIN_SHARD,
    ParallelSampler,
    maybe_parallel,
    resolve_jobs,
    shard_sizes,
)
from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(1500, 9000, rng=17))


@pytest.fixture(scope="module")
def lt_graph():
    return uniform_random_lt(gnm_random_digraph(1000, 6000, rng=18), rng=1)


def collection_arrays(collection):
    return (
        collection.ptr_array,
        collection.nodes_array,
        collection.roots_array,
        collection.widths_array,
        collection.costs_array,
    )


def assert_collections_identical(a, b):
    for left, right in zip(collection_arrays(a), collection_arrays(b)):
        assert np.array_equal(left, right)


class TestShardLayout:
    def test_sizes_sum_to_count(self):
        for count in (1, 7, MIN_SHARD, MIN_SHARD + 1, 50_000, 10**6):
            sizes = shard_sizes(count)
            assert sum(sizes) == count
            assert all(size >= 1 for size in sizes)

    def test_small_batches_are_one_shard(self):
        assert shard_sizes(MIN_SHARD) == [MIN_SHARD]
        assert len(shard_sizes(MIN_SHARD - 1)) == 1

    def test_shard_count_capped(self):
        assert len(shard_sizes(10**7)) == MAX_SHARDS

    def test_balanced_within_one(self):
        sizes = shard_sizes(10_001)
        assert max(sizes) - min(sizes) <= 1

    def test_empty(self):
        assert shard_sizes(0) == []
        assert shard_sizes(-5) == []

    def test_layout_is_worker_count_free(self):
        # The layout API deliberately has no jobs parameter: this pins the
        # determinism contract at the signature level.
        import inspect

        assert "jobs" not in inspect.signature(shard_sizes).parameters


class TestResolveJobs:
    def test_zero_means_all_cores(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_literal(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5

    def test_rejects_negative_and_bool(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            resolve_jobs(True)
        with pytest.raises(ValueError):
            resolve_jobs(1.5)


class TestMaybeParallel:
    def test_none_passes_through(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        wrapped, owned = maybe_parallel(sampler, None)
        assert wrapped is sampler and not owned

    def test_wraps_on_explicit_jobs(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        wrapped, owned = maybe_parallel(sampler, 1)
        assert isinstance(wrapped, ParallelSampler) and owned
        wrapped.close()

    def test_already_wrapped_passes_through(self, wc_graph):
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as wrapped:
            again, owned = maybe_parallel(wrapped, None)
            assert again is wrapped and not owned
            same, owned = maybe_parallel(wrapped, 1)
            assert same is wrapped and not owned

    def test_conflicting_jobs_on_wrapped_sampler_warns(self, wc_graph):
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as wrapped:
            with pytest.warns(RuntimeWarning, match="conflicting jobs=4"):
                again, owned = maybe_parallel(wrapped, 4)
            assert again is wrapped and not owned


class TestDeterminism:
    def test_random_batch_identical_across_jobs(self, wc_graph):
        results = {}
        for jobs in (1, 2, 4):
            with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=jobs) as sampler:
                results[jobs] = sampler.sample_random_batch(3000, rng=101)
        assert_collections_identical(results[1], results[2])
        assert_collections_identical(results[1], results[4])

    def test_explicit_roots_identical_across_jobs(self, wc_graph):
        roots = np.arange(0, wc_graph.n, 1, dtype=np.int64)
        batches = []
        for jobs in (1, 3):
            with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=jobs) as sampler:
                batches.append(sampler.sample_batch(roots, rng=5))
        assert_collections_identical(*batches)
        assert np.array_equal(batches[0].roots_array, roots.astype(np.int32))

    def test_lt_identical_across_jobs(self, lt_graph):
        results = []
        for jobs in (1, 2):
            with ParallelSampler(make_rr_sampler(lt_graph, "LT"), jobs=jobs) as sampler:
                results.append(sampler.sample_random_batch(2500, rng=7))
        assert_collections_identical(*results)

    def test_same_seed_same_result_repeated(self, wc_graph):
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=2) as sampler:
            first = sampler.sample_random_batch(2000, rng=9)
            second = sampler.sample_random_batch(2000, rng=9)
        assert_collections_identical(first, second)

    def test_transports_agree(self, wc_graph):
        with ParallelSampler(
            make_rr_sampler(wc_graph, "IC"), jobs=2, transport="shared_memory"
        ) as shm_sampler:
            via_shm = shm_sampler.sample_random_batch(2000, rng=13)
        with ParallelSampler(
            make_rr_sampler(wc_graph, "IC"), jobs=2, transport="memmap"
        ) as mm_sampler:
            via_memmap = mm_sampler.sample_random_batch(2000, rng=13)
        assert_collections_identical(via_shm, via_memmap)

    def test_distribution_matches_serial_engine(self, wc_graph):
        # Different RNG consumption than the legacy stream, but the same
        # distribution: compare mean RR-set sizes.
        base = make_rr_sampler(wc_graph, "IC")
        serial = base.sample_random_batch(4000, RandomSource(1))
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as sampler:
            sharded = sampler.sample_random_batch(4000, rng=2)
        assert sharded.set_sizes().mean() == pytest.approx(
            serial.set_sizes().mean(), rel=0.15
        )


class TestPoolLifecycle:
    def test_pool_is_lazy(self, wc_graph):
        sampler = ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=2)
        assert sampler._state.get("executor") is None
        sampler.sample_random_batch(1500, rng=3)
        assert sampler._state.get("executor") is not None
        sampler.close()
        assert sampler._state.get("executor") is None

    def test_jobs_one_never_spawns(self, wc_graph):
        inline = ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1)
        inline.sample_random_batch(5000, rng=3)
        assert inline._state.get("executor") is None
        inline.close()

    def test_reuse_after_close_respawns(self, wc_graph):
        sampler = ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=2)
        first = sampler.sample_random_batch(2000, rng=21)
        sampler.close()
        second = sampler.sample_random_batch(2000, rng=21)
        sampler.close()
        assert_collections_identical(first, second)

    def test_crashed_pool_recovers(self, wc_graph):
        sampler = ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=2)
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as reference:
            expected = reference.sample_random_batch(3000, rng=31)
        sampler.sample_random_batch(2000, rng=30)  # spawn the pool
        for process in sampler._state["executor"]._processes.values():
            process.kill()  # simulate an OOM-killed / crashed worker
        survived = sampler.sample_random_batch(3000, rng=31)
        sampler.close()
        assert_collections_identical(survived, expected)

    def test_double_crashed_pool_recovers_identically(self, wc_graph):
        # Two separate pool losses in one sampler lifetime: each wave
        # respawns under the retry budget and re-runs the same shard seed
        # stream, so every recovery reproduces the un-faulted bytes.
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as reference:
            expected_a = reference.sample_random_batch(3000, rng=41)
            expected_b = reference.sample_random_batch(2500, rng=42)
        sampler = ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=2)
        sampler.sample_random_batch(2000, rng=40)  # spawn the pool
        for process in sampler._state["executor"]._processes.values():
            process.kill()
        first = sampler.sample_random_batch(3000, rng=41)
        for process in sampler._state["executor"]._processes.values():
            process.kill()
        second = sampler.sample_random_batch(2500, rng=42)
        assert not sampler._pool_disabled  # both crashes stayed in budget
        sampler.close()
        assert_collections_identical(first, expected_a)
        assert_collections_identical(second, expected_b)

    def test_context_manager_closes(self, wc_graph):
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=2) as sampler:
            sampler.sample_random_batch(1500, rng=1)
        assert sampler._state.get("executor") is None


class TestDegradation:
    def test_unsupported_sampler_warns_once_and_stays_correct(self, wc_graph):
        from repro.diffusion.triggering import ICTriggering, TriggeringModel
        from repro.rrset import make_rr_sampler as make

        model = TriggeringModel(ICTriggering(wc_graph))
        with pytest.warns(RuntimeWarning, match="cannot be rebuilt in worker"):
            with ParallelSampler(make(wc_graph, model), jobs=2) as sampler:
                degraded = sampler.sample_random_batch(1200, rng=4)
        with ParallelSampler(make(wc_graph, model), jobs=1) as sampler:
            inline = sampler.sample_random_batch(1200, rng=4)
        assert_collections_identical(degraded, inline)

    def test_delegated_scalar_surface(self, wc_graph):
        with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as sampler:
            rr = sampler.sample_rooted(3, RandomSource(2))
            assert rr.root == 3
            assert sampler.model_name == "IC"
            assert sampler.graph is wc_graph
            assert sampler.width_of([3]) == wc_graph.in_degree(3)
            # Tuning knobs read through to the base sampler.
            assert sampler.use_fast_path is True
