"""`jobs=` threading through the core algorithms, sketch subsystem, and CLI.

The contract under test everywhere: an explicit ``jobs`` engages the
sharded deterministic engine, and every worker count produces byte-identical
RR collections — hence identical KPT estimates, seed sets, and sketch
files.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.algorithms.ris import ris
from repro.core import estimate_kpt, node_selection, tim, tim_plus
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.rrset import make_rr_sampler
from repro.sketch import InfluenceService, SketchIndex

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")  # this module deliberately exercises the deprecated legacy surface



@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(900, 5500, rng=23))


class TestCoreAlgorithms:
    def test_estimate_kpt_identical_across_jobs(self, wc_graph):
        results = [
            estimate_kpt(wc_graph, 5, make_rr_sampler(wc_graph, "IC"), rng=3, jobs=jobs)
            for jobs in (1, 2, 4)
        ]
        assert results[0].kpt_star == results[1].kpt_star == results[2].kpt_star
        assert results[0].num_rr_sets == results[1].num_rr_sets == results[2].num_rr_sets
        assert results[0].total_cost == results[1].total_cost == results[2].total_cost

    def test_tim_identical_across_jobs(self, wc_graph):
        results = [tim(wc_graph, 4, epsilon=0.5, rng=11, jobs=jobs) for jobs in (1, 2, 4)]
        assert results[0].seeds == results[1].seeds == results[2].seeds
        assert results[0].theta == results[1].theta == results[2].theta
        assert results[0].kpt_star == results[1].kpt_star == results[2].kpt_star
        assert (
            results[0].estimated_spread
            == results[1].estimated_spread
            == results[2].estimated_spread
        )

    def test_tim_plus_identical_across_jobs(self, wc_graph):
        a = tim_plus(wc_graph, 4, epsilon=0.5, rng=13, jobs=1)
        b = tim_plus(wc_graph, 4, epsilon=0.5, rng=13, jobs=2)
        assert a.seeds == b.seeds
        assert a.kpt_plus == b.kpt_plus
        assert a.extras["interim_seeds"] == b.extras["interim_seeds"]

    def test_node_selection_identical_across_jobs(self, wc_graph):
        picks = [
            node_selection(
                wc_graph, 3, 2500, make_rr_sampler(wc_graph, "IC"), rng=7, jobs=jobs
            )
            for jobs in (1, 2)
        ]
        assert picks[0].seeds == picks[1].seeds
        assert picks[0].coverage_fraction == picks[1].coverage_fraction
        assert np.array_equal(
            picks[0].collection.nodes_array, picks[1].collection.nodes_array
        )

    def test_ris_identical_across_jobs(self, wc_graph):
        a = ris(wc_graph, 3, rng=5, epsilon=0.4, jobs=1)
        b = ris(wc_graph, 3, rng=5, epsilon=0.4, jobs=2)
        assert a.seeds == b.seeds
        assert a.extras["num_rr_sets"] == b.extras["num_rr_sets"]
        assert a.extras["total_cost"] == b.extras["total_cost"]

    def test_jobs_zero_resolves_to_cpu_count(self, wc_graph):
        baseline = tim(wc_graph, 3, epsilon=0.5, rng=17, jobs=1)
        all_cores = tim(wc_graph, 3, epsilon=0.5, rng=17, jobs=0)
        assert all_cores.seeds == baseline.seeds

    def test_python_engine_ignores_jobs_with_warning(self, wc_graph):
        with pytest.warns(RuntimeWarning, match="jobs is ignored"):
            result = tim(wc_graph, 3, epsilon=0.6, rng=19, engine="python", jobs=2)
        assert len(result.seeds) == 3

    def test_python_engine_warning_is_consistent_everywhere(self, wc_graph):
        sampler = make_rr_sampler(wc_graph, "IC")
        with pytest.warns(RuntimeWarning, match="jobs is ignored"):
            estimate_kpt(wc_graph, 3, sampler, rng=2, engine="python", jobs=2)
        with pytest.warns(RuntimeWarning, match="jobs is ignored"):
            node_selection(wc_graph, 2, 200, sampler, rng=2, engine="python", jobs=2)
        with pytest.warns(RuntimeWarning, match="jobs is ignored"):
            SketchIndex.build(wc_graph, "IC", theta=100, rng=2, engine="python", jobs=2)

    def test_legacy_default_path_unchanged(self, wc_graph):
        # jobs=None must keep consuming the caller's RNG exactly as before
        # the parallel engine existed: two calls agree with each other.
        a = tim(wc_graph, 3, epsilon=0.6, rng=29)
        b = tim(wc_graph, 3, epsilon=0.6, rng=29)
        assert a.seeds == b.seeds


class TestSketchSubsystem:
    def test_sketch_files_bit_identical_across_jobs(self, wc_graph, tmp_path):
        digests = []
        for jobs in (1, 2, 4):
            path = tmp_path / f"sketch-j{jobs}.npz"
            index = SketchIndex.build(wc_graph, "IC", theta=3000, rng=41, jobs=jobs)
            index.close()
            index.save(path)
            digests.append(hashlib.sha256(path.read_bytes()).hexdigest())
        assert digests[0] == digests[1] == digests[2]

    def test_ensure_theta_jobs_invariant(self, wc_graph):
        grown = []
        for jobs in (1, 2):
            index = SketchIndex.build(wc_graph, "IC", theta=1500, rng=43, jobs=1)
            added = index.ensure_theta(3500, rng=44, jobs=jobs)
            assert added == 2000
            index.close()
            grown.append(index)
        assert np.array_equal(
            grown[0].collection.nodes_array, grown[1].collection.nodes_array
        )
        assert grown[0].select(4).seeds == grown[1].select(4).seeds

    def test_tim_through_index_matches_cold_tim(self, wc_graph):
        cold = tim(wc_graph, 4, epsilon=0.6, rng=47, jobs=2)
        index = SketchIndex(graph=wc_graph)
        warm = tim(wc_graph, 4, epsilon=0.6, rng=47, jobs=2, sketch_index=index)
        assert warm.seeds == cold.seeds

    def test_index_close_allows_further_growth(self, wc_graph):
        index = SketchIndex.build(wc_graph, "IC", theta=1200, rng=51, jobs=2)
        index.close()
        # The pool respawns lazily; growth after close still works.
        assert index.ensure_theta(1800, rng=52) == 600
        index.close()

    def test_service_builds_with_jobs(self, wc_graph):
        service = InfluenceService(theta=800, jobs=2, rng=53)
        first = service.query(wc_graph, {"op": "select", "k": 3})
        assert first["ok"] and first["cache"] == "miss"
        second = service.query(wc_graph, {"op": "select", "k": 3})
        assert second["ok"] and second["cache"] == "hit"
        assert first["result"]["seeds"] == second["result"]["seeds"]
        service.close()


class TestCLI:
    def test_run_accepts_jobs(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--algorithm", "tim", "--dataset", "nethept", "--scale", "0.1",
            "-k", "2", "--epsilon", "0.6", "--seed", "3", "--jobs", "2",
        ]) == 0
        assert "seeds" in capsys.readouterr().out

    def test_run_rejects_jobs_for_non_engine_algorithms(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--jobs applies to"):
            main([
                "run", "--algorithm", "greedy", "--dataset", "nethept",
                "--scale", "0.05", "-k", "2", "--jobs", "2",
            ])

    def test_sketch_jobs_matches_serial_file(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        for jobs, name in ((None, "serial.npz"), (2, "sharded.npz")):
            path = tmp_path / name
            argv = [
                "sketch", "--dataset", "nethept", "--scale", "0.1", "-k", "2",
                "--theta", "1500", "--seed", "5", "--out", str(path),
            ]
            if jobs is not None:
                argv += ["--jobs", str(jobs)]
            assert main(argv) == 0
            paths.append(path)
        capsys.readouterr()
        # jobs=None (legacy stream) and jobs=2 (sharded) are different but
        # both deterministic; re-running the sharded build reproduces it.
        rerun = tmp_path / "sharded-again.npz"
        assert main([
            "sketch", "--dataset", "nethept", "--scale", "0.1", "-k", "2",
            "--theta", "1500", "--seed", "5", "--jobs", "1", "--out", str(rerun),
        ]) == 0
        capsys.readouterr()
        assert rerun.read_bytes() == paths[1].read_bytes()
