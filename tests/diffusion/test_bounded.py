"""Tests for the time-critical (bounded-horizon) IC model."""

import pytest

from repro.analysis import exact_spread_ic
from repro.diffusion import BoundedIndependentCascade, simulate_bounded_ic, simulate_ic
from repro.graphs import path_digraph, star_digraph
from repro.utils.rng import RandomSource


class TestSimulation:
    def test_horizon_limits_chain(self):
        g = path_digraph(6, prob=1.0)
        assert simulate_bounded_ic(g, [0], max_steps=2, rng=1) == {0, 1, 2}

    def test_horizon_one_is_direct_neighbours(self):
        g = star_digraph(5, prob=1.0, outward=True)
        assert simulate_bounded_ic(g, [0], max_steps=1, rng=1) == {0, 1, 2, 3, 4}
        g2 = path_digraph(4, prob=1.0)
        assert simulate_bounded_ic(g2, [0], max_steps=1, rng=1) == {0, 1}

    def test_large_horizon_equals_plain_ic(self):
        g = path_digraph(5, prob=1.0)
        bounded = simulate_bounded_ic(g, [0], max_steps=50, rng=2)
        plain = simulate_ic(g, [0], rng=3)
        assert bounded == plain

    def test_monotone_in_horizon_statistically(self):
        g = path_digraph(5, prob=0.7)
        rng = RandomSource(4)
        short = sum(len(simulate_bounded_ic(g, [0], 1, rng)) for _ in range(2000)) / 2000
        rng = RandomSource(4)
        long = sum(len(simulate_bounded_ic(g, [0], 3, rng)) for _ in range(2000)) / 2000
        assert long >= short

    def test_rejects_zero_horizon(self):
        with pytest.raises(ValueError):
            simulate_bounded_ic(path_digraph(3), [0], max_steps=0)


class TestModelClass:
    def test_name_and_repr(self):
        model = BoundedIndependentCascade(3)
        assert model.name == "bounded-IC"
        assert "3" in repr(model)

    def test_simulate_delegates(self):
        g = path_digraph(4, prob=1.0)
        model = BoundedIndependentCascade(2)
        assert model.simulate(g, [0], RandomSource(1)) == {0, 1, 2}


class TestExactOracleBounded:
    def test_exact_bounded_chain(self):
        g = path_digraph(4, prob=0.5)
        # Within 2 hops: 1 + 0.5 + 0.25 (node 3 at hop 3 excluded).
        assert exact_spread_ic(g, [0], max_steps=2) == pytest.approx(1.75)

    def test_exact_bounded_matches_mc(self):
        g = path_digraph(5, prob=0.6)
        exact = exact_spread_ic(g, [0], max_steps=2)
        rng = RandomSource(5)
        runs = 20000
        mc = sum(len(simulate_bounded_ic(g, [0], 2, rng)) for _ in range(runs)) / runs
        assert mc == pytest.approx(exact, abs=0.03)


class TestBoundedRRSets:
    def test_sampler_dispatch(self, small_wc_graph):
        from repro.rrset import ICRRSampler, make_rr_sampler

        sampler = make_rr_sampler(small_wc_graph, BoundedIndependentCascade(2))
        assert isinstance(sampler, ICRRSampler)
        assert sampler.max_depth == 2

    def test_depth_one_rr_sets_are_in_neighbourhoods(self, small_wc_graph):
        from repro.rrset import ICRRSampler

        sampler = ICRRSampler(small_wc_graph, max_depth=1)
        in_adj, _ = small_wc_graph.in_adjacency()
        rng = RandomSource(6)
        for _ in range(50):
            rr = sampler.sample(rng)
            allowed = set(in_adj[rr.root]) | {rr.root}
            assert set(rr.nodes) <= allowed

    def test_lemma2_analog_bounded(self):
        """RR overlap == bounded activation probability (Lemma 2/9 analog)."""
        from repro.rrset import ICRRSampler

        g = path_digraph(4, prob=0.6)
        horizon = 2
        sampler = ICRRSampler(g, max_depth=horizon)
        from repro.analysis import exact_activation_probability_ic

        target = 3
        seeds = [1]
        exact = exact_activation_probability_ic(g, seeds, target, max_steps=horizon)
        rng = RandomSource(7)
        runs = 8000
        hits = 0
        for _ in range(runs):
            nodes = sampler.sample_rooted(target, rng).nodes
            if any(s in nodes for s in seeds):
                hits += 1
        assert hits / runs == pytest.approx(exact, abs=0.03)

    def test_tim_plus_with_bounded_model(self, small_wc_graph):
        from repro.core import tim_plus

        result = tim_plus(
            small_wc_graph, 3, epsilon=0.5, model=BoundedIndependentCascade(2), rng=8
        )
        assert result.model == "bounded-IC"
        assert len(result.seeds) == 3

    def test_rejects_bad_depth(self, small_wc_graph):
        from repro.rrset import ICRRSampler

        with pytest.raises(ValueError):
            ICRRSampler(small_wc_graph, max_depth=0)
