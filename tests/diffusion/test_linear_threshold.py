"""Tests for the LT model."""

import pytest

from repro.diffusion import (
    LinearThreshold,
    live_edge_reachable_lt,
    sample_lt_in_edge,
    simulate_lt,
)
from repro.graphs import DiGraph, GraphBuilder, path_digraph
from repro.utils.rng import RandomSource


class TestDeterministicCases:
    def test_weight_one_chain_activates(self):
        g = path_digraph(4, prob=1.0)
        assert simulate_lt(g, [0], rng=1) == {0, 1, 2, 3}

    def test_zero_weights_spread_nothing(self):
        g = path_digraph(4, prob=0.0)
        assert simulate_lt(g, [0], rng=1) == {0}

    def test_empty_seed_set(self):
        assert simulate_lt(path_digraph(3, prob=1.0), [], rng=1) == set()

    def test_combined_weights_guarantee_activation(self):
        # Two in-edges of 0.5 each: if both sources are seeds, the target's
        # incoming weight is 1.0 >= any threshold, so it always activates.
        g = DiGraph(3, [0, 1], [2, 2], [0.5, 0.5])
        assert 2 in simulate_lt(g, [0, 1], rng=7)


class TestStatisticalBehaviour:
    def test_single_edge_rate_equals_weight(self):
        g = DiGraph(2, [0], [1], [0.3])
        rng = RandomSource(42)
        hits = sum(1 in simulate_lt(g, [0], rng) for _ in range(4000))
        # Pr[threshold <= 0.3] = 0.3.
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_partial_weights_partial_activation(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.5, 0.5])
        rng = RandomSource(43)
        hits = sum(2 in simulate_lt(g, [0], rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.5, abs=0.03)

    def test_validate_rejects_super_stochastic(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.9, 0.9])
        with pytest.raises(ValueError):
            LinearThreshold().validate_graph(g)


class TestSampleLtInEdge:
    def test_empty_neighbourhood(self):
        assert sample_lt_in_edge([], [], lambda: 0.0) is None

    def test_deterministic_draws(self):
        neighbors = [10, 20]
        weights = [0.3, 0.4]
        assert sample_lt_in_edge(neighbors, weights, lambda: 0.1) == 10
        assert sample_lt_in_edge(neighbors, weights, lambda: 0.5) == 20
        assert sample_lt_in_edge(neighbors, weights, lambda: 0.9) is None

    def test_boundary_draw(self):
        assert sample_lt_in_edge([5], [0.5], lambda: 0.4999) == 5
        assert sample_lt_in_edge([5], [0.5], lambda: 0.5) is None


class TestLiveEdgeEquivalence:
    def graph(self) -> DiGraph:
        builder = GraphBuilder(num_nodes=4)
        builder.add_edge(0, 1, 0.6)
        builder.add_edge(2, 1, 0.4)
        builder.add_edge(1, 3, 0.5)
        builder.add_edge(0, 3, 0.5)
        return builder.build()

    def test_distributions_match(self):
        g = self.graph()
        rng_a = RandomSource(7)
        rng_b = RandomSource(8)
        runs = 5000
        threshold_mean = sum(len(simulate_lt(g, [0], rng_a)) for _ in range(runs)) / runs
        live_mean = sum(len(live_edge_reachable_lt(g, [0], rng_b)) for _ in range(runs)) / runs
        assert threshold_mean == pytest.approx(live_mean, abs=0.08)

    def test_live_edge_weight_one(self):
        g = path_digraph(4, prob=1.0)
        assert live_edge_reachable_lt(g, [0], rng=1) == {0, 1, 2, 3}


class TestModelClass:
    def test_name(self):
        assert LinearThreshold.name == "LT"

    def test_simulate_delegates(self):
        g = path_digraph(3, prob=1.0)
        assert LinearThreshold().simulate(g, [0], RandomSource(1)) == {0, 1, 2}
