"""Tests for the IC model."""

import pytest

from repro.diffusion import IndependentCascade, live_edge_reachable_ic, simulate_ic
from repro.graphs import constant_probability, path_digraph, star_digraph
from repro.utils.rng import RandomSource


class TestDeterministicCases:
    def test_p1_path_activates_everything_downstream(self):
        g = path_digraph(5, prob=1.0)
        assert simulate_ic(g, [0], rng=1) == {0, 1, 2, 3, 4}

    def test_p1_path_from_middle(self):
        g = path_digraph(5, prob=1.0)
        assert simulate_ic(g, [2], rng=1) == {2, 3, 4}

    def test_p0_only_seeds_active(self):
        g = constant_probability(path_digraph(5), 0.0)
        assert simulate_ic(g, [0, 2], rng=1) == {0, 2}

    def test_seeds_always_active(self):
        g = constant_probability(star_digraph(6), 0.0)
        assert simulate_ic(g, [3], rng=1) == {3}

    def test_star_p1(self):
        g = star_digraph(6, prob=1.0)
        assert simulate_ic(g, [0], rng=1) == set(range(6))

    def test_leaf_seed_activates_nothing_upstream(self):
        g = star_digraph(6, prob=1.0)
        assert simulate_ic(g, [2], rng=1) == {2}

    def test_empty_seed_set(self):
        g = path_digraph(3, prob=1.0)
        assert simulate_ic(g, [], rng=1) == set()


class TestStatisticalBehaviour:
    def test_single_edge_activation_rate(self):
        g = path_digraph(2, prob=0.3)
        rng = RandomSource(42)
        hits = sum(1 in simulate_ic(g, [0], rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_two_hop_rate_is_product(self):
        g = path_digraph(3, prob=0.5)
        rng = RandomSource(43)
        hits = sum(2 in simulate_ic(g, [0], rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)

    def test_each_edge_tried_at_most_once(self):
        # In a diamond, node 3 is activated with p = 1 - (1 - p1*p3)(1 - p2*p4)
        # only if each of the two paths fires independently exactly once.
        from repro.graphs import GraphBuilder

        builder = GraphBuilder(num_nodes=4)
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 2, 1.0)
        builder.add_edge(1, 3, 0.5)
        builder.add_edge(2, 3, 0.5)
        g = builder.build()
        rng = RandomSource(44)
        hits = sum(3 in simulate_ic(g, [0], rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.75, abs=0.03)


class TestLiveEdgeEquivalence:
    def test_distributions_match(self, diamond_graph):
        rng_a = RandomSource(7)
        rng_b = RandomSource(8)
        runs = 4000
        bfs_mean = sum(len(simulate_ic(diamond_graph, [0], rng_a)) for _ in range(runs)) / runs
        live_mean = (
            sum(len(live_edge_reachable_ic(diamond_graph, [0], rng_b)) for _ in range(runs)) / runs
        )
        assert bfs_mean == pytest.approx(live_mean, abs=0.08)

    def test_live_edge_deterministic_cases(self):
        g = path_digraph(4, prob=1.0)
        assert live_edge_reachable_ic(g, [1], rng=1) == {1, 2, 3}


class TestModelClass:
    def test_simulate_delegates(self, deterministic_path):
        model = IndependentCascade()
        assert model.simulate(deterministic_path, [0], RandomSource(1)) == {0, 1, 2, 3}

    def test_name(self):
        assert IndependentCascade.name == "IC"

    def test_validate_graph_accepts_anything(self, diamond_graph):
        IndependentCascade().validate_graph(diamond_graph)
