"""Tests for the general triggering model."""

import pytest

from repro.diffusion import (
    FixedTriggering,
    ICTriggering,
    LTTriggering,
    TriggeringModel,
    simulate_ic,
    simulate_lt,
)
from repro.graphs import DiGraph, path_digraph
from repro.utils.rng import RandomSource


class TestFixedTriggering:
    def test_deterministic_propagation(self):
        g = path_digraph(4, prob=0.5)
        # Node v's triggering set contains its predecessor: full chain fires.
        dist = FixedTriggering(g, {1: [0], 2: [1], 3: [2]})
        model = TriggeringModel(dist)
        assert model.simulate(g, [0], RandomSource(1)) == {0, 1, 2, 3}

    def test_empty_sets_block_propagation(self):
        g = path_digraph(4, prob=0.5)
        dist = FixedTriggering(g, {1: [0], 2: [], 3: [2]})
        model = TriggeringModel(dist)
        # Chain breaks at node 2, so 3 is unreachable too.
        assert model.simulate(g, [0], RandomSource(1)) == {0, 1}

    def test_rejects_non_in_neighbour(self):
        g = path_digraph(3)
        with pytest.raises(ValueError, match="non-in-neighbours"):
            FixedTriggering(g, {2: [0]})  # 0 is not an in-neighbour of 2

    def test_missing_nodes_default_to_empty(self):
        g = path_digraph(3, prob=1.0)
        dist = FixedTriggering(g, {})
        model = TriggeringModel(dist)
        assert model.simulate(g, [0], RandomSource(1)) == {0}


class TestICEquivalence:
    def test_matches_ic_distribution(self, diamond_graph):
        model = TriggeringModel(ICTriggering(diamond_graph))
        rng_a = RandomSource(5)
        rng_b = RandomSource(6)
        runs = 4000
        triggering_mean = (
            sum(len(model.simulate(diamond_graph, [0], rng_a)) for _ in range(runs)) / runs
        )
        ic_mean = sum(len(simulate_ic(diamond_graph, [0], rng_b)) for _ in range(runs)) / runs
        assert triggering_mean == pytest.approx(ic_mean, abs=0.08)

    def test_p1_graph_deterministic(self):
        g = path_digraph(4, prob=1.0)
        model = TriggeringModel(ICTriggering(g))
        assert model.simulate(g, [0], RandomSource(2)) == {0, 1, 2, 3}


class TestLTEquivalence:
    def test_matches_lt_distribution(self):
        g = DiGraph(4, [0, 2, 1, 0], [1, 1, 3, 3], [0.6, 0.4, 0.5, 0.5])
        model = TriggeringModel(LTTriggering(g))
        rng_a = RandomSource(7)
        rng_b = RandomSource(8)
        runs = 5000
        triggering_mean = sum(len(model.simulate(g, [0], rng_a)) for _ in range(runs)) / runs
        lt_mean = sum(len(simulate_lt(g, [0], rng_b)) for _ in range(runs)) / runs
        assert triggering_mean == pytest.approx(lt_mean, abs=0.08)

    def test_lt_triggering_samples_at_most_one(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.5, 0.5])
        dist = LTTriggering(g)
        rng = RandomSource(9)
        for _ in range(200):
            assert len(dist.sample(2, rng)) <= 1

    def test_lt_triggering_validates_weights(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.9, 0.9])
        with pytest.raises(ValueError):
            TriggeringModel(LTTriggering(g)).validate_graph(g)


class TestModelBinding:
    def test_rejects_foreign_graph(self):
        g1 = path_digraph(3)
        g2 = path_digraph(3)
        model = TriggeringModel(ICTriggering(g1))
        with pytest.raises(ValueError, match="different graph"):
            model.validate_graph(g2)

    def test_sampling_is_lazy_but_consistent(self):
        # A node's triggering set is sampled at most once per run: with two
        # seeds pointing at one target, the target's inclusion must be
        # consistent (no double-dipping on probability).
        g = DiGraph(3, [0, 1], [2, 2], [0.5, 0.5])
        model = TriggeringModel(LTTriggering(g))
        rng = RandomSource(10)
        hits = sum(2 in model.simulate(g, [0, 1], rng) for _ in range(4000))
        # LT triggering: node 2 picks exactly one of {0, 1}; both are seeds,
        # so it always activates.
        assert hits == 4000
