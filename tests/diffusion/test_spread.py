"""Tests for Monte-Carlo spread estimation."""

import pytest

from repro.diffusion import (
    estimate_spread,
    marginal_gain_estimate,
    spread_samples,
)
from repro.diffusion.base import model_names, resolve_model
from repro.graphs import constant_probability, path_digraph, star_digraph


class TestSpreadSamples:
    def test_deterministic_graph_constant_samples(self):
        g = path_digraph(4, prob=1.0)
        samples = spread_samples(g, [0], model="IC", num_samples=50, rng=1)
        assert samples.tolist() == [4.0] * 50

    def test_sample_count(self):
        g = path_digraph(3, prob=0.5)
        assert spread_samples(g, [0], num_samples=77, rng=1).shape == (77,)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            spread_samples(path_digraph(3), [0], num_samples=0)


class TestEstimateSpread:
    def test_exact_on_deterministic_graph(self):
        g = star_digraph(7, prob=1.0)
        estimate = estimate_spread(g, [0], model="IC", num_samples=20, rng=1)
        assert estimate.mean == 7.0
        assert estimate.std == 0.0

    def test_statistical_accuracy(self):
        g = path_digraph(2, prob=0.4)
        estimate = estimate_spread(g, [0], model="IC", num_samples=5000, rng=2)
        assert estimate.mean == pytest.approx(1.4, abs=0.05)

    def test_confidence_interval_contains_truth(self):
        g = path_digraph(2, prob=0.4)
        estimate = estimate_spread(g, [0], model="IC", num_samples=5000, rng=3)
        low, high = estimate.confidence_interval()
        assert low <= 1.4 <= high

    def test_stderr_shrinks_with_samples(self):
        g = path_digraph(2, prob=0.5)
        small = estimate_spread(g, [0], num_samples=100, rng=4)
        large = estimate_spread(g, [0], num_samples=10000, rng=4)
        assert large.stderr < small.stderr

    def test_float_conversion(self):
        g = path_digraph(2, prob=1.0)
        assert float(estimate_spread(g, [0], num_samples=10, rng=5)) == 2.0

    def test_lt_model_accepted(self):
        g = path_digraph(3, prob=1.0)
        estimate = estimate_spread(g, [0], model="LT", num_samples=20, rng=6)
        assert estimate.mean == 3.0


class TestMarginalGain:
    def test_gain_of_disjoint_component(self):
        g = constant_probability(star_digraph(5, outward=True), 0.0)
        # Adding an isolated-in-effect node always contributes exactly 1.
        gain = marginal_gain_estimate(g, [0], 2, num_samples=200, rng=7)
        assert gain == pytest.approx(1.0)

    def test_gain_of_redundant_node_is_zero(self):
        g = path_digraph(3, prob=1.0)
        # Node 1 is always activated by seed 0; adding it gains nothing.
        gain = marginal_gain_estimate(g, [0], 1, num_samples=200, rng=8)
        assert gain == pytest.approx(0.0)

    def test_common_random_numbers_reduce_variance(self):
        g = path_digraph(4, prob=0.5)
        gain = marginal_gain_estimate(g, [0], 3, num_samples=500, rng=9)
        # True gain: 1 - P(0 reaches 3) = 1 - 0.125 = 0.875.
        assert gain == pytest.approx(0.875, abs=0.06)


class TestModelResolution:
    def test_resolve_by_name_case_insensitive(self):
        assert resolve_model("ic").name == "IC"
        assert resolve_model("LT").name == "LT"

    def test_resolve_instance_passthrough(self):
        model = resolve_model("IC")
        assert resolve_model(model) is model

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown model"):
            resolve_model("SIR")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_model(42)

    def test_registry_contains_ic_and_lt(self):
        assert {"ic", "lt"} <= set(model_names())
