"""Tests for the dataset stand-in registry."""

import numpy as np
import pytest

from repro.datasets import build_dataset, dataset_names, dataset_spec, paper_table2
from repro.graphs import validate_lt_weights


class TestRegistry:
    def test_five_paper_datasets(self):
        assert dataset_names() == ["nethept", "epinions", "dblp", "livejournal", "twitter"]

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="known:"):
            dataset_spec("facebook")

    def test_case_insensitive(self):
        assert dataset_spec("NetHEPT").name == "nethept"

    def test_paper_table_rows(self):
        rows = paper_table2()
        assert len(rows) == 5
        assert rows[0][0] == "nethept"
        assert rows[4][4] == 70.5  # twitter's Table 2 average degree


class TestBuild:
    def test_deterministic(self):
        a = build_dataset("nethept")
        b = build_dataset("nethept")
        assert a.graph.same_structure(b.graph)

    def test_scale(self):
        full = build_dataset("nethept")
        half = build_dataset("nethept", scale=0.5)
        assert half.graph.n == pytest.approx(full.graph.n / 2, rel=0.05)

    def test_minimum_size_floor(self):
        tiny = build_dataset("nethept", scale=1e-9)
        assert tiny.graph.n >= 16

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            build_dataset("nethept", scale=0.0)

    def test_size_ordering_preserved(self):
        sizes = [build_dataset(name, scale=0.25).graph.n for name in dataset_names()]
        assert sizes == sorted(sizes)

    @pytest.mark.parametrize("name", ["nethept", "epinions", "dblp"])
    def test_average_degree_near_paper(self, name):
        dataset = build_dataset(name)
        summary = dataset.summary()
        assert summary.average_degree == pytest.approx(
            dataset.spec.paper_avg_degree, rel=0.15
        )

    def test_undirected_datasets_symmetric(self):
        graph = build_dataset("dblp", scale=0.25).graph
        pairs = graph.edge_set()
        assert all((v, u) in pairs for u, v in pairs)

    def test_directed_dataset_asymmetric(self):
        graph = build_dataset("epinions", scale=0.25).graph
        pairs = graph.edge_set()
        assert any((v, u) not in pairs for u, v in pairs)


class TestWeightedViews:
    def test_ic_view_is_weighted_cascade(self):
        dataset = build_dataset("nethept", scale=0.25)
        graph = dataset.weighted_for("IC")
        in_degrees = graph.in_degrees()
        expected = 1.0 / in_degrees[graph.dst]
        assert np.allclose(graph.prob, expected)

    def test_lt_view_validates(self):
        dataset = build_dataset("nethept", scale=0.25)
        validate_lt_weights(dataset.weighted_for("LT"))

    def test_lt_view_deterministic(self):
        dataset = build_dataset("nethept", scale=0.25)
        assert np.array_equal(
            dataset.weighted_for("LT").prob, dataset.weighted_for("LT").prob
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_dataset("nethept", scale=0.25).weighted_for("SIR")

    def test_topology_shared_across_views(self):
        dataset = build_dataset("nethept", scale=0.25)
        assert dataset.weighted_for("IC").edge_set() == dataset.weighted_for("LT").edge_set()


class TestBuildSketch:
    def test_dataset_sketch_convenience(self):
        from repro.datasets import build_dataset

        dataset = build_dataset("nethept", scale=0.05)
        index = dataset.build_sketch("IC", theta=150, rng=4)
        assert index.num_sets == 150
        assert index.meta["model"] == "IC"
        assert index.meta["graph_fingerprint"] == dataset.weighted_for("IC").fingerprint()
        assert len(index.select(3).seeds) == 3
