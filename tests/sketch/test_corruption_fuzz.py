"""Corruption fuzzing: damaged sketch files must fail loudly and typed.

Closes the PR 2 test gap: every way a sketch file can arrive damaged —
truncated at an arbitrary byte, bit-flipped in the zip/npy framing, or
inconsistent between metadata and arrays — must surface as
:class:`SketchFileError` (or a subclass) from *both* load paths.  The mmap
path is the dangerous one: it does manual zip-offset arithmetic, so an
unchecked header would turn into an out-of-bounds ``np.memmap`` instead of
a catchable error.
"""

import numpy as np
import pytest

from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.rrset import make_rr_sampler
from repro.sketch.persistence import SketchFileError, load_sketch, save_sketch
from repro.utils.rng import RandomSource

#: Truncation points as fractions of the file: inside the zip magic, the
#: first local header, early/mid/late array payloads, and the central
#: directory / EOCD tail.
TRUNCATION_FRACTIONS = (0.001, 0.01, 0.05, 0.15, 0.33, 0.5, 0.66, 0.8, 0.95, 0.999)


@pytest.fixture(scope="module")
def sketch_bytes(tmp_path_factory):
    graph = weighted_cascade(gnm_random_digraph(80, 320, rng=31))
    sampler = make_rr_sampler(graph, "IC", trace_edges=True)
    collection = sampler.sample_random_batch(400, RandomSource(2))
    path = tmp_path_factory.mktemp("sketch") / "full.npz"
    save_sketch(path, collection, {"model": "IC", "graph_fingerprint": graph.fingerprint()})
    return path.read_bytes()


@pytest.mark.parametrize("mmap", [False, True], ids=["eager", "mmap"])
class TestTruncationSweep:
    @pytest.mark.parametrize("fraction", TRUNCATION_FRACTIONS)
    def test_truncated_file_raises_sketch_file_error(self, tmp_path, sketch_bytes,
                                                     fraction, mmap):
        cut = max(1, int(len(sketch_bytes) * fraction))
        path = tmp_path / "truncated.npz"
        path.write_bytes(sketch_bytes[:cut])
        with pytest.raises(SketchFileError):
            load_sketch(path, mmap=mmap)

    def test_empty_file_raises(self, tmp_path, sketch_bytes, mmap):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(SketchFileError):
            load_sketch(path, mmap=mmap)


@pytest.mark.parametrize("mmap", [False, True], ids=["eager", "mmap"])
class TestBitFlips:
    def test_header_region_flips_never_leak_raw_errors(self, tmp_path, sketch_bytes, mmap):
        """Flip one byte at a time through the framing-heavy first kilobyte:
        each variant must either load (the byte was slack) or raise a typed
        SketchFileError — never an uncaught zip/struct/numpy error."""
        for offset in range(0, min(1024, len(sketch_bytes)), 37):
            mutated = bytearray(sketch_bytes)
            mutated[offset] ^= 0xFF
            path = tmp_path / "flip.npz"
            path.write_bytes(bytes(mutated))
            try:
                collection, meta = load_sketch(path, mmap=mmap)
            except SketchFileError:
                continue
            # Loaded despite the flip: the collection must still be sane.
            assert len(collection) == meta["num_sets"]

    def test_tail_flips_never_leak_raw_errors(self, tmp_path, sketch_bytes, mmap):
        """Same sweep through the central directory / EOCD tail."""
        start = max(0, len(sketch_bytes) - 512)
        for offset in range(start, len(sketch_bytes), 23):
            mutated = bytearray(sketch_bytes)
            mutated[offset] ^= 0xFF
            path = tmp_path / "flip.npz"
            path.write_bytes(bytes(mutated))
            try:
                collection, meta = load_sketch(path, mmap=mmap)
            except SketchFileError:
                continue
            assert len(collection) == meta["num_sets"]


class TestTraceMembers:
    def test_trace_arrays_roundtrip_both_paths(self, tmp_path, sketch_bytes):
        path = tmp_path / "full.npz"
        path.write_bytes(sketch_bytes)
        eager, meta_eager = load_sketch(path)
        mapped, meta_mapped = load_sketch(path, mmap=True)
        assert meta_eager["has_traces"] and meta_mapped["has_traces"]
        assert eager.has_traces and mapped.has_traces
        assert np.array_equal(eager.trace_edges_array, mapped.trace_edges_array)
        assert np.array_equal(eager.trace_ptr_array, mapped.trace_ptr_array)

    def test_missing_trace_member_raises(self, tmp_path, sketch_bytes):
        """A file whose metadata promises traces but lacks the arrays is
        corrupt, not silently untraced."""
        import zipfile

        src = tmp_path / "full.npz"
        src.write_bytes(sketch_bytes)
        stripped = tmp_path / "stripped.npz"
        with zipfile.ZipFile(src) as zin, zipfile.ZipFile(stripped, "w") as zout:
            for item in zin.infolist():
                if item.filename != "trace_edges.npy":
                    zout.writestr(item, zin.read(item.filename))
        for mmap in (False, True):
            with pytest.raises(SketchFileError):
                load_sketch(stripped, mmap=mmap)

    def test_untraced_file_loads_without_traces(self, tmp_path):
        graph = weighted_cascade(gnm_random_digraph(40, 160, rng=5))
        collection = make_rr_sampler(graph, "IC").sample_random_batch(
            100, RandomSource(1)
        )
        path = tmp_path / "plain.npz"
        save_sketch(path, collection, {"model": "IC"})
        loaded, meta = load_sketch(path)
        assert meta["has_traces"] is False
        assert not loaded.has_traces
        assert loaded.trace_ptr_array is None
