"""Sketch persistence: roundtrips, mmap loading, and failure modes."""

import json
import zipfile

import numpy as np
import pytest

from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.rrset import FlatRRCollection, make_rr_sampler
from repro.sketch import (
    SKETCH_FORMAT_VERSION,
    SketchFileError,
    SketchGraphMismatchError,
    SketchVersionError,
    load_sketch,
    read_sketch_meta,
    save_sketch,
)
from repro.utils.rng import RandomSource


@pytest.fixture
def wc_graph():
    return weighted_cascade(gnm_random_digraph(80, 320, rng=5))


@pytest.fixture
def sampled(wc_graph):
    sampler = make_rr_sampler(wc_graph, "IC")
    return sampler.sample_random_batch(400, RandomSource(9))


@pytest.fixture
def sketch_path(tmp_path, sampled, wc_graph):
    path = tmp_path / "sketch.npz"
    save_sketch(path, sampled, {"model": "IC", "graph_fingerprint": wc_graph.fingerprint()})
    return path


class TestRoundtrip:
    def test_arrays_bit_exact(self, sketch_path, sampled):
        loaded, _ = load_sketch(sketch_path)
        for name in ("ptr_array", "nodes_array", "roots_array", "widths_array", "costs_array"):
            original = getattr(sampled, name)
            restored = getattr(loaded, name)
            assert original.dtype == restored.dtype
            assert np.array_equal(original, restored)

    def test_nbytes_and_estimators_match(self, sketch_path, sampled):
        loaded, _ = load_sketch(sketch_path)
        assert loaded.nbytes() == sampled.nbytes()
        assert loaded.total_cost == sampled.total_cost
        assert loaded.mean_width() == sampled.mean_width()
        assert loaded.mean_kappa(5) == sampled.mean_kappa(5)
        probe = [0, 3, 17]
        assert loaded.coverage_count(probe) == sampled.coverage_count(probe)
        assert loaded.estimate_spread(probe) == sampled.estimate_spread(probe)

    def test_metadata_preserved(self, sketch_path, wc_graph, sampled):
        meta = read_sketch_meta(sketch_path)
        assert meta["format_version"] == SKETCH_FORMAT_VERSION
        assert meta["model"] == "IC"
        assert meta["graph_fingerprint"] == wc_graph.fingerprint()
        assert meta["num_sets"] == len(sampled)
        assert meta["num_nodes"] == sampled.num_nodes
        assert meta["graph_edges"] == sampled.graph_edges

    def test_collection_save_load_methods(self, tmp_path, sampled):
        path = tmp_path / "via_methods.npz"
        sampled.save(path, {"model": "IC"})
        loaded, meta = FlatRRCollection.load(path)
        assert meta["model"] == "IC"
        assert np.array_equal(loaded.nodes_array, sampled.nodes_array)

    def test_loaded_collection_still_grows(self, sketch_path, sampled, wc_graph):
        loaded, _ = load_sketch(sketch_path)
        sampler = make_rr_sampler(wc_graph, "IC")
        loaded.extend_flat(sampler.sample_random_batch(50, RandomSource(2)))
        assert len(loaded) == len(sampled) + 50


class TestMmap:
    def test_mmap_arrays_match_and_are_mapped(self, sketch_path, sampled):
        loaded, _ = load_sketch(sketch_path, mmap=True)
        assert isinstance(loaded.nodes_array, np.memmap)
        assert not loaded.nodes_array.flags.writeable
        for name in ("ptr_array", "nodes_array", "roots_array", "widths_array", "costs_array"):
            assert np.array_equal(getattr(loaded, name), getattr(sampled, name))

    def test_mmap_estimator_parity(self, sketch_path, sampled):
        loaded, _ = load_sketch(sketch_path, mmap=True)
        assert loaded.nbytes() == sampled.nbytes()
        assert loaded.estimate_spread([1, 2]) == sampled.estimate_spread([1, 2])

    def test_mmap_collection_grows_by_copy(self, sketch_path, wc_graph, sampled):
        loaded, _ = load_sketch(sketch_path, mmap=True)
        sampler = make_rr_sampler(wc_graph, "IC")
        loaded.extend_flat(sampler.sample_random_batch(10, RandomSource(3)))
        assert len(loaded) == len(sampled) + 10
        assert loaded.nodes_array.flags.writeable  # growth copied off the map


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SketchFileError):
            load_sketch(tmp_path / "nope.npz")

    def test_corrupted_file(self, tmp_path, sketch_path):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(sketch_path.read_bytes()[: 200])
        with pytest.raises(SketchFileError):
            load_sketch(corrupt)

    def test_garbage_file(self, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"not a zip archive at all")
        with pytest.raises(SketchFileError):
            load_sketch(garbage)

    def test_not_a_sketch_npz(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, something=np.arange(4))
        with pytest.raises(SketchFileError, match="meta_json"):
            load_sketch(path)

    def test_version_mismatch(self, tmp_path, sampled):
        path = tmp_path / "future.npz"
        meta = {"format_version": SKETCH_FORMAT_VERSION + 1, "num_nodes": 80,
                "graph_edges": 320, "num_sets": len(sampled)}
        np.savez(
            path,
            ptr=sampled.ptr_array, nodes=sampled.nodes_array, roots=sampled.roots_array,
            widths=sampled.widths_array, costs=sampled.costs_array,
            meta_json=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(SketchVersionError):
            load_sketch(path)

    def test_fingerprint_mismatch(self, sketch_path):
        with pytest.raises(SketchGraphMismatchError):
            load_sketch(sketch_path, expected_fingerprint="deadbeef")

    def test_fingerprint_match_passes(self, sketch_path, wc_graph):
        loaded, _ = load_sketch(sketch_path, expected_fingerprint=wc_graph.fingerprint())
        assert len(loaded) == 400

    def test_inconsistent_arrays_rejected(self, tmp_path, sampled):
        path = tmp_path / "inconsistent.npz"
        meta = {"format_version": SKETCH_FORMAT_VERSION, "num_nodes": 80,
                "graph_edges": 320, "num_sets": len(sampled)}
        bad_ptr = sampled.ptr_array.copy()
        bad_ptr[-1] += 7  # no longer spans the nodes array
        np.savez(
            path,
            ptr=bad_ptr, nodes=sampled.nodes_array, roots=sampled.roots_array,
            widths=sampled.widths_array, costs=sampled.costs_array,
            meta_json=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(SketchFileError):
            load_sketch(path)

    def test_reserved_meta_conflict_rejected(self, sampled, tmp_path):
        with pytest.raises(ValueError, match="num_nodes"):
            save_sketch(tmp_path / "x.npz", sampled, {"num_nodes": 9999})

    def test_mmap_rejects_compressed_archive(self, tmp_path, sampled):
        path = tmp_path / "compressed.npz"
        meta = {"format_version": SKETCH_FORMAT_VERSION, "num_nodes": 80,
                "graph_edges": 320, "num_sets": len(sampled)}
        np.savez_compressed(
            path,
            ptr=sampled.ptr_array, nodes=sampled.nodes_array, roots=sampled.roots_array,
            widths=sampled.widths_array, costs=sampled.costs_array,
            meta_json=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(SketchFileError, match="compressed"):
            load_sketch(path, mmap=True)
        # ... but the eager path reads it fine.
        loaded, _ = load_sketch(path)
        assert np.array_equal(loaded.nodes_array, sampled.nodes_array)

    def test_zip_but_not_npz(self, tmp_path):
        path = tmp_path / "weird.npz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("hello.txt", "hi")
        with pytest.raises(SketchFileError):
            load_sketch(path)


class TestExactPath:
    def test_save_respects_extensionless_path(self, tmp_path, sampled):
        """np.savez's silent '.npz' suffixing must not leak (regression test)."""
        path = tmp_path / "sketch.dat"
        save_sketch(path, sampled, {"model": "IC"})
        assert path.exists()
        assert not (tmp_path / "sketch.dat.npz").exists()
        loaded, _ = load_sketch(path)
        assert len(loaded) == len(sampled)
        mapped, _ = load_sketch(path, mmap=True)
        assert len(mapped) == len(sampled)
