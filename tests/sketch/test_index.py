"""SketchIndex: selection parity, estimator queries, warm extension."""

import numpy as np
import pytest

from repro.core.node_selection import node_selection
from repro.core.tim import tim
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.rrset import make_rr_sampler
from repro.rrset.coverage import greedy_max_coverage
from repro.sketch import SketchGraphMismatchError, SketchIndex


@pytest.fixture
def wc_graph():
    return weighted_cascade(gnm_random_digraph(120, 480, rng=21))


@pytest.fixture
def index(wc_graph):
    return SketchIndex.build(wc_graph, "IC", theta=1500, rng=77)


class TestSelection:
    @pytest.mark.parametrize("k", [1, 2, 5, 10, 25])
    def test_matches_exact_greedy(self, index, wc_graph, k):
        expected = greedy_max_coverage(index.collection, wc_graph.n, k)
        result = index.select(k, incremental=False)
        assert result.seeds == expected.seeds
        assert result.covered == expected.covered
        assert result.marginal_gains == expected.marginal_gains

    def test_matches_node_selection(self, wc_graph):
        """select(k) equals Algorithm 1 run over the same collection."""
        sampler = make_rr_sampler(wc_graph, "IC")
        index = SketchIndex.build(wc_graph, "IC", theta=900, rng=5)
        for k in (1, 3, 8, 15):
            expected = node_selection(
                wc_graph, k, len(index.collection), sampler,
                rng=0, collection=index.collection,
            )
            assert index.select(k, incremental=False).seeds == expected.seeds

    def test_incremental_extends_previous_answer(self, index, wc_graph):
        first = index.select(4)
        longer = index.select(12)
        assert longer.seeds[:4] == first.seeds
        assert longer.seeds == greedy_max_coverage(index.collection, wc_graph.n, 12).seeds

    def test_incremental_prefix_reuse(self, index):
        full = index.select(10)
        again = index.select(6)
        assert again.seeds == full.seeds[:6]
        assert again.marginal_gains == full.marginal_gains[:6]

    def test_forced_include_taken_first(self, index):
        result = index.select(5, forced_include=[42, 7])
        assert result.seeds[:2] == [42, 7]
        assert len(result.seeds) == 5

    def test_forced_exclude_never_selected(self, index):
        unconstrained = index.select(5, incremental=False)
        banned = unconstrained.seeds[0]
        result = index.select(5, forced_exclude=[banned])
        assert banned not in result.seeds

    def test_constraint_validation(self, index):
        with pytest.raises(ValueError):
            index.select(2, forced_include=[1, 2, 3])
        with pytest.raises(ValueError):
            index.select(3, forced_include=[1], forced_exclude=[1])
        with pytest.raises(ValueError):
            index.select(3, forced_include=[1, 1])

    def test_degenerate_fill(self, wc_graph):
        """k larger than the number of useful nodes still yields k seeds."""
        index = SketchIndex.build(wc_graph, "IC", theta=3, rng=0)
        result = index.select(50, incremental=False)
        assert len(result.seeds) == 50
        assert len(set(result.seeds)) == 50


class TestEstimators:
    def test_spread_matches_collection(self, index):
        seeds = index.select(6).seeds
        assert index.spread(seeds) == pytest.approx(index.collection.estimate_spread(seeds))
        assert index.coverage_count(seeds) == index.collection.coverage_count(seeds)

    def test_marginal_gain_is_spread_difference(self, index):
        seeds = index.select(6).seeds
        base, candidate = seeds[:5], seeds[5]
        expected = index.spread(seeds) - index.spread(base)
        assert index.marginal_gain(base, candidate) == pytest.approx(expected)

    def test_marginal_gain_of_member_is_zero(self, index):
        seeds = index.select(3).seeds
        assert index.marginal_gain(seeds, seeds[0]) == 0.0

    def test_out_of_range_rejected(self, index):
        with pytest.raises(ValueError):
            index.spread([10_000])
        with pytest.raises(ValueError):
            index.marginal_gain([0], 10_000)


class TestWarmExtension:
    def test_ensure_theta_appends_only_shortfall(self, index):
        before = index.num_sets
        added = index.ensure_theta(before + 300, rng=1)
        assert added == 300
        assert index.num_sets == before + 300
        assert index.ensure_theta(10, rng=1) == 0  # already satisfied

    def test_extension_invalidates_selection(self, index, wc_graph):
        index.select(5)
        index.ensure_theta(index.num_sets + 200, rng=2)
        fresh = greedy_max_coverage(index.collection, wc_graph.n, 5)
        assert index.select(5).seeds == fresh.seeds

    def test_grown_sketch_persists(self, index, wc_graph, tmp_path):
        index.ensure_theta(index.num_sets + 100, rng=3)
        path = tmp_path / "grown.npz"
        index.save(path)
        reloaded = SketchIndex.load(path, graph=wc_graph)
        assert reloaded.num_sets == index.num_sets
        assert reloaded.select(4, incremental=False).seeds == index.select(4, incremental=False).seeds

    def test_ensure_epsilon_grows_for_tighter_epsilon(self, wc_graph):
        index = SketchIndex.build(wc_graph, "IC", k=5, epsilon=0.8, rng=11)
        loose = index.num_sets
        added = index.ensure_epsilon(5, epsilon=0.4, rng=12)
        assert added > 0
        assert index.num_sets == loose + added

    def test_ensure_epsilon_records_tightest_epsilon_on_noop(self, wc_graph):
        """Regression: a no-op tighter-ε request must still update meta.

        Pre-grow the sketch past θ(0.5) by hand so the ensure_epsilon call
        adds zero sets — the certification metadata has to record ε=0.5
        anyway, or persisted sketches under-report what they satisfy.
        """
        from repro.core.parameters import (
            adjusted_ell_tim,
            lambda_param,
            theta_from_kpt,
        )

        index = SketchIndex.build(wc_graph, "IC", k=5, epsilon=0.8, rng=11)
        assert index.meta["epsilon"] == 0.8
        kpt_star = index.meta["kpt_star"]
        ell_adjusted = adjusted_ell_tim(1.0, wc_graph.n)
        theta_tight = theta_from_kpt(
            lambda_param(wc_graph.n, 5, 0.5, ell_adjusted), kpt_star)
        index.ensure_theta(theta_tight, rng=1)
        added = index.ensure_epsilon(5, epsilon=0.5, rng=2)
        assert added == 0
        assert index.meta["epsilon"] == 0.5

    def test_ensure_epsilon_never_loosens_certification(self, wc_graph):
        index = SketchIndex.build(wc_graph, "IC", k=5, epsilon=0.8, rng=11)
        index.ensure_epsilon(5, epsilon=0.4, rng=12)
        assert index.meta["epsilon"] == 0.4
        # A looser request is a no-op and must not regress the record.
        index.ensure_epsilon(5, epsilon=0.7, rng=13)
        assert index.meta["epsilon"] == 0.4

    def test_recorded_epsilon_survives_save_load(self, wc_graph, tmp_path):
        from repro.core.parameters import (
            adjusted_ell_tim,
            lambda_param,
            theta_from_kpt,
        )

        index = SketchIndex.build(wc_graph, "IC", k=5, epsilon=0.8, rng=11)
        kpt_star = index.meta["kpt_star"]
        theta_tight = theta_from_kpt(
            lambda_param(wc_graph.n, 5, 0.5, adjusted_ell_tim(1.0, wc_graph.n)),
            kpt_star)
        index.ensure_theta(theta_tight, rng=1)
        assert index.ensure_epsilon(5, epsilon=0.5, rng=2) == 0
        path = tmp_path / "certified.npz"
        index.save(path)
        reloaded = SketchIndex.load(path, graph=wc_graph)
        assert reloaded.meta["epsilon"] == 0.5


class TestPersistedIndex:
    def test_load_validates_graph(self, index, wc_graph, tmp_path):
        path = tmp_path / "sketch.npz"
        index.save(path)
        other = weighted_cascade(gnm_random_digraph(120, 480, rng=22))
        with pytest.raises(SketchGraphMismatchError):
            SketchIndex.load(path, graph=other)

    def test_load_without_graph_serves_reads(self, index, tmp_path):
        path = tmp_path / "sketch.npz"
        index.save(path)
        readonly = SketchIndex.load(path)
        assert readonly.select(3, incremental=False).seeds == index.select(3, incremental=False).seeds
        with pytest.raises(ValueError, match="no graph"):
            readonly.ensure_theta(readonly.num_sets + 1, rng=0)

    def test_mmap_load_selects_identically(self, index, wc_graph, tmp_path):
        path = tmp_path / "sketch.npz"
        index.save(path)
        mapped = SketchIndex.load(path, graph=wc_graph, mmap=True)
        assert isinstance(mapped.collection.nodes_array, np.memmap)
        assert mapped.select(7, incremental=False).seeds == index.select(7, incremental=False).seeds


class TestTimThroughIndex:
    def test_capture_run_matches_cold_run(self, wc_graph):
        cold = tim(wc_graph, 5, epsilon=0.6, rng=42)
        index = SketchIndex(graph=wc_graph, model="IC")
        captured = tim(wc_graph, 5, epsilon=0.6, rng=42, index=index)
        assert captured.seeds == cold.seeds
        assert captured.theta == cold.theta
        assert len(index.collection) >= cold.theta

    def test_warm_run_reuses_sketch_and_kpt(self, wc_graph):
        index = SketchIndex(graph=wc_graph, model="IC")
        first = tim(wc_graph, 5, epsilon=0.6, rng=42, index=index)
        warm = tim(wc_graph, 5, epsilon=0.6, rng=43, index=index)
        assert warm.extras["kpt_cache_hit"]
        assert warm.rr_sets_per_phase["parameter_estimation"] == 0
        assert warm.rr_sets_per_phase["node_selection"] == 0  # sketch already >= theta
        assert warm.seeds == first.seeds  # same collection, same greedy

    def test_build_derives_theta_like_tim(self, wc_graph):
        index = SketchIndex.build(wc_graph, "IC", k=5, epsilon=0.6, ell=1.0, rng=9)
        assert index.num_sets >= 1
        assert index.meta["epsilon"] == 0.6
        assert index.meta["k"] == 5
        assert "kpt_star" in index.meta

    def test_model_mismatch_rejected(self, wc_graph, tmp_path):
        index = SketchIndex.build(wc_graph, "IC", theta=10, rng=0)
        path = tmp_path / "ic.npz"
        index.save(path)
        with pytest.raises(ValueError, match="model"):
            SketchIndex.load(path, graph=None, model="LT")


class TestKptCacheKeying:
    def test_ensure_epsilon_kpt_is_keyed_by_k(self, wc_graph):
        """KPT* is k-dependent; a cached value for one k must not price another."""
        index = SketchIndex.build(wc_graph, "IC", k=10, epsilon=0.8, rng=11)
        index.ensure_epsilon(2, epsilon=0.8, rng=12)
        by_k = index.meta["kpt_star_by_k"]
        assert set(by_k) == {"10", "2"}
        # KPT is non-decreasing in k (Equation 7).
        assert by_k["10"] >= by_k["2"]
