"""InfluenceService: LRU behaviour, query dispatch, JSONL batches."""

import json

import pytest

from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.sketch import InfluenceService, SketchIndex

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")  # this module deliberately exercises the deprecated legacy surface



@pytest.fixture
def wc_graph():
    return weighted_cascade(gnm_random_digraph(90, 360, rng=31))


@pytest.fixture
def service():
    return InfluenceService(max_indexes=2, theta=400, rng=17)


class TestCache:
    def test_miss_then_hit(self, service, wc_graph):
        first = service.query(wc_graph, {"op": "select", "k": 3})
        second = service.query(wc_graph, {"op": "select", "k": 3})
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["result"]["seeds"] == second["result"]["seeds"]
        assert service.stats.builds == 1

    def test_distinct_graphs_get_distinct_indexes(self, service):
        a = weighted_cascade(gnm_random_digraph(50, 200, rng=1))
        b = weighted_cascade(gnm_random_digraph(50, 200, rng=2))
        service.query(a, {"op": "select", "k": 2})
        service.query(b, {"op": "select", "k": 2})
        assert len(service) == 2
        assert service.stats.builds == 2

    def test_lru_eviction(self, service):
        graphs = [
            weighted_cascade(gnm_random_digraph(40, 160, rng=seed)) for seed in (1, 2, 3)
        ]
        for graph in graphs:
            service.query(graph, {"op": "select", "k": 2})
        assert len(service) == 2
        assert service.stats.evictions == 1
        # Oldest graph was evicted: querying it again is a rebuild miss.
        response = service.query(graphs[0], {"op": "select", "k": 2})
        assert response["cache"] == "miss"

    def test_add_index_registers_preloaded_sketch(self, service, wc_graph, tmp_path):
        index = SketchIndex.build(wc_graph, "IC", theta=200, rng=3)
        path = tmp_path / "sk.npz"
        index.save(path)
        service.add_index(SketchIndex.load(path, graph=wc_graph))
        response = service.query(wc_graph, {"op": "select", "k": 2})
        assert response["cache"] == "hit"
        assert service.stats.builds == 0


class TestQueries:
    def test_select_response_shape(self, service, wc_graph):
        response = service.query(wc_graph, {"op": "select", "k": 4, "id": "q1"})
        assert response["ok"] and response["id"] == "q1"
        result = response["result"]
        assert len(result["seeds"]) == 4
        assert 0.0 <= result["coverage_fraction"] <= 1.0
        assert result["estimated_spread"] == pytest.approx(
            wc_graph.n * result["coverage_fraction"]
        )
        assert response["latency_ms"] >= 0.0

    def test_select_with_constraints(self, service, wc_graph):
        response = service.query(
            wc_graph, {"op": "select", "k": 4, "include": [5], "exclude": [6]}
        )
        assert response["ok"]
        assert response["result"]["seeds"][0] == 5
        assert 6 not in response["result"]["seeds"]

    def test_spread_and_marginal_gain(self, service, wc_graph):
        seeds = service.query(wc_graph, {"op": "select", "k": 3})["result"]["seeds"]
        spread = service.query(wc_graph, {"op": "spread", "seeds": seeds})
        assert spread["ok"] and spread["result"]["spread"] > 0
        gain = service.query(
            wc_graph, {"op": "marginal_gain", "seeds": seeds[:2], "candidate": seeds[2]}
        )
        assert gain["ok"] and gain["result"]["gain"] >= 0

    def test_stats_op(self, service, wc_graph):
        service.query(wc_graph, {"op": "select", "k": 2})
        response = service.query(wc_graph, {"op": "stats"})
        assert response["ok"]
        assert response["result"]["queries"] == 1
        assert response["result"]["per_op"] == {"select": 1}

    def test_bad_requests_do_not_raise(self, service, wc_graph):
        for request in (
            {"op": "unknown"},
            {"op": "select"},
            {"op": "select", "k": 0},
            {"op": "spread", "seeds": []},
            {"op": "marginal_gain", "seeds": [1]},
            {"op": "spread", "seeds": [10_000]},
        ):
            response = service.query(wc_graph, request)
            assert not response["ok"]
            assert "error" in response
        assert service.stats.errors == 6

    def test_errors_are_structured_payloads(self, service, wc_graph):
        response = service.query(wc_graph, {"op": "warp", "k": 1})
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_op"
        assert "warp" in response["error"]["message"]
        assert response["schema_version"] == 1

    def test_unknown_fields_rejected_not_ignored(self, service, wc_graph):
        """A typo'd key used to be silently dropped — a healthy-looking
        wrong answer.  Now it is a structured error."""
        response = service.query(
            wc_graph, {"op": "select", "k": 2, "includ": [1]})
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_field"
        assert "includ" in response["error"]["message"]
        assert service.stats.errors == 1

    def test_schema_version_negotiation(self, service, wc_graph):
        ok = service.query(wc_graph, {"op": "select", "k": 2, "schema_version": 1})
        assert ok["ok"] and ok["schema_version"] == 1
        future = service.query(wc_graph, {"op": "select", "k": 2, "schema_version": 99})
        assert future["ok"] is False
        assert future["error"]["code"] == "unsupported_schema_version"

    def test_typed_execute_front(self, service, wc_graph):
        from repro.api import SelectRequest, SelectResponse

        response = service.execute(wc_graph, SelectRequest(k=2, id="t1"))
        assert isinstance(response, SelectResponse)
        assert response.id == "t1"
        assert len(response.seeds) == 2
        assert response.to_wire()["result"]["seeds"] == response.seeds


class TestBatch:
    def test_jsonl_batch(self, service, wc_graph):
        lines = [
            json.dumps({"op": "select", "k": k}) for k in (1, 2, 3)
        ] + ["", "# comment", json.dumps({"op": "stats"})]
        responses = service.run_batch(wc_graph, lines)
        assert len(responses) == 4  # blanks and comments skipped
        assert all(response["ok"] for response in responses)

    def test_invalid_json_reported_per_line(self, service, wc_graph):
        responses = service.run_batch(wc_graph, ["{not json", json.dumps({"op": "stats"})])
        assert not responses[0]["ok"]
        assert responses[0]["line"] == 1
        assert responses[1]["ok"]
        assert service.stats.errors == 1


class TestRobustness:
    def test_out_of_range_exclude_is_a_soft_error(self, service, wc_graph):
        """A bad request must never take down a batch (regression test)."""
        responses = service.run_batch(wc_graph, [
            json.dumps({"op": "select", "k": 2, "exclude": [999_999_999]}),
            json.dumps({"op": "select", "k": 2, "exclude": [-1]}),
            json.dumps({"op": "select", "k": 2, "include": [-3]}),
            json.dumps({"op": "select", "k": 2}),
        ])
        assert [r["ok"] for r in responses] == [False, False, False, True]


class TestEvictionClosesPools:
    """PR 3 gap: evicting an index must release its worker pool and shared
    graph segments — no fd/SHM leak behind the LRU (asserted via spies on
    close(), plus the live pool state for a real multi-worker index)."""

    def _spy(self, index, calls, tag):
        original = index.close

        def spying_close():
            calls.append(tag)
            original()

        index.close = spying_close

    def test_eviction_closes_exactly_the_evicted_index(self, service):
        graphs = [
            weighted_cascade(gnm_random_digraph(40, 160, rng=seed)) for seed in (1, 2, 3)
        ]
        calls = []
        service.query(graphs[0], {"op": "select", "k": 2})
        service.query(graphs[1], {"op": "select", "k": 2})
        for tag, index in enumerate(service._indexes.values()):
            self._spy(index, calls, tag)
        service.query(graphs[2], {"op": "select", "k": 2})  # evicts index 0
        assert calls == [0]

    def test_service_close_closes_every_cached_index(self, service):
        graphs = [
            weighted_cascade(gnm_random_digraph(40, 160, rng=seed)) for seed in (4, 5)
        ]
        for graph in graphs:
            service.query(graph, {"op": "select", "k": 2})
        calls = []
        for tag, index in enumerate(service._indexes.values()):
            self._spy(index, calls, tag)
        service.close()
        assert calls == [0, 1]

    def test_eviction_shuts_down_a_live_worker_pool(self):
        from repro.parallel import ParallelSampler

        service = InfluenceService(max_indexes=1, theta=300, jobs=2, rng=6)
        first = weighted_cascade(gnm_random_digraph(40, 160, rng=7))
        second = weighted_cascade(gnm_random_digraph(40, 160, rng=8))
        service.query(first, {"op": "select", "k": 2})
        index = next(iter(service._indexes.values()))
        sampler = index._sampler
        assert isinstance(sampler, ParallelSampler)
        assert sampler._state.get("executor") is not None  # pool is live
        service.query(second, {"op": "select", "k": 2})  # evicts `index`
        assert service.stats.evictions == 1
        # The evicted index's pool and shared-graph pack are both released.
        assert sampler._state.get("executor") is None
        assert sampler._state.get("pack") is None

    def test_update_repair_does_not_leak_the_old_pool(self):
        from repro.dynamic import DynamicDiGraph
        from repro.parallel import ParallelSampler

        service = InfluenceService(max_indexes=2, theta=300, jobs=2,
                                   trace_edges=True, rng=6)
        graph = weighted_cascade(gnm_random_digraph(40, 160, rng=7))
        dynamic = DynamicDiGraph(graph)
        service.query(dynamic, {"op": "select", "k": 2})
        index = next(iter(service._indexes.values()))
        old_sampler = index._sampler
        assert isinstance(old_sampler, ParallelSampler)
        assert old_sampler._state.get("executor") is not None
        service.apply_update(
            dynamic, {"action": "delete", "u": int(graph.src[0]), "v": int(graph.dst[0])}
        )
        # The pre-update pool (broadcasting the old graph) is gone; the
        # repaired index owns a fresh sampler bound to the new snapshot.
        assert old_sampler._state.get("executor") is None
        assert index._sampler is not old_sampler
        service.close()
