"""Tests for graph transforms."""

import pytest

from repro.graphs import (
    DiGraph,
    GraphBuilder,
    cycle_digraph,
    induced_subgraph,
    largest_weakly_connected_component,
    path_digraph,
    reachable_from,
    remove_self_loops,
    reverse_reachable_to,
    transpose,
    weakly_connected_components,
)


def two_components() -> DiGraph:
    builder = GraphBuilder(num_nodes=7)
    builder.add_edges_from([(0, 1), (1, 2), (2, 0)])  # triangle
    builder.add_edges_from([(3, 4), (4, 5)])  # path; node 6 isolated
    return builder.build()


class TestTranspose:
    def test_matches_method(self):
        g = cycle_digraph(4)
        assert transpose(g).same_structure(g.transpose())


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = two_components()
        sub, mapping = induced_subgraph(g, [0, 1, 3])
        assert sub.num_nodes == 3
        assert mapping.tolist() == [0, 1, 3]
        assert sub.edge_set() == {(0, 1)}  # only 0 -> 1 survives

    def test_relabels_compactly(self):
        g = two_components()
        sub, mapping = induced_subgraph(g, [3, 4, 5])
        assert sub.edge_set() == {(0, 1), (1, 2)}
        assert mapping.tolist() == [3, 4, 5]

    def test_preserves_probabilities(self):
        g = path_digraph(3, prob=0.7)
        sub, _ = induced_subgraph(g, [0, 1])
        assert sub.edge_probability(0, 1) == 0.7

    def test_duplicate_input_nodes_collapsed(self):
        sub, mapping = induced_subgraph(two_components(), [1, 1, 2])
        assert sub.num_nodes == 2
        assert mapping.tolist() == [1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            induced_subgraph(two_components(), [])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            induced_subgraph(two_components(), [99])


class TestRemoveSelfLoops:
    def test_removes_only_loops(self):
        builder = GraphBuilder(num_nodes=3, allow_self_loops=True)
        builder.add_edges_from([(0, 0), (0, 1), (1, 1), (1, 2)])
        cleaned = remove_self_loops(builder.build())
        assert cleaned.edge_set() == {(0, 1), (1, 2)}


class TestComponents:
    def test_finds_all_components(self):
        components = weakly_connected_components(two_components())
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3, 3]

    def test_largest_first(self):
        components = weakly_connected_components(two_components())
        assert len(components[0]) == 3

    def test_direction_ignored(self):
        # 0 -> 1 <- 2 is weakly connected despite no directed path 0 -> 2.
        g = DiGraph(3, [0, 2], [1, 1])
        assert len(weakly_connected_components(g)) == 1

    def test_largest_component_extraction(self):
        sub, mapping = largest_weakly_connected_component(two_components())
        assert sub.num_nodes == 3
        assert sorted(mapping.tolist()) in ([0, 1, 2], [3, 4, 5])


class TestReachability:
    def test_forward(self):
        g = path_digraph(5)
        assert reachable_from(g, [1]) == {1, 2, 3, 4}

    def test_forward_multi_source(self):
        g = two_components()
        assert reachable_from(g, [0, 3]) == {0, 1, 2, 3, 4, 5}

    def test_reverse(self):
        g = path_digraph(5)
        assert reverse_reachable_to(g, 3) == {0, 1, 2, 3}

    def test_reverse_includes_target_only_when_isolated(self):
        g = two_components()
        assert reverse_reachable_to(g, 6) == {6}

    def test_cycle_reaches_everything(self):
        g = cycle_digraph(4)
        assert reverse_reachable_to(g, 0) == {0, 1, 2, 3}
