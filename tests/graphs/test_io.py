"""Tests for edge-list I/O."""

import pytest

from repro.graphs import load_edge_list, parse_edge_lines, save_edge_list, path_digraph


class TestParse:
    def test_basic_pairs(self):
        graph, labels = parse_edge_lines(["0 1", "1 2"])
        assert graph.num_edges == 2
        assert labels == {"0": 0, "1": 1, "2": 2}

    def test_weighted_lines(self):
        graph, _ = parse_edge_lines(["a b 0.25"])
        assert graph.edge_probability(0, 1) == 0.25

    def test_comments_and_blanks_skipped(self):
        graph, _ = parse_edge_lines(["# header", "", "0 1", "   ", "# end"])
        assert graph.num_edges == 1

    def test_string_labels_compacted(self):
        graph, labels = parse_edge_lines(["alice bob", "bob carol"])
        assert graph.num_nodes == 3
        assert labels["alice"] == 0

    def test_undirected_doubles_edges(self):
        graph, _ = parse_edge_lines(["0 1"], directed=False)
        assert graph.edge_set() == {(0, 1), (1, 0)}

    def test_default_probability(self):
        graph, _ = parse_edge_lines(["0 1"], default_prob=0.5)
        assert graph.edge_probability(0, 1) == 0.5

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_edge_lines(["0 1", "0 1 2 3"])


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        original = path_digraph(5, prob=0.3)
        path = tmp_path / "graph.txt"
        save_edge_list(original, path)
        loaded, _ = load_edge_list(path)
        assert loaded.same_structure(original)

    def test_save_without_probabilities(self, tmp_path):
        original = path_digraph(3, prob=0.3)
        path = tmp_path / "graph.txt"
        save_edge_list(original, path, write_probabilities=False)
        loaded, _ = load_edge_list(path)
        assert loaded.edge_set() == original.edge_set()
        assert loaded.edge_probability(0, 1) == 1.0

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("# demo\n0 1 0.5\n1 2 0.5\n")
        graph, labels = load_edge_list(path)
        assert graph.num_edges == 2
        assert len(labels) == 3
