"""DiGraph content fingerprint: stability, sensitivity, caching."""

from repro.graphs import DiGraph, gnm_random_digraph, graph_fingerprint, weighted_cascade


def build(seed: int = 4) -> DiGraph:
    return weighted_cascade(gnm_random_digraph(40, 160, rng=seed))


class TestFingerprint:
    def test_deterministic_across_instances(self):
        assert build().fingerprint() == build().fingerprint()
        assert graph_fingerprint(build()) == build().fingerprint()

    def test_is_hex_sha256(self):
        digest = build().fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_sensitive_to_structure(self):
        assert build(4).fingerprint() != build(5).fingerprint()

    def test_sensitive_to_probabilities(self):
        graph = build()
        reweighted = graph.with_probabilities(graph.prob * 0.5)
        assert graph.fingerprint() != reweighted.fingerprint()

    def test_copy_preserves_fingerprint(self):
        graph = build()
        assert graph.copy().fingerprint() == graph.fingerprint()

    def test_cached(self):
        graph = build()
        first = graph.fingerprint()
        assert graph._fingerprint_cache == first
        assert graph.fingerprint() is first
