"""Tests for graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    complete_digraph,
    cycle_digraph,
    forest_fire_digraph,
    gnm_random_digraph,
    gnp_random_digraph,
    paper_figure1_graph,
    path_digraph,
    planted_partition_digraph,
    powerlaw_out_digraph,
    preferential_attachment_graph,
    star_digraph,
    watts_strogatz_graph,
)


class TestFixtures:
    def test_path(self):
        g = path_digraph(4)
        assert g.edge_set() == {(0, 1), (1, 2), (2, 3)}

    def test_cycle(self):
        g = cycle_digraph(3)
        assert g.edge_set() == {(0, 1), (1, 2), (2, 0)}

    def test_cycle_requires_two_nodes(self):
        with pytest.raises(ValueError):
            cycle_digraph(1)

    def test_star_outward(self):
        g = star_digraph(4, outward=True)
        assert g.out_degree(0) == 3
        assert g.in_degree(0) == 0

    def test_star_inward(self):
        g = star_digraph(4, outward=False)
        assert g.in_degree(0) == 3
        assert g.out_degree(0) == 0

    def test_complete(self):
        g = complete_digraph(4)
        assert g.num_edges == 12

    def test_probability_parameter(self):
        g = path_digraph(3, prob=0.25)
        assert g.edge_probability(0, 1) == 0.25

    def test_figure1_matches_paper(self):
        g = paper_figure1_graph()
        assert g.num_nodes == 4
        # v2 -> v1 (0.01), v2 -> v4 (0.01), v4 -> v1 (1.0), v3 -> v2, v1 -> v3
        assert g.edge_probability(1, 0) == 0.01
        assert g.edge_probability(3, 0) == 1.0
        assert g.num_edges == 5


class TestGnp:
    def test_density_approximates_p(self):
        g = gnp_random_digraph(100, 0.1, rng=1)
        expected = 0.1 * 100 * 99
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_no_self_loops(self):
        g = gnp_random_digraph(40, 0.3, rng=2)
        assert not np.any(g.src == g.dst)

    def test_deterministic_given_seed(self):
        a = gnp_random_digraph(30, 0.2, rng=7)
        b = gnp_random_digraph(30, 0.2, rng=7)
        assert a.same_structure(b)

    def test_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            gnp_random_digraph(10000, 0.5, rng=1)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_digraph(50, 300, rng=3)
        assert g.num_edges == 300

    def test_edges_distinct(self):
        g = gnm_random_digraph(20, 150, rng=4)
        assert len(g.edge_set()) == 150

    def test_no_self_loops(self):
        g = gnm_random_digraph(20, 150, rng=5)
        assert not np.any(g.src == g.dst)

    def test_deterministic(self):
        assert gnm_random_digraph(20, 50, rng=6).same_structure(
            gnm_random_digraph(20, 50, rng=6)
        )

    def test_full_graph(self):
        g = gnm_random_digraph(5, 20, rng=1)
        assert g.num_edges == 20

    def test_rejects_impossible_m(self):
        with pytest.raises(ValueError, match="exceeds"):
            gnm_random_digraph(3, 7, rng=1)

    def test_zero_edges(self):
        assert gnm_random_digraph(5, 0, rng=1).num_edges == 0


class TestPreferentialAttachment:
    def test_size_and_connectivity(self):
        g = preferential_attachment_graph(100, 2, rng=8)
        assert g.num_nodes == 100
        # Undirected: every node has total degree >= 2 attachments * 2 dirs
        assert int(g.out_degrees().min()) >= 2

    def test_symmetric_when_undirected(self):
        g = preferential_attachment_graph(50, 2, rng=9)
        pairs = g.edge_set()
        assert all((v, u) in pairs for u, v in pairs)

    def test_directed_variant(self):
        g = preferential_attachment_graph(50, 2, rng=10, directed=True)
        pairs = g.edge_set()
        assert any((v, u) not in pairs for u, v in pairs)

    def test_heavy_tail(self):
        g = preferential_attachment_graph(300, 2, rng=11)
        degrees = g.out_degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_requires_n_above_m(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(3, 3, rng=1)


class TestPowerlaw:
    def test_average_degree_close(self):
        g = powerlaw_out_digraph(500, 8.0, rng=12)
        assert abs(g.m / g.n - 8.0) < 3.0

    def test_no_self_loops(self):
        g = powerlaw_out_digraph(200, 5.0, rng=13)
        assert not np.any(g.src == g.dst)

    def test_in_degree_heavy_tail(self):
        g = powerlaw_out_digraph(500, 6.0, rng=14)
        in_degrees = g.in_degrees()
        assert in_degrees.max() > 5 * in_degrees.mean()

    def test_deterministic(self):
        assert powerlaw_out_digraph(100, 4.0, rng=15).same_structure(
            powerlaw_out_digraph(100, 4.0, rng=15)
        )

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_out_digraph(100, 4.0, exponent=0.5, rng=1)


class TestWattsStrogatz:
    def test_beta_zero_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, rng=16)
        # Ring lattice: every node connected to 2 neighbours each side.
        assert int(g.out_degrees().min()) == 4
        assert int(g.out_degrees().max()) == 4

    def test_rewiring_changes_structure(self):
        lattice = watts_strogatz_graph(40, 4, 0.0, rng=17)
        rewired = watts_strogatz_graph(40, 4, 0.9, rng=17)
        assert lattice.edge_set() != rewired.edge_set()

    def test_symmetric(self):
        g = watts_strogatz_graph(30, 4, 0.3, rng=18)
        pairs = g.edge_set()
        assert all((v, u) in pairs for u, v in pairs)

    def test_odd_lattice_degree_rejected(self):
        with pytest.raises(ValueError, match="even"):
            watts_strogatz_graph(20, 3, 0.1, rng=1)


class TestPlantedPartition:
    def test_blocks_denser_than_cross(self):
        g = planted_partition_digraph(60, 3, 0.5, 0.02, rng=19)
        membership = np.arange(60) % 3
        same = membership[g.src] == membership[g.dst]
        internal = int(same.sum())
        external = g.m - internal
        # 20 nodes/community: internal capacity 3*20*19, external 3*20*40.
        assert internal / (3 * 20 * 19) > external / (3 * 20 * 40) * 5

    def test_no_self_loops(self):
        g = planted_partition_digraph(30, 2, 0.4, 0.1, rng=20)
        assert not np.any(g.src == g.dst)

    def test_more_communities_than_nodes_rejected(self):
        with pytest.raises(ValueError):
            planted_partition_digraph(3, 5, 0.5, 0.1, rng=1)


class TestForestFire:
    def test_connected_to_earlier_nodes(self):
        g = forest_fire_digraph(50, 0.3, rng=21)
        # Every non-root node links only to strictly earlier nodes.
        assert np.all(g.src > g.dst)

    def test_each_node_has_out_edge(self):
        g = forest_fire_digraph(50, 0.3, rng=22)
        assert all(g.out_degree(v) >= 1 for v in range(1, g.n))

    def test_burning_increases_density(self):
        cold = forest_fire_digraph(200, 0.05, rng=23)
        hot = forest_fire_digraph(200, 0.6, rng=23)
        assert hot.num_edges > cold.num_edges

    def test_deterministic(self):
        assert forest_fire_digraph(60, 0.3, rng=24).same_structure(
            forest_fire_digraph(60, 0.3, rng=24)
        )
