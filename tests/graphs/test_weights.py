"""Tests for edge-weighting schemes."""

import numpy as np
import pytest

from repro.graphs import (
    DiGraph,
    constant_probability,
    gnm_random_digraph,
    normalize_in_weights,
    path_digraph,
    trivalency,
    uniform_random_lt,
    validate_lt_weights,
    weighted_cascade,
)


class TestWeightedCascade:
    def test_probability_is_inverse_indegree(self):
        g = DiGraph(4, [0, 1, 2], [3, 3, 3])
        wc = weighted_cascade(g)
        assert all(p == pytest.approx(1 / 3) for _, _, p in wc.edges())

    def test_mixed_indegrees(self):
        g = DiGraph(4, [0, 1, 0], [2, 2, 3])
        wc = weighted_cascade(g)
        assert wc.edge_probability(0, 2) == pytest.approx(0.5)
        assert wc.edge_probability(0, 3) == pytest.approx(1.0)

    def test_topology_unchanged(self):
        g = gnm_random_digraph(30, 120, rng=1)
        wc = weighted_cascade(g)
        assert wc.edge_set() == g.edge_set()

    def test_original_untouched(self):
        g = path_digraph(3, prob=1.0)
        weighted_cascade(g)
        assert g.edge_probability(0, 1) == 1.0

    def test_wc_weights_are_valid_lt_weights(self):
        # In-weights sum to exactly 1 per node, so WC graphs are LT-admissible.
        wc = weighted_cascade(gnm_random_digraph(30, 150, rng=2))
        validate_lt_weights(wc)


class TestConstantProbability:
    def test_sets_all(self):
        g = constant_probability(path_digraph(5), 0.42)
        assert all(p == 0.42 for _, _, p in g.edges())

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            constant_probability(path_digraph(3), 1.2)


class TestTrivalency:
    def test_values_from_palette(self):
        g = trivalency(gnm_random_digraph(30, 200, rng=3), rng=4)
        assert set(np.unique(g.prob)) <= {0.1, 0.01, 0.001}

    def test_all_values_used(self):
        g = trivalency(gnm_random_digraph(40, 400, rng=5), rng=6)
        assert set(np.unique(g.prob)) == {0.1, 0.01, 0.001}

    def test_custom_palette(self):
        g = trivalency(path_digraph(10), rng=7, values=(0.5,))
        assert all(p == 0.5 for _, _, p in g.edges())

    def test_deterministic(self):
        base = gnm_random_digraph(20, 100, rng=8)
        assert np.array_equal(trivalency(base, rng=9).prob, trivalency(base, rng=9).prob)

    def test_rejects_empty_palette(self):
        with pytest.raises(ValueError):
            trivalency(path_digraph(3), values=())


class TestUniformRandomLt:
    def test_in_weights_sum_to_one(self):
        g = uniform_random_lt(gnm_random_digraph(40, 200, rng=10), rng=11)
        sums = np.zeros(g.n)
        np.add.at(sums, g.dst, g.prob)
        with_in_edges = g.in_degrees() > 0
        assert np.allclose(sums[with_in_edges], 1.0)

    def test_weights_positive(self):
        g = uniform_random_lt(gnm_random_digraph(40, 200, rng=12), rng=13)
        assert np.all(g.prob > 0)

    def test_validates(self):
        g = uniform_random_lt(gnm_random_digraph(40, 200, rng=14), rng=15)
        validate_lt_weights(g)

    def test_deterministic(self):
        base = gnm_random_digraph(20, 80, rng=16)
        a = uniform_random_lt(base, rng=17)
        b = uniform_random_lt(base, rng=17)
        assert np.array_equal(a.prob, b.prob)


class TestNormalizeInWeights:
    def test_preserves_ratios(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.2, 0.6])
        normalized = normalize_in_weights(g)
        assert normalized.edge_probability(0, 2) == pytest.approx(0.25)
        assert normalized.edge_probability(1, 2) == pytest.approx(0.75)

    def test_rejects_zero_sum(self):
        g = DiGraph(2, [0], [1], [0.0])
        with pytest.raises(ValueError, match="sum to zero"):
            normalize_in_weights(g)


class TestValidateLtWeights:
    def test_accepts_sub_stochastic(self):
        validate_lt_weights(DiGraph(3, [0, 1], [2, 2], [0.3, 0.3]))

    def test_rejects_super_stochastic(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.8, 0.8])
        with pytest.raises(ValueError, match="sum to"):
            validate_lt_weights(g)

    def test_edgeless_ok(self):
        validate_lt_weights(DiGraph(3, [], []))
