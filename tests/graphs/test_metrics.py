"""Tests for structural graph metrics."""

import pytest

from repro.graphs import (
    DiGraph,
    GraphBuilder,
    bfs_distances,
    complete_digraph,
    cycle_digraph,
    global_clustering_coefficient,
    largest_scc_size,
    path_digraph,
    sampled_effective_diameter,
    strongly_connected_components,
)


class TestSCC:
    def test_cycle_is_one_component(self):
        components = strongly_connected_components(cycle_digraph(5))
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2, 3, 4]

    def test_path_is_all_singletons(self):
        components = strongly_connected_components(path_digraph(4))
        assert len(components) == 4
        assert all(len(c) == 1 for c in components)

    def test_two_cycles_bridge(self):
        builder = GraphBuilder(num_nodes=6)
        builder.add_edges_from([(0, 1), (1, 2), (2, 0)])  # cycle A
        builder.add_edges_from([(3, 4), (4, 5), (5, 3)])  # cycle B
        builder.add_edge(2, 3)  # one-way bridge
        components = strongly_connected_components(builder.build())
        sizes = sorted(len(c) for c in components)
        assert sizes == [3, 3]

    def test_largest_first_ordering(self):
        builder = GraphBuilder(num_nodes=5)
        builder.add_edges_from([(0, 1), (1, 0)])
        components = strongly_connected_components(builder.build())
        assert len(components[0]) == 2

    def test_largest_scc_size(self):
        assert largest_scc_size(cycle_digraph(7)) == 7
        assert largest_scc_size(path_digraph(7)) == 1

    def test_matches_networkx_on_random_graph(self):
        import networkx as nx

        from repro.graphs import gnm_random_digraph

        g = gnm_random_digraph(40, 120, rng=1)
        ours = sorted(len(c) for c in strongly_connected_components(g))
        nx_graph = nx.DiGraph(list(zip(g.src.tolist(), g.dst.tolist())))
        nx_graph.add_nodes_from(range(g.n))
        theirs = sorted(len(c) for c in nx.strongly_connected_components(nx_graph))
        assert ours == theirs


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        builder = GraphBuilder(num_nodes=3)
        builder.add_edges_from([(0, 1), (1, 2), (2, 0)])
        assert global_clustering_coefficient(builder.build()) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        from repro.graphs import star_digraph

        assert global_clustering_coefficient(star_digraph(6)) == 0.0

    def test_complete_graph(self):
        assert global_clustering_coefficient(complete_digraph(5)) == pytest.approx(1.0)

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graphs import gnm_random_digraph

        g = gnm_random_digraph(30, 90, rng=2)
        undirected = nx.Graph(list(zip(g.src.tolist(), g.dst.tolist())))
        undirected.add_nodes_from(range(g.n))
        assert global_clustering_coefficient(g) == pytest.approx(
            nx.transitivity(undirected), abs=1e-9
        )


class TestDistances:
    def test_path_distances(self):
        distances = bfs_distances(path_digraph(5), 0)
        assert distances.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        distances = bfs_distances(path_digraph(5), 2)
        assert distances.tolist() == [-1, -1, 0, 1, 2]

    def test_source_validation(self):
        with pytest.raises(ValueError):
            bfs_distances(path_digraph(3), 9)


class TestEffectiveDiameter:
    def test_cycle_diameter(self):
        # On a directed 10-cycle all distances 1..9 appear equally often;
        # the 90th percentile is ~8.
        value = sampled_effective_diameter(cycle_digraph(10), num_sources=10, rng=1)
        assert 7.0 <= value <= 9.0

    def test_small_world_shrinks_diameter(self):
        from repro.graphs import watts_strogatz_graph

        lattice = watts_strogatz_graph(60, 4, 0.0, rng=3)
        rewired = watts_strogatz_graph(60, 4, 0.5, rng=3)
        assert sampled_effective_diameter(rewired, num_sources=20, rng=4) < (
            sampled_effective_diameter(lattice, num_sources=20, rng=4)
        )

    def test_edgeless_graph(self):
        assert sampled_effective_diameter(DiGraph(5, [], []), num_sources=5, rng=5) == 0.0
