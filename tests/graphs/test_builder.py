"""Tests for GraphBuilder."""

import pytest

from repro.graphs import GraphBuilder, from_edges


class TestAddEdge:
    def test_chaining(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
        assert g.edge_set() == {(0, 1), (1, 2)}

    def test_infers_num_nodes(self):
        g = GraphBuilder().add_edge(0, 9).build()
        assert g.num_nodes == 10

    def test_fixed_num_nodes(self):
        g = GraphBuilder(num_nodes=20).add_edge(0, 1).build()
        assert g.num_nodes == 20

    def test_edge_beyond_fixed_nodes_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            GraphBuilder(num_nodes=2).add_edge(0, 5)

    def test_self_loop_rejected_by_default(self):
        with pytest.raises(ValueError, match="self-loop"):
            GraphBuilder().add_edge(1, 1)

    def test_self_loop_opt_in(self):
        g = GraphBuilder(allow_self_loops=True).add_edge(1, 1).build()
        assert g.has_edge(1, 1)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_edge(-1, 0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_edge(0, 1, prob=1.5)

    def test_len_counts_pending_edges(self):
        builder = GraphBuilder().add_edge(0, 1).add_undirected_edge(1, 2)
        assert len(builder) == 3


class TestUndirected:
    def test_adds_both_directions(self):
        g = GraphBuilder().add_undirected_edge(0, 1, 0.3).build()
        assert g.edge_probability(0, 1) == 0.3
        assert g.edge_probability(1, 0) == 0.3

    def test_add_edges_from_undirected(self):
        g = GraphBuilder().add_edges_from([(0, 1), (1, 2)], undirected=True).build()
        assert g.num_edges == 4


class TestAddEdgesFrom:
    def test_two_and_three_tuples(self):
        g = GraphBuilder().add_edges_from([(0, 1), (1, 2, 0.4)]).build()
        assert g.edge_probability(0, 1) == 1.0
        assert g.edge_probability(1, 2) == 0.4

    def test_rejects_malformed_tuple(self):
        with pytest.raises(ValueError, match="2 or 3"):
            GraphBuilder().add_edges_from([(0, 1, 0.5, 9)])


class TestDeduplication:
    def test_error_policy_default(self):
        builder = GraphBuilder().add_edge(0, 1).add_edge(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            builder.build()

    def test_keep_policy(self):
        g = GraphBuilder(deduplicate="keep").add_edge(0, 1).add_edge(0, 1).build()
        assert g.num_edges == 2

    def test_first_policy(self):
        g = (
            GraphBuilder(deduplicate="first")
            .add_edge(0, 1, 0.1)
            .add_edge(0, 1, 0.9)
            .build()
        )
        assert g.num_edges == 1
        assert g.edge_probability(0, 1) == 0.1

    def test_last_policy(self):
        g = (
            GraphBuilder(deduplicate="last")
            .add_edge(0, 1, 0.1)
            .add_edge(0, 1, 0.9)
            .build()
        )
        assert g.num_edges == 1
        assert g.edge_probability(0, 1) == 0.9

    def test_max_policy(self):
        g = (
            GraphBuilder(deduplicate="max")
            .add_edge(0, 1, 0.4)
            .add_edge(0, 1, 0.9)
            .add_edge(0, 1, 0.2)
            .add_edge(2, 1, 0.5)
            .build()
        )
        assert g.num_edges == 2
        assert g.edge_probability(0, 1) == 0.9

    def test_dedup_preserves_distinct_edges(self):
        g = (
            GraphBuilder(deduplicate="first")
            .add_edges_from([(0, 1), (1, 0), (0, 2), (0, 1)])
            .build()
        )
        assert g.edge_set() == {(0, 1), (1, 0), (0, 2)}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="deduplicate"):
            GraphBuilder(deduplicate="bogus")


class TestFromEdges:
    def test_one_shot(self):
        g = from_edges([(0, 1, 0.2), (1, 2, 0.3)])
        assert g.num_edges == 2

    def test_empty(self):
        g = from_edges([])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_empty_with_nodes(self):
        g = from_edges([], num_nodes=7)
        assert g.num_nodes == 7
