"""Tests for graph statistics / Table 2 summaries."""

import pytest

from repro.graphs import (
    DiGraph,
    average_degree,
    complete_digraph,
    degree_histogram,
    density,
    path_digraph,
    star_digraph,
    summarize,
)


class TestSummarize:
    def test_directed_convention(self):
        g = DiGraph(4, [0, 1, 2], [1, 2, 3])
        summary = summarize(g, "demo")
        assert summary.num_edges == 3
        # Table 2 convention: average degree = 2m/n.
        assert summary.average_degree == pytest.approx(1.5)
        assert summary.graph_type == "directed"

    def test_undirected_convention(self):
        # 2 undirected edges stored as 4 arcs on 3 nodes.
        g = DiGraph(3, [0, 1, 1, 2], [1, 0, 2, 1])
        summary = summarize(g, "demo", undirected=True)
        assert summary.num_edges == 2
        assert summary.average_degree == pytest.approx(4 / 3)
        assert summary.graph_type == "undirected"

    def test_as_row_rounds(self):
        g = DiGraph(3, [0, 1], [1, 2])
        row = summarize(g, "demo").as_row()
        assert row[0] == "demo"
        assert row[-1] == round(2 * 2 / 3, 1)


class TestDegreeHistogram:
    def test_out_histogram(self):
        g = star_digraph(5, outward=True)
        hist = degree_histogram(g, "out")
        assert hist[0] == 4  # four leaves
        assert hist[4] == 1  # the hub

    def test_in_histogram(self):
        g = star_digraph(5, outward=True)
        hist = degree_histogram(g, "in")
        assert hist[1] == 4
        assert hist[0] == 1

    def test_total_histogram(self):
        g = path_digraph(3)
        hist = degree_histogram(g, "total")
        assert hist[1] == 2  # endpoints
        assert hist[2] == 1  # middle

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(path_digraph(3), "sideways")

    def test_empty_graph(self):
        hist = degree_histogram(DiGraph(0, [], []))
        assert hist.tolist() == [0]


class TestScalars:
    def test_average_degree(self):
        assert average_degree(path_digraph(4)) == pytest.approx(0.75)

    def test_density_complete(self):
        assert density(complete_digraph(5)) == pytest.approx(1.0)

    def test_density_tiny(self):
        assert density(DiGraph(1, [], [])) == 0.0
