"""Tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.graphs import DiGraph


def triangle() -> DiGraph:
    return DiGraph(3, [0, 1, 2], [1, 2, 0], [0.1, 0.2, 0.3])


class TestConstruction:
    def test_basic_counts(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = DiGraph(0, [], [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_nodes_without_edges(self):
        g = DiGraph(5, [0], [1])
        assert g.out_degree(4) == 0
        assert g.in_degree(4) == 0

    def test_default_probability_is_one(self):
        g = DiGraph(2, [0], [1])
        assert g.edge_probability(0, 1) == 1.0

    def test_rejects_out_of_range_src(self):
        with pytest.raises(ValueError, match="src"):
            DiGraph(2, [5], [1])

    def test_rejects_out_of_range_dst(self):
        with pytest.raises(ValueError, match="dst"):
            DiGraph(2, [0], [7])

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probabilities"):
            DiGraph(2, [0], [1], [1.5])

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError, match="probabilities"):
            DiGraph(2, [0], [1], [-0.1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            DiGraph(3, [0, 1], [1])

    def test_parallel_edges_allowed(self):
        g = DiGraph(2, [0, 0], [1, 1], [0.1, 0.2])
        assert g.out_degree(0) == 2


class TestAdjacency:
    def test_out_neighbors(self):
        g = triangle()
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.out_neighbors(2)) == [0]

    def test_in_neighbors(self):
        g = triangle()
        assert list(g.in_neighbors(1)) == [0]
        assert list(g.in_neighbors(0)) == [2]

    def test_out_edges_probability_alignment(self):
        g = DiGraph(3, [0, 0], [1, 2], [0.25, 0.75])
        targets, probs = g.out_edges(0)
        assert dict(zip(targets.tolist(), probs.tolist())) == {1: 0.25, 2: 0.75}

    def test_in_edges_probability_alignment(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.25, 0.75])
        sources, probs = g.in_edges(2)
        assert dict(zip(sources.tolist(), probs.tolist())) == {0: 0.25, 1: 0.75}

    def test_degree_arrays_match_scalars(self):
        g = triangle()
        assert g.out_degrees().tolist() == [g.out_degree(v) for v in g.nodes()]
        assert g.in_degrees().tolist() == [g.in_degree(v) for v in g.nodes()]

    def test_degree_sum_equals_edges(self):
        g = DiGraph(4, [0, 0, 1, 3], [1, 2, 2, 2])
        assert int(g.out_degrees().sum()) == g.m
        assert int(g.in_degrees().sum()) == g.m

    def test_python_adjacency_matches_numpy(self):
        g = DiGraph(4, [0, 0, 1, 3], [1, 2, 2, 2], [0.1, 0.2, 0.3, 0.4])
        out_adj, out_probs = g.out_adjacency()
        for v in g.nodes():
            assert out_adj[v] == list(g.out_neighbors(v))
            assert out_probs[v] == pytest.approx(list(g.out_edges(v)[1]))
        in_adj, in_probs = g.in_adjacency()
        for v in g.nodes():
            assert in_adj[v] == list(g.in_neighbors(v))
            assert in_probs[v] == pytest.approx(list(g.in_edges(v)[1]))

    def test_adjacency_is_cached(self):
        g = triangle()
        assert g.out_adjacency() is g.out_adjacency()
        assert g.in_adjacency() is g.in_adjacency()

    def test_node_id_validation(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.out_neighbors(3)
        with pytest.raises(ValueError):
            g.in_degree(-1)


class TestDerivedGraphs:
    def test_transpose_reverses_edges(self):
        g = triangle()
        t = g.transpose()
        assert t.edge_set() == {(v, u) for u, v in g.edge_set()}

    def test_transpose_preserves_probabilities(self):
        g = triangle()
        t = g.transpose()
        assert t.edge_probability(1, 0) == g.edge_probability(0, 1)

    def test_double_transpose_is_identity(self):
        g = triangle()
        assert g.transpose().transpose().same_structure(g)

    def test_with_probabilities(self):
        g = triangle()
        g2 = g.with_probabilities([0.9, 0.9, 0.9])
        assert g2.edge_probability(0, 1) == 0.9
        assert g.edge_probability(0, 1) == 0.1  # original untouched

    def test_copy_is_independent(self):
        g = triangle()
        c = g.copy()
        assert c.same_structure(g)
        c.prob[0] = 0.99
        assert g.prob[0] == 0.1


class TestQueries:
    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_probability_missing_raises(self):
        with pytest.raises(KeyError):
            triangle().edge_probability(1, 0)

    def test_edges_iteration(self):
        g = triangle()
        assert list(g.edges()) == [(0, 1, 0.1), (1, 2, 0.2), (2, 0, 0.3)]

    def test_same_structure_detects_difference(self):
        g = triangle()
        other = DiGraph(3, [0, 1, 2], [1, 2, 0], [0.1, 0.2, 0.9])
        assert not g.same_structure(other)

    def test_edge_set_collapses_parallel(self):
        g = DiGraph(2, [0, 0], [1, 1])
        assert g.edge_set() == {(0, 1)}


class TestCsrInvariants:
    def test_ptr_monotone(self):
        g = DiGraph(5, [0, 0, 2, 4, 4, 4], [1, 2, 3, 0, 1, 2])
        assert np.all(np.diff(g.out_ptr) >= 0)
        assert np.all(np.diff(g.in_ptr) >= 0)
        assert g.out_ptr[-1] == g.m
        assert g.in_ptr[-1] == g.m

    def test_csr_round_trip(self):
        g = DiGraph(5, [4, 0, 2, 0, 4, 4], [1, 2, 3, 1, 0, 2], [0.5] * 6)
        rebuilt = set()
        for v in g.nodes():
            for u in g.out_neighbors(v):
                rebuilt.add((v, int(u)))
        assert rebuilt == g.edge_set()
