"""Tests for the generic triggering RR-set sampler."""

import pytest

from repro.diffusion import FixedTriggering, ICTriggering, LTTriggering
from repro.graphs import path_digraph
from repro.rrset import ICRRSampler, LTRRSampler, TriggeringRRSampler
from repro.utils.rng import RandomSource


class TestFixedDistribution:
    def test_follows_fixed_sets(self):
        g = path_digraph(4, prob=0.5)
        dist = FixedTriggering(g, {3: [2], 2: [1], 1: []})
        rr = TriggeringRRSampler(g, dist).sample_rooted(3, RandomSource(1))
        assert set(rr.nodes) == {1, 2, 3}

    def test_empty_everything(self):
        g = path_digraph(4, prob=0.5)
        dist = FixedTriggering(g, {})
        rr = TriggeringRRSampler(g, dist).sample_rooted(2, RandomSource(1))
        assert set(rr.nodes) == {2}


class TestEquivalenceWithSpecialisedSamplers:
    def test_matches_ic_sampler_distribution(self, small_wc_graph):
        generic = TriggeringRRSampler(small_wc_graph, ICTriggering(small_wc_graph))
        special = ICRRSampler(small_wc_graph)
        runs = 3000
        generic_mean = (
            sum(len(generic.sample_rooted(0, RandomSource(i))) for i in range(runs)) / runs
        )
        special_mean = (
            sum(len(special.sample_rooted(0, RandomSource(10_000 + i))) for i in range(runs)) / runs
        )
        assert generic_mean == pytest.approx(special_mean, rel=0.12, abs=0.15)

    def test_matches_lt_sampler_distribution(self, small_lt_graph):
        generic = TriggeringRRSampler(small_lt_graph, LTTriggering(small_lt_graph))
        special = LTRRSampler(small_lt_graph)
        runs = 3000
        generic_mean = (
            sum(len(generic.sample_rooted(0, RandomSource(i))) for i in range(runs)) / runs
        )
        special_mean = (
            sum(len(special.sample_rooted(0, RandomSource(10_000 + i))) for i in range(runs)) / runs
        )
        assert generic_mean == pytest.approx(special_mean, rel=0.12, abs=0.15)


class TestValidation:
    def test_rejects_foreign_graph(self):
        g1 = path_digraph(3)
        g2 = path_digraph(3)
        with pytest.raises(ValueError, match="different graph"):
            TriggeringRRSampler(g2, ICTriggering(g1))

    def test_width_accounting(self, small_wc_graph):
        sampler = TriggeringRRSampler(small_wc_graph, ICTriggering(small_wc_graph))
        in_degrees = small_wc_graph.in_degrees()
        rng = RandomSource(5)
        for _ in range(30):
            rr = sampler.sample(rng)
            assert rr.width == int(sum(in_degrees[v] for v in rr.nodes))
