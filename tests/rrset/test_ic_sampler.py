"""Tests for the IC RR-set sampler."""

import pytest

from repro.graphs import constant_probability, path_digraph, star_digraph, weighted_cascade
from repro.graphs.transforms import reverse_reachable_to
from repro.rrset import ICRRSampler
from repro.utils.rng import RandomSource


class TestDeterministicCases:
    def test_p1_path_full_ancestry(self):
        g = path_digraph(5, prob=1.0)
        rr = ICRRSampler(g).sample_rooted(3, RandomSource(1))
        assert set(rr.nodes) == {0, 1, 2, 3}

    def test_p0_graph_singleton(self):
        g = constant_probability(path_digraph(5), 0.0)
        rr = ICRRSampler(g).sample_rooted(3, RandomSource(1))
        assert set(rr.nodes) == {3}

    def test_root_always_included(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        rng = RandomSource(2)
        for _ in range(100):
            rr = sampler.sample(rng)
            assert rr.root in rr.nodes

    def test_rr_subset_of_reverse_reachable(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        rng = RandomSource(3)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert set(rr.nodes) <= reverse_reachable_to(small_wc_graph, rr.root)


class TestWidthAndCost:
    def test_width_is_indegree_sum(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        in_degrees = small_wc_graph.in_degrees()
        rng = RandomSource(4)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert rr.width == int(sum(in_degrees[v] for v in rr.nodes))

    def test_cost_is_nodes_plus_width(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        rng = RandomSource(5)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert rr.cost == len(rr.nodes) + rr.width

    def test_isolated_root_zero_width(self):
        g = star_digraph(4, outward=True)  # leaves have indegree 1, hub 0
        rr = ICRRSampler(g).sample_rooted(0, RandomSource(6))
        assert rr.width == 0
        assert set(rr.nodes) == {0}


class TestSingleEdgeStatistics:
    def test_inclusion_probability_matches_edge(self):
        g = path_digraph(2, prob=0.3)
        sampler = ICRRSampler(g)
        rng = RandomSource(7)
        hits = sum(0 in sampler.sample_rooted(1, rng).nodes for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)


class TestFastPathEquivalence:
    def test_mean_size_agrees(self):
        # Star with 20 in-edges of the hub under WC; force the binomial fast
        # path for the hub.  Compare RR size distribution means.
        g = weighted_cascade(star_digraph(21, outward=False))
        fast = ICRRSampler(g, use_fast_path=True, fast_path_min_degree=8)
        slow = ICRRSampler(g, use_fast_path=False)
        runs = 4000
        fast_mean = sum(len(fast.sample_rooted(0, RandomSource(100 + i))) for i in range(runs)) / runs
        slow_mean = sum(len(slow.sample_rooted(0, RandomSource(900 + i))) for i in range(runs)) / runs
        assert fast_mean == pytest.approx(slow_mean, rel=0.06)

    def test_fast_path_flag_detection(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        uniform = sampler._uniform_prob_list()
        in_adj, in_probs = small_wc_graph.in_adjacency()
        for v in range(small_wc_graph.n):
            if in_probs[v]:
                # WC: all in-probs of a node are equal -> uniform everywhere.
                assert uniform[v] == pytest.approx(in_probs[v][0])
            else:
                assert uniform[v] is None

    def test_non_uniform_nodes_use_slow_path(self):
        from repro.graphs import DiGraph

        g = DiGraph(3, [0, 1], [2, 2], [0.2, 0.9])
        sampler = ICRRSampler(g)
        assert sampler._uniform_prob_list()[2] is None


class TestSampleMany:
    def test_count(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        assert len(sampler.sample_many(25, RandomSource(8))) == 25

    def test_deterministic_given_seed(self, small_wc_graph):
        sampler = ICRRSampler(small_wc_graph)
        a = [rr.nodes for rr in sampler.sample_many(20, RandomSource(9))]
        b = [rr.nodes for rr in sampler.sample_many(20, RandomSource(9))]
        assert a == b
