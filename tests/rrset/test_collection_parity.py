"""RRCollection and FlatRRCollection expose one estimator surface.

ISSUE 2's API-drift fix: the sketch index (and anything else downstream)
must be able to treat the two storage layouts interchangeably, so every
estimator/accessor either layout offers exists on both and agrees on the
same RR sets.
"""

import random

import numpy as np
import pytest

from repro.rrset import FlatRRCollection, RRCollection, RRSet

#: The shared estimator/accessor surface both layouts must expose.
PARITY_SURFACE = [
    "coverage_count",
    "coverage_fraction",
    "estimate_spread",
    "mean_width",
    "mean_kappa",
    "kappa_sum",
    "node_frequencies",
    "node_frequency_array",
    "set_sizes",
    "sets",
    "widths",
    "roots",
    "costs",
    "costs_array",
    "total_cost",
    "total_nodes_stored",
    "nbytes",
]


def sample_rrsets(seed: int = 7, num_nodes: int = 30, count: int = 90) -> list[RRSet]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        size = rng.randint(1, 6)
        nodes = tuple(rng.sample(range(num_nodes), size))
        width = rng.randint(0, 25)
        out.append(RRSet(root=nodes[0], nodes=nodes, width=width, cost=size + width))
    return out


@pytest.fixture
def pair():
    rr_sets = sample_rrsets()
    classic = RRCollection(30, 55)
    classic.extend(rr_sets)
    flat = FlatRRCollection.from_rrsets(30, 55, rr_sets)
    return classic, flat


class TestSurfaceParity:
    @pytest.mark.parametrize("name", PARITY_SURFACE)
    def test_both_layouts_expose(self, pair, name):
        classic, flat = pair
        assert hasattr(classic, name), f"RRCollection lacks {name}"
        assert hasattr(flat, name), f"FlatRRCollection lacks {name}"

    def test_coverage_estimators_agree(self, pair):
        classic, flat = pair
        for probe in ([0], [3, 7, 11], range(10)):
            assert classic.coverage_count(probe) == flat.coverage_count(probe)
            assert classic.coverage_fraction(probe) == flat.coverage_fraction(probe)
            assert classic.estimate_spread(probe) == flat.estimate_spread(probe)

    def test_kappa_estimators_agree(self, pair):
        classic, flat = pair
        for k in (1, 2, 5, 10):
            assert classic.mean_kappa(k) == pytest.approx(flat.mean_kappa(k))
            assert classic.kappa_sum(k) == pytest.approx(flat.kappa_sum(k))

    def test_frequencies_agree(self, pair):
        classic, flat = pair
        assert classic.node_frequencies() == flat.node_frequencies()
        assert np.array_equal(classic.node_frequency_array(), flat.node_frequency_array())

    def test_costs_and_sizes_agree(self, pair):
        classic, flat = pair
        assert list(classic.costs) == list(flat.costs)
        assert np.array_equal(classic.costs_array, flat.costs_array)
        assert np.array_equal(classic.set_sizes(), flat.set_sizes())
        assert classic.total_cost == flat.total_cost
        assert classic.total_nodes_stored == flat.total_nodes_stored

    def test_kappa_sum_validates_k(self, pair):
        classic, flat = pair
        with pytest.raises(ValueError):
            classic.kappa_sum(0)
        with pytest.raises(ValueError):
            flat.kappa_sum(0)

    def test_empty_collections_agree(self):
        classic = RRCollection(5, 9)
        flat = FlatRRCollection(5, 9)
        assert classic.kappa_sum(3) == flat.kappa_sum(3) == 0.0
        assert np.array_equal(classic.costs_array, flat.costs_array)
        assert np.array_equal(classic.set_sizes(), flat.set_sizes())
        assert np.array_equal(classic.node_frequency_array(), flat.node_frequency_array())
