"""Tests for the LT RR-set sampler."""

import warnings

import numpy as np
import pytest

from repro.graphs import DiGraph, gnm_random_digraph, path_digraph, uniform_random_lt
from repro.graphs.transforms import reverse_reachable_to
from repro.rrset import LTRRSampler
from repro.utils.rng import RandomSource


class TestStructure:
    def test_weight_one_chain_walks_to_source(self):
        g = path_digraph(4, prob=1.0)
        rr = LTRRSampler(g).sample_rooted(3, RandomSource(1))
        assert set(rr.nodes) == {0, 1, 2, 3}

    def test_rr_set_is_a_path(self, small_lt_graph):
        # LT RR sets are random in-walks: node i+1 of the order must be an
        # in-neighbour of node i.
        sampler = LTRRSampler(small_lt_graph)
        in_adj, _ = small_lt_graph.in_adjacency()
        rng = RandomSource(2)
        for _ in range(50):
            rr = sampler.sample(rng)
            nodes = list(rr.nodes)
            for i in range(len(nodes) - 1):
                assert nodes[i + 1] in in_adj[nodes[i]]

    def test_root_first(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(3)
        for _ in range(20):
            rr = sampler.sample(rng)
            assert rr.nodes[0] == rr.root

    def test_no_duplicates(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(4)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert len(set(rr.nodes)) == len(rr.nodes)

    def test_subset_of_reverse_reachable(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(5)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert set(rr.nodes) <= reverse_reachable_to(small_lt_graph, rr.root)

    def test_rejects_invalid_weights(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.8, 0.8])
        with pytest.raises(ValueError):
            LTRRSampler(g)


class TestStatistics:
    def test_single_edge_inclusion_rate(self):
        g = DiGraph(2, [0], [1], [0.4])
        sampler = LTRRSampler(g)
        rng = RandomSource(6)
        hits = sum(0 in sampler.sample_rooted(1, rng).nodes for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.4, abs=0.03)

    def test_walk_picks_proportional_to_weight(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.25, 0.75])
        sampler = LTRRSampler(g)
        rng = RandomSource(7)
        picked_zero = 0
        picked_one = 0
        for _ in range(4000):
            nodes = sampler.sample_rooted(2, rng).nodes
            if 0 in nodes:
                picked_zero += 1
            if 1 in nodes:
                picked_one += 1
        assert picked_zero / 4000 == pytest.approx(0.25, abs=0.03)
        assert picked_one / 4000 == pytest.approx(0.75, abs=0.03)

    def test_width_accounting(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        in_degrees = small_lt_graph.in_degrees()
        rng = RandomSource(8)
        for _ in range(30):
            rr = sampler.sample(rng)
            assert rr.width == int(sum(in_degrees[v] for v in rr.nodes))

    def test_cost_counts_walk_steps(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(9)
        for _ in range(30):
            rr = sampler.sample(rng)
            # Exactly one draw per visited node (the final draw terminates),
            # so cost = |R| nodes + |R| draws.
            assert rr.cost == 2 * len(rr.nodes)


class TestCycleTermination:
    def test_cycle_walk_terminates(self):
        from repro.graphs import cycle_digraph

        g = cycle_digraph(5, prob=1.0)
        sampler = LTRRSampler(g)
        rr = sampler.sample_rooted(0, RandomSource(10))
        # Walks the full cycle then stops on revisit.
        assert set(rr.nodes) == {0, 1, 2, 3, 4}


class TestVectorizedBatch:
    """The numpy-batched walk waves of LTRRSampler.sample_batch."""

    @pytest.fixture(scope="class")
    def lt_graph(self):
        return uniform_random_lt(gnm_random_digraph(800, 5000, rng=31), rng=2)

    def test_no_python_fallback_warning(self, lt_graph):
        sampler = LTRRSampler(lt_graph)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sampler.sample_batch(np.arange(50), RandomSource(1))

    def test_roots_order_and_membership(self, lt_graph):
        sampler = LTRRSampler(lt_graph)
        roots = np.array([5, 5, 17, 0, 799], dtype=np.int64)
        batch = sampler.sample_batch(roots, RandomSource(2))
        assert np.array_equal(batch.roots_array, roots.astype(np.int32))
        in_adj, _ = lt_graph.in_adjacency()
        ptr, nodes = batch.ptr_array, batch.nodes_array
        for i in range(len(batch)):
            members = nodes[ptr[i] : ptr[i + 1]].tolist()
            assert members[0] == roots[i]
            assert len(set(members)) == len(members)
            # Each member is a step of an in-walk from its predecessor.
            for a, b in zip(members, members[1:]):
                assert b in in_adj[a]

    def test_width_and_cost_invariants(self, lt_graph):
        sampler = LTRRSampler(lt_graph)
        batch = sampler.sample_random_batch(500, RandomSource(3))
        assert np.array_equal(batch.costs_array, 2 * batch.set_sizes())
        in_deg = lt_graph.in_degrees()
        ptr, nodes = batch.ptr_array, batch.nodes_array
        for i in range(0, len(batch), 37):
            members = nodes[ptr[i] : ptr[i + 1]]
            assert batch.widths_array[i] == in_deg[members].sum()

    def test_distribution_matches_scalar(self, lt_graph):
        sampler = LTRRSampler(lt_graph)
        rng = RandomSource(4)
        scalar = [sampler.sample(rng) for _ in range(3000)]
        batch = sampler.sample_random_batch(3000, RandomSource(5))
        scalar_mean = sum(len(rr) for rr in scalar) / len(scalar)
        assert batch.set_sizes().mean() == pytest.approx(scalar_mean, rel=0.1)
        scalar_width = sum(rr.width for rr in scalar) / len(scalar)
        assert batch.widths_array.mean() == pytest.approx(scalar_width, rel=0.1)

    def test_single_edge_inclusion_rate_batched(self):
        g = DiGraph(2, [0], [1], [0.4])
        sampler = LTRRSampler(g)
        batch = sampler.sample_batch(np.ones(4000, dtype=np.int64), RandomSource(6))
        hits = int(np.count_nonzero(batch.set_sizes() == 2))
        assert hits / 4000 == pytest.approx(0.4, abs=0.03)

    def test_weight_one_chain_batched(self):
        g = path_digraph(6, prob=1.0)
        sampler = LTRRSampler(g)
        batch = sampler.sample_batch(np.array([5, 3]), RandomSource(7))
        ptr, nodes = batch.ptr_array, batch.nodes_array
        assert nodes[ptr[0] : ptr[1]].tolist() == [5, 4, 3, 2, 1, 0]
        assert nodes[ptr[1] : ptr[2]].tolist() == [3, 2, 1, 0]

    def test_cycle_terminates_batched(self):
        from repro.graphs import cycle_digraph

        g = cycle_digraph(5, prob=1.0)
        sampler = LTRRSampler(g)
        batch = sampler.sample_batch(np.zeros(8, dtype=np.int64), RandomSource(8))
        assert np.all(batch.set_sizes() == 5)

    def test_deterministic_same_seed(self, lt_graph):
        sampler = LTRRSampler(lt_graph)
        a = sampler.sample_random_batch(1000, RandomSource(9))
        b = sampler.sample_random_batch(1000, RandomSource(9))
        assert np.array_equal(a.nodes_array, b.nodes_array)
        assert np.array_equal(a.ptr_array, b.ptr_array)

    def test_empty_roots(self, lt_graph):
        sampler = LTRRSampler(lt_graph)
        batch = sampler.sample_batch(np.empty(0, dtype=np.int64), RandomSource(10))
        assert len(batch) == 0

    def test_chunking_matches_single_chunk(self, lt_graph, monkeypatch):
        roots = np.arange(0, 600, dtype=np.int64) % lt_graph.n
        whole = LTRRSampler(lt_graph).sample_batch(roots, RandomSource(11))
        monkeypatch.setattr(LTRRSampler, "BATCH_CHUNK_MAX", 128)
        chunked = LTRRSampler(lt_graph).sample_batch(roots, RandomSource(12))
        # Different chunking => different RNG consumption, same distribution.
        assert chunked.set_sizes().mean() == pytest.approx(
            whole.set_sizes().mean(), rel=0.25
        )
        assert np.array_equal(chunked.roots_array, whole.roots_array)
