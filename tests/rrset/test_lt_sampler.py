"""Tests for the LT RR-set sampler."""

import pytest

from repro.graphs import DiGraph, path_digraph
from repro.graphs.transforms import reverse_reachable_to
from repro.rrset import LTRRSampler
from repro.utils.rng import RandomSource


class TestStructure:
    def test_weight_one_chain_walks_to_source(self):
        g = path_digraph(4, prob=1.0)
        rr = LTRRSampler(g).sample_rooted(3, RandomSource(1))
        assert set(rr.nodes) == {0, 1, 2, 3}

    def test_rr_set_is_a_path(self, small_lt_graph):
        # LT RR sets are random in-walks: node i+1 of the order must be an
        # in-neighbour of node i.
        sampler = LTRRSampler(small_lt_graph)
        in_adj, _ = small_lt_graph.in_adjacency()
        rng = RandomSource(2)
        for _ in range(50):
            rr = sampler.sample(rng)
            nodes = list(rr.nodes)
            for i in range(len(nodes) - 1):
                assert nodes[i + 1] in in_adj[nodes[i]]

    def test_root_first(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(3)
        for _ in range(20):
            rr = sampler.sample(rng)
            assert rr.nodes[0] == rr.root

    def test_no_duplicates(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(4)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert len(set(rr.nodes)) == len(rr.nodes)

    def test_subset_of_reverse_reachable(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(5)
        for _ in range(50):
            rr = sampler.sample(rng)
            assert set(rr.nodes) <= reverse_reachable_to(small_lt_graph, rr.root)

    def test_rejects_invalid_weights(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.8, 0.8])
        with pytest.raises(ValueError):
            LTRRSampler(g)


class TestStatistics:
    def test_single_edge_inclusion_rate(self):
        g = DiGraph(2, [0], [1], [0.4])
        sampler = LTRRSampler(g)
        rng = RandomSource(6)
        hits = sum(0 in sampler.sample_rooted(1, rng).nodes for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.4, abs=0.03)

    def test_walk_picks_proportional_to_weight(self):
        g = DiGraph(3, [0, 1], [2, 2], [0.25, 0.75])
        sampler = LTRRSampler(g)
        rng = RandomSource(7)
        picked_zero = 0
        picked_one = 0
        for _ in range(4000):
            nodes = sampler.sample_rooted(2, rng).nodes
            if 0 in nodes:
                picked_zero += 1
            if 1 in nodes:
                picked_one += 1
        assert picked_zero / 4000 == pytest.approx(0.25, abs=0.03)
        assert picked_one / 4000 == pytest.approx(0.75, abs=0.03)

    def test_width_accounting(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        in_degrees = small_lt_graph.in_degrees()
        rng = RandomSource(8)
        for _ in range(30):
            rr = sampler.sample(rng)
            assert rr.width == int(sum(in_degrees[v] for v in rr.nodes))

    def test_cost_counts_walk_steps(self, small_lt_graph):
        sampler = LTRRSampler(small_lt_graph)
        rng = RandomSource(9)
        for _ in range(30):
            rr = sampler.sample(rng)
            # Exactly one draw per visited node (the final draw terminates),
            # so cost = |R| nodes + |R| draws.
            assert rr.cost == 2 * len(rr.nodes)


class TestCycleTermination:
    def test_cycle_walk_terminates(self):
        from repro.graphs import cycle_digraph

        g = cycle_digraph(5, prob=1.0)
        sampler = LTRRSampler(g)
        rr = sampler.sample_rooted(0, RandomSource(10))
        # Walks the full cycle then stops on revisit.
        assert set(rr.nodes) == {0, 1, 2, 3, 4}
