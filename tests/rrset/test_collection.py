"""Tests for RRCollection."""

import pytest

from repro.rrset import RRCollection, RRSet


def make_collection() -> RRCollection:
    collection = RRCollection(num_nodes=5, graph_edges=10)
    collection.append(RRSet(root=0, nodes=(0, 1), width=3, cost=5))
    collection.append(RRSet(root=2, nodes=(2,), width=1, cost=2))
    collection.append(RRSet(root=3, nodes=(3, 1, 4), width=6, cost=9))
    return collection


class TestBookkeeping:
    def test_len(self):
        assert len(make_collection()) == 3

    def test_total_cost(self):
        assert make_collection().total_cost == 16

    def test_total_nodes_stored(self):
        assert make_collection().total_nodes_stored == 6

    def test_widths_and_roots(self):
        collection = make_collection()
        assert list(collection.widths) == [3, 1, 6]
        assert list(collection.roots) == [0, 2, 3]

    def test_extend(self):
        collection = RRCollection(num_nodes=3, graph_edges=2)
        collection.extend([RRSet(0, (0,), 0, 1), RRSet(1, (1,), 1, 2)])
        assert len(collection) == 2

    def test_nbytes_grows(self):
        small = RRCollection(num_nodes=5, graph_edges=10)
        small.append(RRSet(0, (0,), 0, 1))
        assert make_collection().nbytes() > small.nbytes()

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            RRCollection(num_nodes=0, graph_edges=0)


class TestCoverage:
    def test_coverage_count(self):
        collection = make_collection()
        assert collection.coverage_count([1]) == 2  # sets 0 and 2
        assert collection.coverage_count([2]) == 1
        assert collection.coverage_count([0, 2, 3]) == 3

    def test_coverage_fraction(self):
        assert make_collection().coverage_fraction([1]) == pytest.approx(2 / 3)

    def test_empty_collection_fraction_zero(self):
        collection = RRCollection(num_nodes=5, graph_edges=10)
        assert collection.coverage_fraction([1]) == 0.0

    def test_estimate_spread_is_n_times_fraction(self):
        collection = make_collection()
        assert collection.estimate_spread([1]) == pytest.approx(5 * 2 / 3)

    def test_node_frequencies(self):
        assert make_collection().node_frequencies() == [1, 2, 1, 1, 1]


class TestEstimators:
    def test_mean_width(self):
        assert make_collection().mean_width() == pytest.approx(10 / 3)

    def test_mean_width_empty(self):
        assert RRCollection(num_nodes=5, graph_edges=10).mean_width() == 0.0

    def test_mean_kappa_k1_is_mean_width_over_m(self):
        collection = make_collection()
        # k=1: kappa(R) = w(R)/m exactly.
        assert collection.mean_kappa(1) == pytest.approx(collection.mean_width() / 10)

    def test_mean_kappa_increases_with_k(self):
        collection = make_collection()
        assert collection.mean_kappa(5) > collection.mean_kappa(1)

    def test_mean_kappa_bounded_by_one(self):
        assert make_collection().mean_kappa(1000) <= 1.0

    def test_mean_kappa_rejects_bad_k(self):
        with pytest.raises(ValueError):
            make_collection().mean_kappa(0)
