"""FlatRRCollection: layout, estimators, and parity with RRCollection."""

import random

import numpy as np
import pytest

from repro.rrset import FlatRRCollection, RRCollection, RRSet


def random_rrsets(seed: int, num_nodes: int = 40, count: int = 120) -> list[RRSet]:
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        size = rng.randint(1, min(8, num_nodes))
        nodes = tuple(rng.sample(range(num_nodes), size))
        width = rng.randint(0, 30)
        sets.append(RRSet(root=nodes[0], nodes=nodes, width=width, cost=size + width))
    return sets


def paired_collections(seed: int = 0, num_nodes: int = 40, graph_edges: int = 77):
    rr_sets = random_rrsets(seed, num_nodes=num_nodes)
    classic = RRCollection(num_nodes, graph_edges)
    classic.extend(rr_sets)
    flat = FlatRRCollection.from_rrsets(num_nodes, graph_edges, rr_sets)
    return classic, flat


class TestLayout:
    def test_ptr_and_nodes_consistent(self):
        _, flat = paired_collections()
        ptr = flat.ptr_array
        assert ptr[0] == 0
        assert ptr[-1] == flat.total_nodes_stored == flat.nodes_array.size
        assert np.all(np.diff(ptr) >= 1)

    def test_sets_roundtrip(self):
        classic, flat = paired_collections()
        assert [tuple(s) for s in flat.sets] == list(classic.sets)

    def test_to_rrsets_roundtrip(self):
        rr_sets = random_rrsets(3)
        flat = FlatRRCollection.from_rrsets(40, 77, rr_sets)
        assert flat.to_rrsets() == rr_sets

    def test_iteration_yields_rrsets(self):
        rr_sets = random_rrsets(4)
        flat = FlatRRCollection.from_rrsets(40, 77, rr_sets)
        assert list(flat) == rr_sets

    def test_extend_flat_concatenates(self):
        a = FlatRRCollection.from_rrsets(40, 77, random_rrsets(5, count=30))
        b = FlatRRCollection.from_rrsets(40, 77, random_rrsets(6, count=20))
        merged = FlatRRCollection(40, 77)
        merged.extend_flat(a)
        merged.extend_flat(b)
        assert len(merged) == 50
        assert merged.sets == a.sets + b.sets
        assert merged.total_cost == a.total_cost + b.total_cost

    def test_extend_flat_rejects_universe_mismatch(self):
        a = FlatRRCollection(40, 77)
        b = FlatRRCollection(41, 77)
        with pytest.raises(ValueError):
            a.extend_flat(b)

    def test_truncate(self):
        flat = FlatRRCollection.from_rrsets(40, 77, random_rrsets(7, count=30))
        full_sets = flat.sets
        flat.truncate(12)
        assert len(flat) == 12
        assert flat.sets == full_sets[:12]
        assert flat.ptr_array.size == 13

    def test_truncate_out_of_range(self):
        flat = FlatRRCollection.from_rrsets(40, 77, random_rrsets(8, count=5))
        with pytest.raises(ValueError):
            flat.truncate(6)

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            FlatRRCollection(num_nodes=0, graph_edges=0)


class TestParityWithRRCollection:
    """Same logical contents ⇒ same estimator values, on random inputs."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_estimators_agree(self, seed):
        classic, flat = paired_collections(seed)
        assert len(flat) == len(classic)
        assert list(flat.widths) == list(classic.widths)
        assert list(flat.roots) == list(classic.roots)
        assert flat.total_cost == classic.total_cost
        assert flat.total_nodes_stored == classic.total_nodes_stored
        assert flat.mean_width() == pytest.approx(classic.mean_width())
        for k in (1, 3, 10):
            assert flat.mean_kappa(k) == pytest.approx(classic.mean_kappa(k))
        assert flat.node_frequencies() == classic.node_frequencies()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_coverage_agrees(self, seed):
        classic, flat = paired_collections(seed)
        rng = random.Random(seed + 100)
        for _ in range(10):
            probe = rng.sample(range(40), rng.randint(1, 6))
            assert flat.coverage_count(probe) == classic.coverage_count(probe)
            assert flat.coverage_fraction(probe) == pytest.approx(
                classic.coverage_fraction(probe)
            )
            assert flat.estimate_spread(probe) == pytest.approx(
                classic.estimate_spread(probe)
            )

    def test_empty_collections_agree(self):
        classic = RRCollection(5, 10)
        flat = FlatRRCollection(5, 10)
        assert flat.coverage_fraction([1]) == classic.coverage_fraction([1]) == 0.0
        assert flat.mean_width() == classic.mean_width() == 0.0
        assert flat.mean_kappa(2) == classic.mean_kappa(2) == 0.0
        assert flat.total_cost == classic.total_cost == 0

    def test_kappa_sum_matches_mean(self):
        _, flat = paired_collections()
        assert flat.kappa_sum(4) == pytest.approx(flat.mean_kappa(4) * len(flat))


class TestBytesAccounting:
    def test_flat_nbytes_is_exact(self):
        flat = FlatRRCollection.from_rrsets(40, 77, random_rrsets(9, count=50))
        expected = (
            (len(flat) + 1) * 8  # ptr int64
            + flat.total_nodes_stored * 4  # nodes int32
            + len(flat) * (8 + 4 + 8)  # widths int64 + roots int32 + costs int64
        )
        assert flat.nbytes() == expected

    def test_flat_nbytes_ignores_overallocation(self):
        a = FlatRRCollection(40, 77)
        b = FlatRRCollection(40, 77)
        rr = RRSet(root=1, nodes=(1, 2, 3), width=4, cost=7)
        a.append(rr)
        # b holds the same live data but went through many growth cycles.
        for _ in range(30):
            b.append(rr)
        b.truncate(1)
        assert a.nbytes() == b.nbytes()

    def test_classic_nbytes_counts_int_payloads(self):
        """The fixed RRCollection accounting must exceed container-only size."""
        import sys

        classic, _ = paired_collections(10)
        container_only = sys.getsizeof(classic._sets) + sum(
            sys.getsizeof(s) for s in classic._sets
        )
        assert classic.nbytes() > container_only

    def test_parity_flat_is_leaner(self):
        """Same contents: packed arrays must undercut tuple-of-int storage."""
        classic, flat = paired_collections(11)
        assert 0 < flat.nbytes() < classic.nbytes()

    def test_both_grow_with_contents(self):
        small_sets = random_rrsets(12, count=10)
        big_sets = random_rrsets(12, count=200)
        for cls in (RRCollection, FlatRRCollection):
            small = cls(40, 77)
            small.extend(small_sets)
            big = cls(40, 77)
            big.extend(big_sets)
            assert big.nbytes() > small.nbytes()
