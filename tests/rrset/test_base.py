"""Tests for the RR-set interface and sampler dispatch."""

import warnings

import pytest

from repro.diffusion import ICTriggering, TriggeringModel
from repro.rrset import ICRRSampler, LTRRSampler, RRSet, TriggeringRRSampler, make_rr_sampler
from repro.utils.rng import RandomSource


class TestRRSet:
    def test_container_protocol(self):
        rr = RRSet(root=1, nodes=(1, 3, 5), width=4, cost=7)
        assert len(rr) == 3
        assert 3 in rr
        assert 2 not in rr
        assert list(rr) == [1, 3, 5]

    def test_frozen(self):
        rr = RRSet(root=1, nodes=(1,), width=0, cost=1)
        with pytest.raises(AttributeError):
            rr.root = 2


class TestDispatch:
    def test_ic_by_name(self, small_wc_graph):
        assert isinstance(make_rr_sampler(small_wc_graph, "IC"), ICRRSampler)

    def test_lt_by_name(self, small_lt_graph):
        assert isinstance(make_rr_sampler(small_lt_graph, "LT"), LTRRSampler)

    def test_triggering_instance(self, small_wc_graph):
        model = TriggeringModel(ICTriggering(small_wc_graph))
        sampler = make_rr_sampler(small_wc_graph, model)
        assert isinstance(sampler, TriggeringRRSampler)

    def test_lt_validates_weights(self, small_wc_graph):
        # WC weights sum to 1 per node, so they are legal LT weights too.
        assert isinstance(make_rr_sampler(small_wc_graph, "LT"), LTRRSampler)

    def test_unknown_model_rejected(self, small_wc_graph):
        with pytest.raises(ValueError):
            make_rr_sampler(small_wc_graph, "bogus")


class TestUniformRootSampling:
    def test_roots_cover_graph(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        rng = RandomSource(1)
        roots = {sampler.sample(rng).root for _ in range(600)}
        # 600 uniform draws over 60 nodes should hit nearly all of them.
        assert len(roots) > 50

    def test_width_of_helper(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        in_degrees = small_wc_graph.in_degrees()
        assert sampler.width_of([0, 1]) == int(in_degrees[0] + in_degrees[1])


class TestBatchFallbackWarning:
    def test_unvectorized_sampler_warns_once(self, small_wc_graph):
        from repro.rrset.base import RRSampler
        from repro.rrset.ic_sampler import ICRRSampler

        class SlowpokeSampler(RRSampler):
            model_name = "slowpoke"

            def __init__(self, graph):
                super().__init__(graph)
                self._inner = ICRRSampler(graph)

            def sample_rooted(self, root, rng):
                return self._inner.sample_rooted(root, rng)

        sampler = SlowpokeSampler(small_wc_graph)
        with pytest.warns(RuntimeWarning, match="no vectorized sample_batch"):
            sampler.sample_batch([0, 1, 2], RandomSource(1))
        # Warned once per class, not once per call.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sampler.sample_batch([0, 1, 2], RandomSource(2))

    def test_vectorized_samplers_do_not_warn(self, small_wc_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_rr_sampler(small_wc_graph, "IC").sample_batch([0, 1], RandomSource(3))
            make_rr_sampler(small_wc_graph, "LT").sample_batch([0, 1], RandomSource(4))
