"""Live-edge trace recording: RNG-invariance and structural invariants."""

import numpy as np
import pytest

from repro.graphs import gnm_random_digraph, uniform_random_lt, weighted_cascade
from repro.rrset import FlatRRCollection, make_rr_sampler
from repro.rrset.ic_sampler import ICRRSampler
from repro.rrset.lt_sampler import LTRRSampler
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def ic_graph():
    return weighted_cascade(gnm_random_digraph(150, 900, rng=7))


@pytest.fixture(scope="module")
def lt_graph():
    return uniform_random_lt(gnm_random_digraph(150, 900, rng=7), rng=3)


def in_edge_destination(graph, edge_ids):
    """Destination node of each in-CSR edge id."""
    return np.searchsorted(graph.in_ptr, np.asarray(edge_ids), side="right") - 1


class TestTracingIsRngInvariant:
    """Tracing must record, never perturb: a traced sampler draws the exact
    same RR sets as an untraced one from the same stream."""

    @pytest.mark.parametrize("maker,graph_fixture", [
        (lambda g, t: ICRRSampler(g, trace_edges=t), "ic_graph"),
        (lambda g, t: ICRRSampler(g, fast_path_min_degree=1, trace_edges=t), "ic_graph"),
        (lambda g, t: ICRRSampler(g, max_depth=2, trace_edges=t), "ic_graph"),
        (lambda g, t: LTRRSampler(g, trace_edges=t), "lt_graph"),
    ], ids=["ic", "ic-fast-path", "ic-bounded", "lt"])
    def test_scalar_path(self, maker, graph_fixture, request):
        graph = request.getfixturevalue(graph_fixture)
        plain = maker(graph, False)
        traced = maker(graph, True)
        for seed in range(40):
            a = plain.sample_rooted(seed % graph.n, RandomSource(seed))
            b = traced.sample_rooted(seed % graph.n, RandomSource(seed))
            assert sorted(a.nodes) == sorted(b.nodes)
            assert (a.width, a.cost) == (b.width, b.cost)
            assert a.trace is None and b.trace is not None

    @pytest.mark.parametrize("maker,graph_fixture", [
        (lambda g, t: ICRRSampler(g, trace_edges=t), "ic_graph"),
        (lambda g, t: ICRRSampler(g, max_depth=2, trace_edges=t), "ic_graph"),
        (lambda g, t: LTRRSampler(g, trace_edges=t), "lt_graph"),
    ], ids=["ic", "ic-bounded", "lt"])
    def test_batch_path(self, maker, graph_fixture, request):
        graph = request.getfixturevalue(graph_fixture)
        roots = np.arange(500) % graph.n
        a = maker(graph, False).sample_batch(roots, RandomSource(11))
        b = maker(graph, True).sample_batch(roots, RandomSource(11))
        for name in ("ptr_array", "nodes_array", "roots_array", "widths_array",
                     "costs_array"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name
        assert not a.has_traces and b.has_traces


class TestTraceInvariants:
    def test_ic_trace_edges_connect_members_and_span_the_set(self, ic_graph):
        sampler = ICRRSampler(ic_graph, trace_edges=True)
        batch = sampler.sample_batch(np.arange(300) % ic_graph.n, RandomSource(5))
        ptr, nodes = batch.ptr_array, batch.nodes_array
        dst = in_edge_destination(ic_graph, batch.trace_edges_array)
        for i in range(len(batch)):
            members = set(nodes[ptr[i] : ptr[i + 1]].tolist())
            trace = batch.trace_of(i)
            assert len(set(trace.tolist())) == trace.size  # each coin once
            # Every live edge connects two members...
            adjacency: dict[int, list[int]] = {}
            for j, edge in zip(
                range(int(batch.trace_ptr_array[i]), int(batch.trace_ptr_array[i + 1])),
                trace.tolist(),
            ):
                assert int(dst[j]) in members
                source = int(ic_graph.in_idx[edge])
                assert source in members
                adjacency.setdefault(int(dst[j]), []).append(source)
            # ...and the live edges alone reconstruct the whole membership
            # (reverse reachability from the root over successful coins).
            reached = {int(batch.roots_array[i])}
            frontier = [int(batch.roots_array[i])]
            while frontier:
                node = frontier.pop()
                for source in adjacency.get(node, ()):
                    if source not in reached:
                        reached.add(source)
                        frontier.append(source)
            assert reached == members

    def test_lt_trace_is_one_pick_per_member(self, lt_graph):
        sampler = LTRRSampler(lt_graph, trace_edges=True)
        batch = sampler.sample_batch(np.arange(300) % lt_graph.n, RandomSource(5))
        ptr, nodes = batch.ptr_array, batch.nodes_array
        dst = in_edge_destination(lt_graph, batch.trace_edges_array)
        for i in range(len(batch)):
            members = nodes[ptr[i] : ptr[i + 1]].tolist()
            lo, hi = int(batch.trace_ptr_array[i]), int(batch.trace_ptr_array[i + 1])
            # The walk draws once per member: the final draw either stops
            # (no edge) or revisits (one extra edge).
            assert hi - lo in (len(members) - 1, len(members))
            owners = dst[lo:hi].tolist()
            assert len(set(owners)) == len(owners)
            assert set(owners) <= set(members)


class TestCollectionTraceContract:
    def test_traced_collection_rejects_untraced_appends(self, ic_graph):
        traced = FlatRRCollection(ic_graph.n, ic_graph.m, track_traces=True)
        plain_set = ICRRSampler(ic_graph).sample_rooted(0, RandomSource(1))
        with pytest.raises(ValueError, match="carries none"):
            traced.append(plain_set)

    def test_untraced_collection_drops_rrset_traces_but_rejects_arrays(self, ic_graph):
        plain = FlatRRCollection(ic_graph.n, ic_graph.m)
        traced_set = ICRRSampler(ic_graph, trace_edges=True).sample_rooted(
            0, RandomSource(1)
        )
        plain.append(traced_set)  # trace silently dropped: storage is opt-in
        assert len(plain) == 1 and not plain.has_traces
        # ...but handing packed trace arrays to an untracked collection is a
        # caller bug and must be loud.
        with pytest.raises(ValueError, match="track_traces=True"):
            plain.append_arrays(
                root=0,
                members=np.array([0], dtype=np.int32),
                width=1,
                cost=2,
                trace=np.array([0], dtype=np.int32),
            )

    def test_extend_flat_carries_traces(self, ic_graph):
        sampler = ICRRSampler(ic_graph, trace_edges=True)
        a = sampler.sample_batch(np.arange(50), RandomSource(1))
        b = sampler.sample_batch(np.arange(50, 90), RandomSource(2))
        merged = FlatRRCollection(ic_graph.n, ic_graph.m, track_traces=True)
        merged.extend_flat(a)
        merged.extend_flat(b)
        assert len(merged) == 90
        expected = np.concatenate([a.trace_edges_array, b.trace_edges_array])
        assert np.array_equal(merged.trace_edges_array, expected)

    def test_truncate_trims_traces(self, ic_graph):
        sampler = ICRRSampler(ic_graph, trace_edges=True)
        batch = sampler.sample_batch(np.arange(60), RandomSource(1))
        kept_entries = int(batch.trace_ptr_array[25])
        batch.truncate(25)
        assert len(batch) == 25
        assert batch.trace_edges_array.size == kept_entries

    def test_nbytes_counts_trace_payload(self, ic_graph):
        sampler_plain = ICRRSampler(ic_graph)
        sampler_traced = ICRRSampler(ic_graph, trace_edges=True)
        plain = sampler_plain.sample_batch(np.arange(80), RandomSource(1))
        traced = sampler_traced.sample_batch(np.arange(80), RandomSource(1))
        extra = traced.nbytes() - plain.nbytes()
        expected = (
            traced.trace_ptr_array.size * traced.trace_ptr_array.itemsize
            + traced.trace_edges_array.size * traced.trace_edges_array.itemsize
        )
        assert extra == expected

    def test_to_rrsets_roundtrips_traces(self, ic_graph):
        sampler = ICRRSampler(ic_graph, trace_edges=True)
        batch = sampler.sample_batch(np.arange(20), RandomSource(1))
        rebuilt = FlatRRCollection.from_rrsets(
            ic_graph.n, ic_graph.m, batch.to_rrsets(), track_traces=True
        )
        assert np.array_equal(rebuilt.trace_edges_array, batch.trace_edges_array)
        assert np.array_equal(rebuilt.nodes_array, batch.nodes_array)

    def test_make_rr_sampler_rejects_tracing_unsupported_models(self, ic_graph):
        from repro.diffusion.triggering import ICTriggering, TriggeringModel

        model = TriggeringModel(ICTriggering(ic_graph))
        with pytest.raises(ValueError, match="tracing is not supported"):
            make_rr_sampler(ic_graph, model, trace_edges=True)
