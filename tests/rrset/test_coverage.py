"""Tests for greedy maximum coverage."""

import pytest

from repro.rrset import (
    brute_force_max_coverage,
    coverage_of,
    greedy_max_coverage,
    greedy_max_coverage_python,
    lazy_greedy_max_coverage,
)


SIMPLE_SETS = [(0, 1), (1, 2), (2,), (3,), (0, 3)]


class TestCoverageOf:
    def test_counts_intersections(self):
        assert coverage_of(SIMPLE_SETS, [1]) == 2
        assert coverage_of(SIMPLE_SETS, [0, 2]) == 4
        assert coverage_of(SIMPLE_SETS, []) == 0


class TestExactGreedy:
    def test_single_pick_is_most_frequent(self):
        result = greedy_max_coverage(SIMPLE_SETS, 4, 1)
        # Node frequencies: 0:2, 1:2, 2:2, 3:2 — tie broken to node 0.
        assert result.seeds == [0]
        assert result.covered == 2

    def test_greedy_two_picks(self):
        sets = [(0,), (0,), (0, 1), (1,), (2,)]
        result = greedy_max_coverage(sets, 3, 2)
        assert result.seeds[0] == 0  # covers 3 sets
        assert result.covered == 4  # then node 1 adds set (1,)

    def test_coverage_matches_reference_counter(self):
        result = greedy_max_coverage(SIMPLE_SETS, 4, 2)
        assert result.covered == coverage_of(SIMPLE_SETS, result.seeds)

    def test_seeds_distinct(self):
        result = greedy_max_coverage(SIMPLE_SETS, 4, 4)
        assert len(set(result.seeds)) == 4

    def test_covers_everything_with_enough_seeds(self):
        result = greedy_max_coverage(SIMPLE_SETS, 4, 4)
        assert result.covered == len(SIMPLE_SETS)

    def test_marginal_gains_non_increasing(self):
        sets = [(0,), (0,), (0, 1), (1,), (2,), (2, 3)]
        result = greedy_max_coverage(sets, 4, 3)
        gains = list(result.marginal_gains)
        assert gains == sorted(gains, reverse=True)

    def test_fraction(self):
        result = greedy_max_coverage(SIMPLE_SETS, 4, 1)
        assert result.fraction == pytest.approx(2 / 5)

    def test_empty_rr_sets(self):
        result = greedy_max_coverage([], 4, 2)
        assert result.covered == 0
        assert len(result.seeds) == 2

    def test_rejects_k_above_n(self):
        with pytest.raises(ValueError):
            greedy_max_coverage(SIMPLE_SETS, 2, 3)


class TestLazyGreedy:
    def test_same_coverage_as_exact(self):
        for k in (1, 2, 3):
            exact = greedy_max_coverage(SIMPLE_SETS, 4, k)
            lazy = lazy_greedy_max_coverage(SIMPLE_SETS, 4, k)
            assert lazy.covered == exact.covered

    def test_randomised_instances_agree(self):
        import random

        rng = random.Random(99)
        for trial in range(20):
            num_nodes = rng.randint(4, 12)
            sets = [
                tuple(rng.sample(range(num_nodes), rng.randint(1, min(4, num_nodes))))
                for _ in range(rng.randint(1, 30))
            ]
            k = rng.randint(1, num_nodes)
            exact = greedy_max_coverage(sets, num_nodes, k)
            lazy = lazy_greedy_max_coverage(sets, num_nodes, k)
            assert exact.covered == lazy.covered, f"trial {trial}"

    def test_pads_with_arbitrary_nodes_when_needed(self):
        result = lazy_greedy_max_coverage([(0,)], 3, 3)
        assert len(result.seeds) == 3
        assert len(set(result.seeds)) == 3


class TestTieBreakAlignment:
    """Exact and lazy must return *identical seeds* even on ties."""

    def test_all_tied_singletons(self):
        sets = [(0,), (1,), (2,), (3,)]  # every node covers exactly one set
        for k in (1, 2, 4):
            exact = greedy_max_coverage(sets, 4, k)
            lazy = lazy_greedy_max_coverage(sets, 4, k)
            assert exact.seeds == lazy.seeds == list(range(k))

    def test_duplicated_sets_force_ties(self):
        sets = [(2, 3)] * 5 + [(0, 1)] * 5 + [(4,)] * 2
        for k in (1, 2, 3):
            exact = greedy_max_coverage(sets, 5, k)
            lazy = lazy_greedy_max_coverage(sets, 5, k)
            assert exact.seeds == lazy.seeds
        # Tied top gain (0,1) vs (2,3): smaller node id wins.
        assert greedy_max_coverage(sets, 5, 1).seeds == [0]

    def test_randomised_instances_identical_seeds(self):
        import random

        rng = random.Random(1234)
        for trial in range(40):
            num_nodes = rng.randint(4, 10)
            # Small universes + duplicated sets make ties frequent.
            pool = [
                tuple(rng.sample(range(num_nodes), rng.randint(1, 3)))
                for _ in range(rng.randint(1, 8))
            ]
            sets = [rng.choice(pool) for _ in range(rng.randint(2, 24))]
            k = rng.randint(1, num_nodes)
            exact = greedy_max_coverage(sets, num_nodes, k)
            lazy = lazy_greedy_max_coverage(sets, num_nodes, k)
            assert exact.seeds == lazy.seeds, f"trial {trial}: {sets}"
            assert exact.marginal_gains == lazy.marginal_gains

    def test_degenerate_fill_smallest_ids_first(self):
        # Only node 0 ever covers anything; the rest is zero-gain padding,
        # which both variants must fill with the smallest unchosen ids.
        exact = greedy_max_coverage([(0,)], 5, 4)
        lazy = lazy_greedy_max_coverage([(0,)], 5, 4)
        assert exact.seeds == lazy.seeds == [0, 1, 2, 3]


class TestNumpyPythonParity:
    """The vectorised exact greedy must match the pure-Python original."""

    def test_simple_sets(self):
        for k in (1, 2, 4):
            vec = greedy_max_coverage(SIMPLE_SETS, 4, k)
            ref = greedy_max_coverage_python(SIMPLE_SETS, 4, k)
            assert vec.seeds == ref.seeds
            assert vec.covered == ref.covered
            assert vec.marginal_gains == ref.marginal_gains

    def test_randomised_instances(self):
        import random

        rng = random.Random(77)
        for trial in range(30):
            num_nodes = rng.randint(3, 15)
            sets = [
                tuple(rng.sample(range(num_nodes), rng.randint(1, min(5, num_nodes))))
                for _ in range(rng.randint(1, 40))
            ]
            k = rng.randint(1, num_nodes)
            vec = greedy_max_coverage(sets, num_nodes, k)
            ref = greedy_max_coverage_python(sets, num_nodes, k)
            assert vec.seeds == ref.seeds, f"trial {trial}"
            assert vec.covered == ref.covered
            assert vec.marginal_gains == ref.marginal_gains

    def test_flat_collection_input(self):
        from repro.rrset import FlatRRCollection, RRSet

        flat = FlatRRCollection(4, 10)
        for i, rr in enumerate(SIMPLE_SETS):
            flat.append(RRSet(root=rr[0], nodes=rr, width=i, cost=len(rr) + i))
        for solver in (greedy_max_coverage, lazy_greedy_max_coverage):
            from_flat = solver(flat, 4, 2)
            from_tuples = solver(SIMPLE_SETS, 4, 2)
            assert from_flat.seeds == from_tuples.seeds
            assert from_flat.covered == from_tuples.covered


class TestApproximationGuarantee:
    def test_greedy_within_1_minus_1_over_e_of_optimum(self):
        import random

        rng = random.Random(7)
        for trial in range(15):
            num_nodes = rng.randint(4, 9)
            sets = [
                tuple(rng.sample(range(num_nodes), rng.randint(1, 3)))
                for _ in range(rng.randint(3, 20))
            ]
            k = rng.randint(1, 3)
            greedy = greedy_max_coverage(sets, num_nodes, k)
            optimal = brute_force_max_coverage(sets, num_nodes, k)
            assert greedy.covered >= (1 - 1 / 2.7182818284) * optimal.covered - 1e-9


class TestBruteForce:
    def test_finds_true_optimum(self):
        # node 0 covers sets {0, 2}; node 1 covers {1, 2}; nodes 2/3 cover {3}.
        # Every pair covers exactly 3 of the 4 sets; brute force must find 3.
        sets = [(0,), (1,), (0, 1), (2, 3)]
        result = brute_force_max_coverage(sets, 4, 2)
        assert result.covered == 3

    def test_beats_or_ties_greedy_everywhere(self):
        import random

        rng = random.Random(3)
        for _ in range(10):
            num_nodes = rng.randint(3, 7)
            sets = [
                tuple(rng.sample(range(num_nodes), rng.randint(1, 3)))
                for _ in range(rng.randint(2, 12))
            ]
            k = rng.randint(1, 2)
            greedy = greedy_max_coverage(sets, num_nodes, k)
            optimal = brute_force_max_coverage(sets, num_nodes, k)
            assert optimal.covered >= greedy.covered

    def test_optimum_small_instance(self):
        sets = [(0,), (1,), (2,)]
        result = brute_force_max_coverage(sets, 3, 2)
        assert result.covered == 2
        assert result.seeds == [0, 1]
