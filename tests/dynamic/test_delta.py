"""Graph delta primitives: CSR re-materialization and edge-id remapping."""

import numpy as np
import pytest

from repro.graphs import (
    DiGraph,
    delete_edge,
    gnm_random_digraph,
    insert_edge,
    locate_edge,
    reweight_edge,
    weighted_cascade,
)


@pytest.fixture
def graph():
    return weighted_cascade(gnm_random_digraph(30, 120, rng=5))


def edge_identity(graph):
    """in-CSR id -> (source, destination) pairs for the whole graph."""
    dst_of = np.searchsorted(graph.in_ptr, np.arange(graph.m), side="right") - 1
    return list(zip(graph.in_idx.tolist(), dst_of.tolist()))


class TestInsert:
    def test_appends_edge(self, graph):
        delta = insert_edge(graph, 3, 7, 0.25)
        new = delta.new_graph
        assert new.m == graph.m + 1
        assert new.has_edge(3, 7)
        assert new.edge_probability(3, 7) == pytest.approx(0.25)
        assert graph.m == 120  # original untouched
        assert delta.new_fingerprint == new.fingerprint()
        assert delta.old_fingerprint == graph.fingerprint()
        assert delta.new_fingerprint != delta.old_fingerprint

    def test_new_edge_lands_last_in_slice(self, graph):
        delta = insert_edge(graph, 3, 7, 0.25)
        new = delta.new_graph
        # in_pos is the new edge's id in the NEW graph, at the end of 7's slice.
        assert delta.in_pos == int(graph.in_ptr[8])
        assert int(new.in_idx[delta.in_pos]) == 3
        assert float(new.in_prob[delta.in_pos]) == pytest.approx(0.25)

    def test_remap_preserves_edge_identity(self, graph):
        delta = insert_edge(graph, 3, 7, 0.25)
        old_ids = np.arange(graph.m)
        new_ids = delta.remap_edge_ids(old_ids)
        old_identity = edge_identity(graph)
        new_identity = edge_identity(delta.new_graph)
        for old, new in zip(old_ids.tolist(), new_ids.tolist()):
            assert old_identity[old] == new_identity[new]

    def test_rejects_bad_probability(self, graph):
        with pytest.raises(ValueError):
            insert_edge(graph, 0, 1, 1.5)

    def test_rejects_bad_node(self, graph):
        with pytest.raises(ValueError):
            insert_edge(graph, 0, graph.n, 0.5)


class TestDelete:
    def test_removes_edge(self, graph):
        u, v = int(graph.src[17]), int(graph.dst[17])
        delta = delete_edge(graph, u, v)
        assert delta.new_graph.m == graph.m - 1
        assert delta.old_prob == pytest.approx(graph.edge_probability(u, v))
        assert delta.new_fingerprint != delta.old_fingerprint

    def test_missing_edge_raises(self, graph):
        missing = next(
            (u, v)
            for u in range(graph.n)
            for v in range(graph.n)
            if u != v and not graph.has_edge(u, v)
        )
        with pytest.raises(KeyError):
            delete_edge(graph, *missing)

    def test_remap_preserves_edge_identity(self, graph):
        u, v = int(graph.src[17]), int(graph.dst[17])
        delta = delete_edge(graph, u, v)
        surviving = np.setdiff1d(np.arange(graph.m), [delta.in_pos])
        new_ids = delta.remap_edge_ids(surviving)
        old_identity = edge_identity(graph)
        new_identity = edge_identity(delta.new_graph)
        for old, new in zip(surviving.tolist(), new_ids.tolist()):
            assert old_identity[old] == new_identity[new]

    def test_parallel_edges_delete_first_match(self):
        # DiGraph permits parallel edges (GraphBuilder deduplicates).
        g = DiGraph(3, np.array([0, 1, 0]), np.array([2, 2, 2]),
                    np.array([0.1, 0.2, 0.3]))
        delta = delete_edge(g, 0, 2)
        assert delta.old_prob == pytest.approx(0.1)
        assert delta.new_graph.edge_probability(0, 2) == pytest.approx(0.3)


class TestReweight:
    def test_replaces_probability(self, graph):
        u, v = int(graph.src[3]), int(graph.dst[3])
        delta = reweight_edge(graph, u, v, 0.9)
        assert delta.new_graph.edge_probability(u, v) == pytest.approx(0.9)
        assert delta.new_graph.m == graph.m
        assert delta.new_fingerprint != delta.old_fingerprint

    def test_remap_is_identity(self, graph):
        u, v = int(graph.src[3]), int(graph.dst[3])
        delta = reweight_edge(graph, u, v, 0.9)
        ids = np.arange(graph.m)
        assert np.array_equal(delta.remap_edge_ids(ids), ids)

    def test_same_probability_still_changes_fingerprint_only_if_bits_differ(self, graph):
        u, v = int(graph.src[3]), int(graph.dst[3])
        p = graph.edge_probability(u, v)
        delta = reweight_edge(graph, u, v, p)
        assert delta.new_fingerprint == delta.old_fingerprint


class TestLocate:
    def test_locate_agrees_with_csr(self, graph):
        for j in (0, 10, 50):
            u, v = int(graph.src[j]), int(graph.dst[j])
            edge_index, in_pos = locate_edge(graph, u, v)
            assert int(graph.in_idx[in_pos]) == u
            assert int(graph.src[edge_index]) == u
            assert int(graph.dst[edge_index]) == v
            assert graph.in_ptr[v] <= in_pos < graph.in_ptr[v + 1]

    def test_locate_missing_raises(self):
        g = DiGraph(3, np.array([0]), np.array([1]), np.array([0.5]))
        with pytest.raises(KeyError):
            locate_edge(g, 1, 0)
