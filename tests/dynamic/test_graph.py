"""DynamicDiGraph overlay: versioning, lineage, update parsing."""

import pytest

from repro.dynamic import DynamicDiGraph, EdgeUpdate, parse_update
from repro.graphs import gnm_random_digraph, weighted_cascade


@pytest.fixture
def dyn():
    return DynamicDiGraph(weighted_cascade(gnm_random_digraph(25, 100, rng=9)))


class TestVersioning:
    def test_initial_state(self, dyn):
        assert dyn.version == 0
        assert dyn.lineage == [(0, dyn.fingerprint())]
        assert dyn.n == 25 and dyn.m == 100

    def test_mutations_bump_version_and_lineage(self, dyn):
        fp0 = dyn.fingerprint()
        d1 = dyn.insert_edge(0, 5, 0.4)
        assert dyn.version == 1
        assert dyn.m == 101
        d2 = dyn.delete_edge(0, 5)
        assert dyn.version == 2
        assert dyn.m == 100
        assert [v for v, _ in dyn.lineage] == [0, 1, 2]
        assert dyn.lineage[0][1] == fp0
        assert dyn.lineage[1][1] == d1.new_fingerprint
        assert dyn.lineage[2][1] == d2.new_fingerprint
        # Deltas chain: each old side is the previous new side.
        assert d2.old_fingerprint == d1.new_fingerprint

    def test_snapshot_is_immutable_digraph(self, dyn):
        before = dyn.graph
        dyn.insert_edge(1, 2, 0.3)
        assert before.m == 100  # the old snapshot is untouched
        assert dyn.graph is not before

    def test_preview_does_not_commit(self, dyn):
        delta = dyn.preview(EdgeUpdate("insert", 3, 4, 0.2))
        assert dyn.version == 0 and dyn.m == 100
        dyn.commit(delta)
        assert dyn.version == 1 and dyn.m == 101
        # A delta that does not chain off the current snapshot is refused.
        with pytest.raises(ValueError, match="does not chain"):
            dyn.commit(delta)

    def test_apply_dispatches_all_actions(self, dyn):
        d = dyn.apply(EdgeUpdate("insert", 3, 4, 0.2))
        assert d.op == "insert"
        d = dyn.apply(EdgeUpdate("reweight", 3, 4, 0.1))
        assert d.op == "reweight" and d.new_prob == pytest.approx(0.1)
        d = dyn.apply(EdgeUpdate("delete", 3, 4))
        assert d.op == "delete"
        assert dyn.version == 3


class TestEdgeUpdateValidation:
    def test_unknown_action(self):
        with pytest.raises(ValueError, match="unknown update action"):
            EdgeUpdate("toggle", 0, 1, 0.5)

    def test_insert_needs_probability(self):
        with pytest.raises(ValueError, match="needs a probability"):
            EdgeUpdate("insert", 0, 1)

    def test_delete_takes_no_probability(self):
        with pytest.raises(ValueError, match="no probability"):
            EdgeUpdate("delete", 0, 1, 0.5)

    def test_probability_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            EdgeUpdate("reweight", 0, 1, -0.1)

    def test_boolean_endpoints_rejected(self):
        # JSON true parses to Python True, which is an int subclass and
        # would silently address node 1.
        with pytest.raises(ValueError, match="must be integers"):
            EdgeUpdate("delete", True, 0)
        with pytest.raises(ValueError, match="integer 'u' and 'v'"):
            parse_update({"action": "delete", "u": 1, "v": False})


class TestParseUpdate:
    def test_roundtrip(self):
        update = EdgeUpdate("insert", 3, 7, 0.25)
        assert parse_update(update.as_dict()) == update

    def test_accepts_service_envelope(self):
        update = parse_update({"op": "update", "action": "delete", "u": 1, "v": 2})
        assert update == EdgeUpdate("delete", 1, 2)

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="integer 'u' and 'v'"):
            parse_update({"action": "insert", "u": 1, "p": 0.5})

    def test_rejects_non_numeric_probability(self):
        with pytest.raises(ValueError, match="must be a number"):
            parse_update({"action": "insert", "u": 1, "v": 2, "p": "high"})
