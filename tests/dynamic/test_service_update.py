"""Service-level dynamic updates: versioned cache keys, JSONL op, CLI."""

import json

import pytest

from repro.cli import main
from repro.dynamic import DynamicDiGraph
from repro.graphs import gnm_random_digraph, save_edge_list, weighted_cascade
from repro.sketch import InfluenceService

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")  # this module deliberately exercises the deprecated legacy surface



@pytest.fixture
def wc_graph():
    return weighted_cascade(gnm_random_digraph(80, 320, rng=13))


@pytest.fixture
def service():
    return InfluenceService(max_indexes=3, theta=400, trace_edges=True, rng=17)


class TestServiceApplyUpdate:
    def test_update_rekeys_cached_index(self, service, wc_graph):
        dynamic = DynamicDiGraph(wc_graph)
        service.query(dynamic, {"op": "select", "k": 3})
        old_key = service.cached_keys()[0]
        result = service.apply_update(
            dynamic, {"action": "delete", "u": int(wc_graph.src[0]), "v": int(wc_graph.dst[0])}
        )
        assert result["version"] == 1
        assert len(result["repaired_indexes"]) == 1
        # The stale key vacated the cache in the same step.
        assert old_key not in service.cached_keys()
        assert service.cached_keys() == [(dynamic.fingerprint(), "IC")]
        # Next query hits the repaired index warm — no rebuild.
        response = service.query(dynamic, {"op": "select", "k": 3})
        assert response["cache"] == "hit"
        assert service.stats.builds == 1
        assert service.stats.repairs == 1
        assert service.stats.sets_resampled == result["repaired_indexes"][0]["num_affected"]

    def test_update_without_cached_index_is_cheap(self, service, wc_graph):
        dynamic = DynamicDiGraph(wc_graph)
        result = service.apply_update(dynamic, {"action": "insert", "u": 1, "v": 2, "p": 0.3})
        assert result["repaired_indexes"] == []
        assert service.stats.repairs == 0
        # The next query cold-builds against the updated snapshot.
        response = service.query(dynamic, {"op": "select", "k": 2})
        assert response["cache"] == "miss"

    def test_update_requires_dynamic_graph(self, service, wc_graph):
        response = service.query(
            wc_graph, {"op": "update", "action": "delete", "u": 0, "v": 1}
        )
        assert response["ok"] is False
        assert "DynamicDiGraph" in response["error"]["message"]
        assert service.stats.errors == 1

    def test_run_batch_mixes_queries_and_updates(self, service, wc_graph):
        dynamic = DynamicDiGraph(wc_graph)
        u, v = int(wc_graph.src[4]), int(wc_graph.dst[4])
        lines = [
            json.dumps({"op": "select", "k": 2}),
            json.dumps({"op": "update", "action": "delete", "u": u, "v": v}),
            json.dumps({"op": "select", "k": 2}),
            json.dumps({"op": "stats"}),
        ]
        responses = service.run_batch(dynamic, lines)
        assert [r["ok"] for r in responses] == [True] * 4
        assert responses[1]["result"]["version"] == 1
        assert responses[2]["cache"] == "hit"
        assert responses[3]["result"]["repairs"] == 1

    def test_bad_update_is_an_error_response_not_a_crash(self, service, wc_graph):
        dynamic = DynamicDiGraph(wc_graph)
        response = service.query(
            dynamic, {"op": "update", "action": "delete", "u": 0, "v": 0}
        )
        assert response["ok"] is False  # no self-loop 0->0 in the graph
        # The graph was not mutated by the failed update.
        assert dynamic.version == 0

    def test_rejected_update_leaves_cache_and_graph_untouched(self):
        """A post-update snapshot that is invalid for a cached model must
        not mutate anything: the graph stays at its version, the index
        stays cached under its key, and no pool is dropped unclosed."""
        import numpy as np

        from repro.graphs import gnm_random_digraph, uniform_random_lt

        graph = uniform_random_lt(gnm_random_digraph(40, 160, rng=7), rng=1)
        service = InfluenceService(max_indexes=2, theta=300, trace_edges=True, rng=17)
        dynamic = DynamicDiGraph(graph)
        service.query(dynamic, {"op": "select", "k": 2, "model": "LT"})
        cached_before = service.cached_keys()
        index_before = next(iter(service._indexes.values()))
        # Push a node's in-weight sum over 1: invalid for the cached LT index.
        heavy = int(np.argmax(np.bincount(graph.dst.astype(int),
                                          weights=graph.prob, minlength=graph.n)))
        response = service.query(dynamic, {
            "op": "update", "action": "insert",
            "u": (heavy + 1) % graph.n, "v": heavy, "p": 1.0,
        })
        assert response["ok"] is False
        assert "LT weights invalid" in response["error"]["message"]
        assert dynamic.version == 0
        assert service.cached_keys() == cached_before
        assert next(iter(service._indexes.values())) is index_before
        # The untouched index still answers warm.
        assert service.query(dynamic, {"op": "select", "k": 2, "model": "LT"})["cache"] == "hit"

    def test_update_rejects_boolean_endpoints(self, service, wc_graph):
        dynamic = DynamicDiGraph(wc_graph)
        response = service.query(
            dynamic, {"op": "update", "action": "delete", "u": True, "v": 0}
        )
        assert response["ok"] is False
        assert "integer" in response["error"]["message"]
        assert dynamic.version == 0


class TestUpdateCli:
    def test_update_subcommand_roundtrip(self, tmp_path, capsys):
        graph = weighted_cascade(gnm_random_digraph(60, 240, rng=3))
        edge_path = tmp_path / "graph.edges"
        save_edge_list(graph, edge_path)
        sketch_path = tmp_path / "sketch.npz"
        assert main([
            "sketch", "--dataset", f"@{edge_path}", "--model", "IC",
            "--theta", "500", "--seed", "4", "--trace-edges",
            "--out", str(sketch_path),
        ]) == 0
        updates_path = tmp_path / "updates.jsonl"
        # The CLI reloads @edge files with compacted labels, so pick the
        # edge to touch off the graph as the CLI will see it.
        from repro.graphs import load_edge_list

        reloaded, _ = load_edge_list(edge_path)
        u, v = int(reloaded.src[2]), int(reloaded.dst[2])
        updates_path.write_text(
            json.dumps({"action": "delete", "u": u, "v": v}) + "\n"
            + "# comment lines are skipped\n"
            + json.dumps({"action": "insert", "u": u, "v": v, "p": 0.2}) + "\n"
        )
        out_path = tmp_path / "repaired.npz"
        graph_out = tmp_path / "updated.edges"
        assert main([
            "update", "--dataset", f"@{edge_path}", "--model", "IC",
            "--sketch", str(sketch_path), "--updates", str(updates_path),
            "--out", str(out_path), "--save-graph", str(graph_out), "--seed", "4",
        ]) == 0
        captured = capsys.readouterr().out
        assert "resampled" in captured
        assert out_path.exists() and graph_out.exists()
        from repro.sketch import SketchIndex

        loaded = SketchIndex.load(out_path)
        assert loaded.num_sets == 500
        assert loaded.collection.has_traces
        assert loaded.meta["dynamic_updates"] == 2

    def test_update_subcommand_rejects_bad_line(self, tmp_path):
        graph = weighted_cascade(gnm_random_digraph(20, 60, rng=3))
        edge_path = tmp_path / "graph.edges"
        save_edge_list(graph, edge_path)
        sketch_path = tmp_path / "sketch.npz"
        main([
            "sketch", "--dataset", f"@{edge_path}", "--model", "IC",
            "--theta", "100", "--seed", "4", "--trace-edges",
            "--out", str(sketch_path),
        ])
        updates_path = tmp_path / "updates.jsonl"
        updates_path.write_text('{"action": "explode"}\n')
        with pytest.raises(SystemExit, match="updates.jsonl:1"):
            main([
                "update", "--dataset", f"@{edge_path}", "--model", "IC",
                "--sketch", str(sketch_path), "--updates", str(updates_path),
                "--out", str(tmp_path / "r.npz"),
            ])
