"""Incremental sketch repair: invalidation rules, splicing, determinism."""

import numpy as np
import pytest

from repro.dynamic import DynamicDiGraph, affected_set_ids, repair_collection
from repro.graphs import (
    GraphBuilder,
    delete_edge,
    gnm_random_digraph,
    insert_edge,
    reweight_edge,
    uniform_random_lt,
    weighted_cascade,
)
from repro.parallel import ParallelSampler
from repro.rrset import make_rr_sampler
from repro.rrset.ic_sampler import ICRRSampler
from repro.sketch import SketchIndex
from repro.utils.rng import RandomSource


def wc_graph(n=120, m=600, rng=11):
    return weighted_cascade(gnm_random_digraph(n, m, rng=rng))


def traced_collection(graph, model="IC", theta=800, seed=42):
    sampler = make_rr_sampler(graph, model, trace_edges=True)
    return sampler.sample_random_batch(theta, RandomSource(seed)), sampler


def assert_widths_consistent(collection, graph):
    """w(R) must equal the sum of members' in-degrees on ``graph``."""
    indeg = np.diff(graph.in_ptr)
    ptr, nodes = collection.ptr_array, collection.nodes_array
    sizes = np.diff(ptr)
    expected = np.where(sizes > 0, np.add.reduceat(indeg[nodes], ptr[:-1]), 0)
    assert np.array_equal(expected, collection.widths_array)


def assert_traces_consistent(collection, graph):
    """Every trace edge must point between members of its set."""
    te, tp = collection.trace_edges_array, collection.trace_ptr_array
    ptr, nodes = collection.ptr_array, collection.nodes_array
    dst_of = np.searchsorted(graph.in_ptr, te, side="right") - 1
    for i in range(len(collection)):
        members = set(nodes[ptr[i] : ptr[i + 1]].tolist())
        for j in range(int(tp[i]), int(tp[i + 1])):
            assert int(dst_of[j]) in members
            assert int(graph.in_idx[te[j]]) in members


def assert_kept_sets_identical(old, new, affected):
    kept = np.setdiff1d(np.arange(len(old)), affected)
    op, on = old.ptr_array, old.nodes_array
    np_, nn = new.ptr_array, new.nodes_array
    for i in kept.tolist():
        assert np.array_equal(on[op[i] : op[i + 1]], nn[np_[i] : np_[i + 1]])
        assert old.roots_array[i] == new.roots_array[i]


class TestInvalidationRulesIC:
    def test_delete_invalidates_exactly_live_edge_sets(self):
        g = wc_graph()
        coll, _ = traced_collection(g)
        u, v = int(g.src[7]), int(g.dst[7])
        delta = delete_edge(g, u, v)
        affected = affected_set_ids(coll, delta, "IC")
        # Exactly the sets whose trace holds the deleted edge's old id.
        for i in range(len(coll)):
            has_edge = delta.in_pos in coll.trace_of(i).tolist()
            assert (i in affected) == has_edge

    def test_insert_invalidates_member_sets(self):
        g = wc_graph()
        coll, _ = traced_collection(g)
        delta = insert_edge(g, 3, 9, 0.4)
        affected = set(affected_set_ids(coll, delta, "IC").tolist())
        ptr, nodes = coll.ptr_array, coll.nodes_array
        for i in range(len(coll)):
            assert (i in affected) == (9 in nodes[ptr[i] : ptr[i + 1]].tolist())

    def test_reweight_up_spares_sets_with_live_edge(self):
        g = wc_graph()
        coll, _ = traced_collection(g)
        u, v = int(g.src[7]), int(g.dst[7])
        delta = reweight_edge(g, u, v, min(1.0, g.edge_probability(u, v) * 2))
        affected = set(affected_set_ids(coll, delta, "IC").tolist())
        ptr, nodes = coll.ptr_array, coll.nodes_array
        for i in range(len(coll)):
            member = v in nodes[ptr[i] : ptr[i + 1]].tolist()
            live = delta.in_pos in coll.trace_of(i).tolist()
            assert (i in affected) == (member and not live)

    def test_noop_reweight_invalidates_nothing(self):
        g = wc_graph()
        coll, _ = traced_collection(g)
        u, v = int(g.src[7]), int(g.dst[7])
        delta = reweight_edge(g, u, v, g.edge_probability(u, v))
        assert affected_set_ids(coll, delta, "IC").size == 0

    def test_untraced_fallback_is_membership(self):
        g = wc_graph()
        sampler = make_rr_sampler(g, "IC")
        coll = sampler.sample_random_batch(500, RandomSource(1))
        u, v = int(g.src[7]), int(g.dst[7])
        delta = delete_edge(g, u, v)
        affected = set(affected_set_ids(coll, delta, "IC").tolist())
        ptr, nodes = coll.ptr_array, coll.nodes_array
        for i in range(len(coll)):
            assert (i in affected) == (v in nodes[ptr[i] : ptr[i + 1]].tolist())


class TestInvalidationRulesLT:
    def test_delete_spares_picks_before_the_edge(self):
        g = uniform_random_lt(gnm_random_digraph(80, 400, rng=3), rng=8)
        coll, _ = traced_collection(g, model="LT", theta=600, seed=5)
        u, v = int(g.src[11]), int(g.dst[11])
        delta = delete_edge(g, u, v)
        affected = set(affected_set_ids(coll, delta, "LT").tolist())
        for i in range(len(coll)):
            trace = coll.trace_of(i)
            in_range = np.any((trace >= delta.in_pos) & (trace < delta.slice_hi))
            assert (i in affected) == bool(in_range)

    def test_insert_invalidates_only_stop_draws(self):
        g = uniform_random_lt(gnm_random_digraph(80, 400, rng=3), rng=8)
        coll, _ = traced_collection(g, model="LT", theta=600, seed=5)
        # Find a destination with in-weight slack.
        insum = np.zeros(g.n)
        np.add.at(insum, g.dst, g.prob)
        v = int(np.argmin(insum))
        delta = insert_edge(g, (v + 3) % g.n, v, 0.02)
        affected = set(affected_set_ids(coll, delta, "LT").tolist())
        ptr, nodes = coll.ptr_array, coll.nodes_array
        for i in range(len(coll)):
            member = v in nodes[ptr[i] : ptr[i + 1]].tolist()
            trace = coll.trace_of(i)
            picked = np.any((trace >= delta.slice_lo) & (trace < delta.slice_hi))
            assert (i in affected) == (member and not picked)


class TestRepair:
    @pytest.mark.parametrize("model", ["IC", "LT"])
    def test_repair_keeps_unaffected_sets_and_fixes_widths(self, model):
        if model == "IC":
            g = wc_graph()
        else:
            g = uniform_random_lt(gnm_random_digraph(120, 600, rng=11), rng=2)
        coll, _ = traced_collection(g, model=model, theta=700, seed=9)
        u, v = int(g.src[5]), int(g.dst[5])
        delta = delete_edge(g, u, v)
        sampler = make_rr_sampler(delta.new_graph, model, trace_edges=True)
        repaired, report = repair_collection(coll, delta, sampler, rng=3)
        assert len(repaired) == len(coll)
        assert report.num_affected == affected_set_ids(coll, delta, model).size
        assert np.array_equal(repaired.roots_array, coll.roots_array)
        assert_kept_sets_identical(coll, repaired, affected_set_ids(coll, delta, model))
        assert_widths_consistent(repaired, delta.new_graph)
        assert_traces_consistent(repaired, delta.new_graph)
        assert repaired.graph_edges == delta.new_graph.m

    def test_repair_after_insert_patches_lt_widths(self):
        # uniform_random_lt normalises in-weights to sum 1; scale down to
        # leave slack for the inserted edge.
        base = uniform_random_lt(gnm_random_digraph(120, 600, rng=11), rng=2)
        g = base.with_probabilities(base.prob * 0.8)
        coll, _ = traced_collection(g, model="LT", theta=700, seed=9)
        insum = np.zeros(g.n)
        np.add.at(insum, g.dst, g.prob)
        # A node whose in-edges actually get picked (so kept member sets
        # exist) but with enough slack for the new weight.
        candidates = np.flatnonzero(insum <= 0.9)
        v = int(candidates[np.argmax(insum[candidates])])
        delta = insert_edge(g, (v + 5) % g.n, v, 0.02)
        sampler = make_rr_sampler(delta.new_graph, "LT", trace_edges=True)
        repaired, report = repair_collection(coll, delta, sampler, rng=3)
        assert_widths_consistent(repaired, delta.new_graph)
        # Kept member sets gained one in-edge of v; at least one such set
        # should exist at this theta.
        assert report.num_patched > 0

    def test_noop_reweight_returns_identical_collection(self):
        g = wc_graph()
        coll, _ = traced_collection(g)
        u, v = int(g.src[5]), int(g.dst[5])
        delta = reweight_edge(g, u, v, g.edge_probability(u, v))
        sampler = make_rr_sampler(delta.new_graph, "IC", trace_edges=True)
        repaired, report = repair_collection(coll, delta, sampler, rng=3)
        assert report.num_affected == 0
        assert np.array_equal(repaired.ptr_array, coll.ptr_array)
        assert np.array_equal(repaired.nodes_array, coll.nodes_array)
        assert np.array_equal(repaired.trace_edges_array, coll.trace_edges_array)

    def test_repair_bytes_are_worker_count_invariant(self):
        g = wc_graph(n=300, m=1800, rng=4)
        coll, _ = traced_collection(g, theta=3000, seed=2)
        u, v = int(g.src[9]), int(g.dst[9])
        delta = reweight_edge(g, u, v, min(1.0, g.edge_probability(u, v) * 3))
        results = []
        for jobs in (1, 2):
            sampler = ParallelSampler(
                ICRRSampler(delta.new_graph, trace_edges=True), jobs=jobs
            )
            repaired, _ = repair_collection(coll, delta, sampler, rng=77)
            sampler.close()
            results.append(repaired)
        a, b = results
        for name in ("ptr_array", "nodes_array", "roots_array", "widths_array",
                     "costs_array", "trace_ptr_array", "trace_edges_array"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_sampler_tracing_mismatch_rejected(self):
        g = wc_graph()
        coll, _ = traced_collection(g)
        u, v = int(g.src[5]), int(g.dst[5])
        delta = delete_edge(g, u, v)
        untraced = make_rr_sampler(delta.new_graph, "IC")
        with pytest.raises(ValueError, match="tracing must match"):
            repair_collection(coll, delta, untraced, rng=3)

    def test_sampler_graph_mismatch_rejected(self):
        g = wc_graph()
        coll, sampler = traced_collection(g)
        u, v = int(g.src[5]), int(g.dst[5])
        delta = delete_edge(g, u, v)
        # sampler is still bound to the OLD graph (m differs).
        with pytest.raises(ValueError, match="post-update graph"):
            repair_collection(coll, delta, sampler, rng=3)

    def test_stale_sampler_rejected_even_when_shapes_match(self):
        """A reweight keeps n and m, so the binding guard must compare
        content, not just shape."""
        g = wc_graph()
        coll, sampler = traced_collection(g)
        u, v = int(g.src[5]), int(g.dst[5])
        delta = reweight_edge(g, u, v, g.edge_probability(u, v) / 2)
        with pytest.raises(ValueError, match="post-update graph"):
            repair_collection(coll, delta, sampler, rng=3)

    @pytest.mark.parametrize("op", ["delete", "insert", "reweight-up", "reweight-down"])
    def test_repaired_distribution_matches_cold_sampling(self, op):
        """Per-node membership frequencies of a repaired collection agree
        with a cold new-graph sample within Monte-Carlo tolerance — for
        traced IC this is backed by the exact extension/shrink repair."""
        g = wc_graph(n=40, m=200, rng=21)
        theta = 6000
        coll, _ = traced_collection(g, theta=theta, seed=1)
        u, v = int(g.src[3]), int(g.dst[3])
        if op == "delete":
            delta = delete_edge(g, u, v)
        elif op == "insert":
            delta = insert_edge(g, (v + 9) % g.n, v, 0.5)
        elif op == "reweight-up":
            delta = reweight_edge(g, u, v, min(1.0, g.edge_probability(u, v) * 4))
        else:
            delta = reweight_edge(g, u, v, g.edge_probability(u, v) / 4)
        sampler = make_rr_sampler(delta.new_graph, "IC", trace_edges=True)
        repaired, report = repair_collection(coll, delta, sampler, rng=55)
        assert report.exact
        cold = sampler.sample_random_batch(theta, RandomSource(99))
        freq_repaired = repaired.node_frequency_array() / theta
        freq_cold = cold.node_frequency_array() / theta
        # 5-sigma binomial tolerance per node (p <= 0.5 bound on variance).
        tol = 5.0 * np.sqrt(0.25 / theta) * 2
        assert np.max(np.abs(freq_repaired - freq_cold)) < tol
        assert_widths_consistent(repaired, delta.new_graph)
        assert_traces_consistent(repaired, delta.new_graph)

    def test_exact_repair_candidates_vs_modified(self):
        """Extension candidates change only when their conditional coin
        fires; shrink candidates always change (they lose the dead edge)."""
        g = wc_graph(n=80, m=400, rng=3)
        coll, _ = traced_collection(g, theta=1000, seed=4)
        u, v = int(g.src[11]), int(g.dst[11])
        up = reweight_edge(g, u, v, min(1.0, g.edge_probability(u, v) * 3))
        sampler = make_rr_sampler(up.new_graph, "IC", trace_edges=True)
        repaired, report = repair_collection(coll, up, sampler, rng=5)
        assert report.exact
        assert report.num_affected <= report.num_candidates
        down = delete_edge(g, u, v)
        sampler = make_rr_sampler(down.new_graph, "IC", trace_edges=True)
        repaired, report = repair_collection(coll, down, sampler, rng=5)
        assert report.num_affected == report.num_candidates


class TestIndexApplyUpdate:
    def test_apply_update_moves_index_forward(self):
        g = wc_graph()
        dyn = DynamicDiGraph(g)
        index = SketchIndex.build(g, "IC", theta=600, rng=5, trace_edges=True)
        index.select(3)
        delta = dyn.delete_edge(int(g.src[5]), int(g.dst[5]))
        report = index.apply_update(delta, rng=7)
        assert report.num_sets == 600
        assert index.graph is dyn.graph
        assert index.meta["graph_fingerprint"] == dyn.fingerprint()
        assert index.meta["dynamic_updates"] == 1
        assert "kpt_cache" not in index.meta and "kpt_star_by_k" not in index.meta
        # Postings/selection state rebuilt against the repaired sketch.
        result = index.select(3)
        assert len(result.seeds) == 3
        assert index.num_sets == 600

    def test_apply_update_rejects_wrong_base_snapshot(self):
        g = wc_graph()
        other = wc_graph(rng=99)
        index = SketchIndex.build(g, "IC", theta=200, rng=5, trace_edges=True)
        delta = delete_edge(other, int(other.src[0]), int(other.dst[0]))
        with pytest.raises(ValueError, match="different graph snapshot"):
            index.apply_update(delta)

    def test_failed_update_leaves_index_intact(self):
        g = uniform_random_lt(gnm_random_digraph(40, 160, rng=7), rng=1)
        index = SketchIndex.build(g, "LT", theta=300, rng=5, trace_edges=True)
        fp = index.meta["graph_fingerprint"]
        # Breaking the sum(in-weights) <= 1 invariant must be rejected with
        # the index still bound to (and serving) the old snapshot.
        heavy = int(np.argmax(np.bincount(g.dst.astype(int), weights=g.prob, minlength=g.n)))
        delta = insert_edge(g, (heavy + 1) % g.n, heavy, 1.0)
        with pytest.raises(ValueError, match="LT weights invalid"):
            index.apply_update(delta)
        assert index.meta["graph_fingerprint"] == fp
        assert index.graph is g
        assert len(index.select(2).seeds) == 2

    def test_apply_update_on_mmap_loaded_sketch(self, tmp_path):
        g = wc_graph()
        index = SketchIndex.build(g, "IC", theta=400, rng=5, trace_edges=True)
        path = tmp_path / "sk.npz"
        index.save(path)
        loaded = SketchIndex.load(path, graph=g, mmap=True)
        assert loaded.collection.has_traces
        delta = delete_edge(g, int(g.src[5]), int(g.dst[5]))
        report = loaded.apply_update(delta, rng=7)
        assert report.num_sets == 400
        assert_widths_consistent(loaded.collection, delta.new_graph)

    def test_repair_on_handcrafted_graph_exact_for_kept_sets(self):
        """Deleting 0->1's only competitor leaves sets without the edge
        untouched — checked on a graph small enough to reason about."""
        builder = GraphBuilder(num_nodes=4)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(2, 1, 0.5)
        builder.add_edge(1, 3, 0.5)
        g = builder.build()
        coll, _ = traced_collection(g, theta=400, seed=3)
        delta = delete_edge(g, 0, 1)
        sampler = make_rr_sampler(delta.new_graph, "IC", trace_edges=True)
        repaired, report = repair_collection(coll, delta, sampler, rng=1)
        # Node 0 can now only appear in an RR set as its own root.
        ptr, nodes = repaired.ptr_array, repaired.nodes_array
        roots = repaired.roots_array
        for i in range(len(repaired)):
            members = nodes[ptr[i] : ptr[i + 1]].tolist()
            if 0 in members and roots[i] != 0:
                pytest.fail(f"set {i} reaches 0 through a deleted edge")
