"""Tests for the TIM / TIM+ drivers."""

import pytest

from repro.core import tim, tim_plus
from repro.diffusion import ICTriggering, LTTriggering, TriggeringModel
from repro.graphs import path_digraph, star_digraph


class TestResultContract:
    def test_seed_count(self, small_wc_graph):
        result = tim(small_wc_graph, 5, epsilon=0.5, rng=1)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_algorithm_labels(self, small_wc_graph):
        assert tim(small_wc_graph, 2, epsilon=0.5, rng=1).algorithm == "TIM"
        assert tim_plus(small_wc_graph, 2, epsilon=0.5, rng=1).algorithm == "TIM+"

    def test_phase_bookkeeping_tim(self, small_wc_graph):
        result = tim(small_wc_graph, 2, epsilon=0.5, rng=2)
        assert set(result.rr_sets_per_phase) == {"parameter_estimation", "node_selection"}
        assert set(result.phase_seconds) == {"parameter_estimation", "node_selection"}

    def test_phase_bookkeeping_tim_plus(self, small_wc_graph):
        result = tim_plus(small_wc_graph, 2, epsilon=0.5, rng=2)
        assert set(result.rr_sets_per_phase) == {
            "parameter_estimation",
            "refinement",
            "node_selection",
        }

    def test_theta_equals_lambda_over_kpt(self, small_wc_graph):
        import math

        result = tim_plus(small_wc_graph, 3, epsilon=0.5, rng=3)
        assert result.theta == max(1, math.ceil(result.lambda_value / result.kpt_plus))

    def test_node_selection_used_theta_sets(self, small_wc_graph):
        result = tim(small_wc_graph, 3, epsilon=0.5, rng=4)
        assert result.rr_sets_per_phase["node_selection"] == result.theta

    def test_kpt_plus_at_least_kpt_star(self, small_wc_graph):
        result = tim_plus(small_wc_graph, 3, epsilon=0.5, rng=5)
        assert result.kpt_plus >= result.kpt_star

    def test_tim_has_kpt_plus_equal_star(self, small_wc_graph):
        result = tim(small_wc_graph, 3, epsilon=0.5, rng=6)
        assert result.kpt_plus == result.kpt_star

    def test_ell_adjustment_direction(self, small_wc_graph):
        tim_result = tim(small_wc_graph, 2, epsilon=0.5, ell=1.0, rng=7)
        plus_result = tim_plus(small_wc_graph, 2, epsilon=0.5, ell=1.0, rng=7)
        assert plus_result.ell_adjusted > tim_result.ell_adjusted > 1.0

    def test_deterministic_given_seed(self, small_wc_graph):
        a = tim_plus(small_wc_graph, 4, epsilon=0.5, rng=8)
        b = tim_plus(small_wc_graph, 4, epsilon=0.5, rng=8)
        assert a.seeds == b.seeds
        assert a.theta == b.theta

    def test_memory_accounting_positive(self, small_wc_graph):
        result = tim_plus(small_wc_graph, 2, epsilon=0.5, rng=9)
        assert result.rr_collection_bytes > 0

    def test_runtime_recorded(self, small_wc_graph):
        result = tim_plus(small_wc_graph, 2, epsilon=0.5, rng=10)
        assert result.runtime_seconds > 0.0
        assert result.runtime_seconds == pytest.approx(sum(result.phase_seconds.values()))


class TestSolutionQuality:
    def test_figure1_example_k1(self, figure1_graph):
        # Example 1's conclusion: v4 (node 3) is the best single seed.
        result = tim_plus(figure1_graph, 1, epsilon=0.3, rng=11)
        assert result.seeds == [3]

    def test_star_hub(self):
        g = star_digraph(30, prob=1.0, outward=True)
        result = tim(g, 1, epsilon=0.5, rng=12)
        assert result.seeds == [0]

    def test_path_head(self):
        g = path_digraph(12, prob=1.0)
        result = tim_plus(g, 1, epsilon=0.5, rng=13)
        assert result.seeds == [0]

    def test_theta_cap_flags_result(self, small_wc_graph):
        with pytest.warns(RuntimeWarning, match="max_theta cap"):
            result = tim(small_wc_graph, 2, epsilon=0.5, rng=14, max_theta=10)
        assert result.theta == 10
        assert result.theta_capped is True
        assert result.extras["theta_capped"] is True

    def test_uncapped_run_neither_flags_nor_warns(self, small_wc_graph):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = tim_plus(small_wc_graph, 2, epsilon=0.5, rng=14)
        assert result.theta_capped is False
        assert result.extras["theta_capped"] is False

    def test_lazy_coverage_variant(self, small_wc_graph):
        result = tim_plus(small_wc_graph, 3, epsilon=0.5, rng=15, coverage="lazy")
        assert len(result.seeds) == 3


class TestModels:
    def test_lt_model(self, small_lt_graph):
        result = tim_plus(small_lt_graph, 3, epsilon=0.5, model="LT", rng=16)
        assert result.model == "LT"
        assert len(result.seeds) == 3

    def test_triggering_model_ic_instance(self, small_wc_graph):
        model = TriggeringModel(ICTriggering(small_wc_graph))
        result = tim_plus(small_wc_graph, 3, epsilon=0.5, model=model, rng=17)
        assert result.model == "triggering"
        assert len(result.seeds) == 3

    def test_triggering_model_lt_instance(self, small_lt_graph):
        model = TriggeringModel(LTTriggering(small_lt_graph))
        result = tim(small_lt_graph, 2, epsilon=0.5, model=model, rng=18)
        assert len(result.seeds) == 2

    def test_triggering_equivalent_to_ic_choice(self, small_wc_graph):
        # The generic triggering path should pick the same top seed as the
        # dedicated IC path (same distribution; seeds may differ past ties).
        ic = tim_plus(small_wc_graph, 1, epsilon=0.4, model="IC", rng=19)
        trig = tim_plus(
            small_wc_graph,
            1,
            epsilon=0.4,
            model=TriggeringModel(ICTriggering(small_wc_graph)),
            rng=19,
        )
        assert ic.seeds == trig.seeds


class TestValidation:
    def test_rejects_bad_epsilon(self, small_wc_graph):
        with pytest.raises(ValueError):
            tim(small_wc_graph, 2, epsilon=1.5)

    def test_rejects_bad_k(self, small_wc_graph):
        with pytest.raises(ValueError):
            tim(small_wc_graph, 0)

    def test_rejects_single_node_graph(self):
        from repro.graphs import DiGraph

        with pytest.raises(ValueError):
            tim(DiGraph(1, [], []), 1)

    def test_lt_weight_validation_enforced(self):
        from repro.graphs import DiGraph

        g = DiGraph(3, [0, 1], [2, 2], [0.9, 0.9])
        with pytest.raises(ValueError):
            tim(g, 1, model="LT")
