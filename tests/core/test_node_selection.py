"""Tests for Algorithm 1 (NodeSelection)."""

import pytest

from repro.core import node_selection
from repro.graphs import path_digraph, star_digraph
from repro.rrset import RRCollection, make_rr_sampler
from repro.utils.rng import RandomSource


class TestSelection:
    def test_star_hub_selected_first(self):
        g = star_digraph(20, prob=1.0, outward=True)
        sampler = make_rr_sampler(g, "IC")
        result = node_selection(g, 1, theta=200, sampler=sampler, rng=1)
        assert result.seeds == [0]

    def test_seed_count_and_distinctness(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = node_selection(small_wc_graph, 7, theta=500, sampler=sampler, rng=2)
        assert len(result.seeds) == 7
        assert len(set(result.seeds)) == 7

    def test_estimated_spread_formula(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = node_selection(small_wc_graph, 3, theta=400, sampler=sampler, rng=3)
        assert result.estimated_spread == pytest.approx(
            small_wc_graph.n * result.coverage_fraction
        )

    def test_theta_respected(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = node_selection(small_wc_graph, 3, theta=123, sampler=sampler, rng=4)
        assert result.num_rr_sets == 123
        assert len(result.collection) == 123

    def test_deterministic_given_seed(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        a = node_selection(small_wc_graph, 3, theta=300, sampler=sampler, rng=5)
        b = node_selection(small_wc_graph, 3, theta=300, sampler=sampler, rng=5)
        assert a.seeds == b.seeds

    def test_lazy_coverage_matches_exact_quality(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        exact = node_selection(small_wc_graph, 5, theta=400, sampler=sampler, rng=6)
        lazy = node_selection(
            small_wc_graph, 5, theta=400, sampler=sampler, rng=6, coverage="lazy"
        )
        assert lazy.coverage_fraction == pytest.approx(exact.coverage_fraction)

    def test_prefilled_collection_reused(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        collection = RRCollection(small_wc_graph.n, small_wc_graph.m)
        collection.extend(sampler.sample_many(50, RandomSource(7)))
        result = node_selection(
            small_wc_graph, 3, theta=50, sampler=sampler, rng=8, collection=collection
        )
        assert result.collection is collection
        assert result.num_rr_sets == 50  # nothing new sampled

    def test_prefilled_collection_topped_up(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        collection = RRCollection(small_wc_graph.n, small_wc_graph.m)
        collection.extend(sampler.sample_many(10, RandomSource(9)))
        result = node_selection(
            small_wc_graph, 3, theta=60, sampler=sampler, rng=10, collection=collection
        )
        assert result.num_rr_sets == 60


class TestQuality:
    def test_beats_worst_singleton_on_path(self):
        # On a p=1 path, node 0 covers every RR set; selection must find it.
        g = path_digraph(10, prob=1.0)
        sampler = make_rr_sampler(g, "IC")
        result = node_selection(g, 1, theta=300, sampler=sampler, rng=11)
        assert result.seeds == [0]
        assert result.coverage_fraction == 1.0


class TestValidation:
    def test_rejects_bad_theta(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        with pytest.raises(ValueError):
            node_selection(small_wc_graph, 3, theta=0, sampler=sampler)

    def test_rejects_bad_coverage_mode(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        with pytest.raises(ValueError, match="coverage"):
            node_selection(small_wc_graph, 3, theta=10, sampler=sampler, coverage="magic")
