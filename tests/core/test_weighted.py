"""Tests for node-weighted influence maximization."""

import numpy as np
import pytest

from repro.core import WeightedRootSampler, weighted_lambda, weighted_tim_plus
from repro.graphs import GraphBuilder, path_digraph, star_digraph
from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


class TestWeightedRootSampler:
    def test_roots_proportional_to_weights(self, small_wc_graph):
        weights = np.ones(small_wc_graph.n)
        weights[7] = 10.0
        sampler = WeightedRootSampler(make_rr_sampler(small_wc_graph, "IC"), weights)
        rng = RandomSource(1)
        roots = [sampler.sample(rng).root for _ in range(6000)]
        frequency = roots.count(7) / 6000
        expected = 10.0 / weights.sum()
        assert frequency == pytest.approx(expected, rel=0.15)

    def test_zero_weight_roots_never_drawn(self, small_wc_graph):
        weights = np.ones(small_wc_graph.n)
        weights[3] = 0.0
        sampler = WeightedRootSampler(make_rr_sampler(small_wc_graph, "IC"), weights)
        rng = RandomSource(2)
        assert all(sampler.sample(rng).root != 3 for _ in range(600))

    def test_rejects_negative_weights(self, small_wc_graph):
        weights = np.ones(small_wc_graph.n)
        weights[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            WeightedRootSampler(make_rr_sampler(small_wc_graph, "IC"), weights)

    def test_rejects_all_zero(self, small_wc_graph):
        with pytest.raises(ValueError):
            WeightedRootSampler(
                make_rr_sampler(small_wc_graph, "IC"), np.zeros(small_wc_graph.n)
            )

    def test_rejects_wrong_length(self, small_wc_graph):
        with pytest.raises(ValueError):
            WeightedRootSampler(make_rr_sampler(small_wc_graph, "IC"), np.ones(3))

    def test_weighted_estimator_unbiased(self):
        """W * F_R(S) estimates the weighted spread (weighted Corollary 1)."""
        g = path_digraph(4, prob=0.5)
        # Weight only the tail node: weighted spread of {0} =
        # w3 * P(0 activates 3) + w0 * 1 = 8 * 0.125 + 1.
        weights = np.array([1.0, 0.0, 0.0, 8.0])
        sampler = WeightedRootSampler(make_rr_sampler(g, "IC"), weights)
        rng = RandomSource(3)
        runs = 30000
        covered = 0
        for _ in range(runs):
            if 0 in sampler.sample(rng).nodes:
                covered += 1
        estimate = covered / runs * sampler.total_weight
        assert estimate == pytest.approx(8 * 0.125 + 1.0, abs=0.1)


class TestWeightedLambda:
    def test_reduces_to_plain_lambda_for_uniform_weights(self):
        from repro.core import lambda_param

        n, k, epsilon, ell = 100, 3, 0.5, 1.0
        assert weighted_lambda(n, float(n), k, epsilon, ell) == pytest.approx(
            lambda_param(n, k, epsilon, ell)
        )

    def test_scales_with_total_weight(self):
        assert weighted_lambda(100, 200.0, 3, 0.5, 1.0) == pytest.approx(
            2 * weighted_lambda(100, 100.0, 3, 0.5, 1.0)
        )


class TestWeightedTimPlus:
    def test_uniform_weights_match_unweighted_choice(self, small_wc_graph):
        from repro.core import tim_plus

        weighted = weighted_tim_plus(
            small_wc_graph, 1, np.ones(small_wc_graph.n), epsilon=0.5, rng=4
        )
        plain = tim_plus(small_wc_graph, 1, epsilon=0.5, rng=4)
        assert weighted.seeds == plain.seeds

    def test_weights_redirect_selection(self):
        # Two stars; hub 0 has more leaves, but hub 5's leaves carry all the
        # weight — the weighted objective must pick hub 5.
        builder = GraphBuilder(num_nodes=10)
        for leaf in (1, 2, 3, 4):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (6, 7, 8):
            builder.add_edge(5, leaf, 1.0)
        g = builder.build()
        weights = np.zeros(10)
        weights[[6, 7, 8]] = 5.0
        weights[5] = 1.0
        result = weighted_tim_plus(g, 1, weights, epsilon=0.5, rng=5)
        assert result.seeds == [5]

    def test_unweighted_choice_differs_here(self):
        builder = GraphBuilder(num_nodes=10)
        for leaf in (1, 2, 3, 4):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (6, 7, 8):
            builder.add_edge(5, leaf, 1.0)
        g = builder.build()
        from repro.core import tim_plus

        plain = tim_plus(g, 1, epsilon=0.5, rng=6)
        assert plain.seeds == [0]  # bigger star wins by node count

    def test_estimated_spread_in_weight_units(self):
        g = star_digraph(6, prob=1.0, outward=True)
        weights = np.full(6, 2.0)
        result = weighted_tim_plus(g, 1, weights, epsilon=0.5, rng=7)
        assert result.seeds == [0]
        # Hub activates all 6 nodes: weighted spread 12.
        assert result.estimated_spread == pytest.approx(12.0, rel=0.1)

    def test_weight_floor_applies(self, small_wc_graph):
        weights = np.ones(small_wc_graph.n)
        result = weighted_tim_plus(small_wc_graph, 5, weights, epsilon=0.5, rng=8)
        assert result.kpt_plus >= result.extras["weight_floor"]
        assert result.extras["weight_floor"] == pytest.approx(5.0)

    def test_theta_cap(self, small_wc_graph):
        with pytest.warns(RuntimeWarning, match="max_theta cap"):
            result = weighted_tim_plus(
                small_wc_graph, 2, np.ones(small_wc_graph.n), epsilon=0.5, rng=9,
                max_theta=11
            )
        assert result.theta == 11
        assert result.theta_capped is True
        assert result.extras["theta_capped"] is True

    def test_result_contract(self, small_wc_graph):
        result = weighted_tim_plus(
            small_wc_graph, 4, np.ones(small_wc_graph.n), epsilon=0.5, rng=10
        )
        assert result.algorithm == "WeightedTIM+"
        assert len(set(result.seeds)) == 4
        assert result.rr_collection_bytes > 0
