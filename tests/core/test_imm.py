"""Tests for the IMM martingale engine (Tang, Shi & Xiao 2015)."""

import math
import warnings

import pytest

from repro.api import ExecutionPolicy
from repro.algorithms import maximize_influence
from repro.core import (
    IMMResult,
    imm,
    imm_ensure,
    imm_epsilon_prime,
    imm_lambda_prime,
    imm_lambda_star,
    tim_plus,
)
from repro.core.parameters import adjusted_ell_tim
from repro.graphs import path_digraph, star_digraph
from repro.rrset import FlatRRCollection
from repro.sketch import SketchIndex


class TestResultContract:
    def test_seed_count_and_label(self, small_wc_graph):
        result = imm(small_wc_graph, 5, epsilon=0.5, rng=1)
        assert isinstance(result, IMMResult)
        assert result.algorithm == "IMM"
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_phase_bookkeeping(self, small_wc_graph):
        result = imm(small_wc_graph, 2, epsilon=0.5, rng=2)
        assert set(result.rr_sets_per_phase) == {"lb_search", "node_selection"}
        assert set(result.phase_seconds) == {"lb_search", "node_selection"}
        assert result.runtime_seconds == pytest.approx(
            sum(result.phase_seconds.values()))
        assert result.total_rr_sets == sum(result.rr_sets_per_phase.values())
        assert result.rr_collection_bytes > 0

    def test_martingale_parameters_match_closed_forms(self, small_wc_graph):
        n = small_wc_graph.n
        result = imm(small_wc_graph, 3, epsilon=0.5, ell=1.0, rng=3)
        assert result.epsilon_prime == pytest.approx(imm_epsilon_prime(0.5))
        assert result.ell_adjusted == pytest.approx(adjusted_ell_tim(1.0, n))
        assert result.lambda_prime == pytest.approx(
            imm_lambda_prime(n, 3, result.epsilon_prime, result.ell_adjusted))
        assert result.lambda_star == pytest.approx(
            imm_lambda_star(n, 3, 0.5, result.ell_adjusted))

    def test_theta_prices_lambda_star_over_lb(self, small_wc_graph):
        result = imm(small_wc_graph, 3, epsilon=0.5, rng=4)
        assert result.theta == max(
            1, math.ceil(result.lambda_star / result.opt_lower_bound))

    def test_lower_bound_is_certified(self, small_wc_graph):
        result = imm(small_wc_graph, 3, epsilon=0.5, rng=5)
        # LB is a lower bound on OPT, so at least 1 (a single seed reaches
        # itself) and at most n; the search must have run at least one round.
        assert 1.0 <= result.opt_lower_bound <= small_wc_graph.n
        assert result.lb_iterations >= 1
        assert result.lb_iterations <= max(1, math.ceil(math.log2(small_wc_graph.n)) - 1)

    def test_deterministic_given_seed(self, small_wc_graph):
        a = imm(small_wc_graph, 4, epsilon=0.5, rng=8)
        b = imm(small_wc_graph, 4, epsilon=0.5, rng=8)
        assert a.seeds == b.seeds
        assert a.theta == b.theta
        assert a.opt_lower_bound == b.opt_lower_bound
        assert a.estimated_spread == b.estimated_spread

    def test_epsilon_and_ell_default_from_policy(self, small_wc_graph):
        policy = ExecutionPolicy(epsilon=0.5, ell=1.0)
        defaulted = imm(small_wc_graph, 2, rng=9, policy=policy)
        explicit = imm(small_wc_graph, 2, epsilon=0.5, ell=1.0, rng=9)
        assert defaulted.seeds == explicit.seeds
        assert defaulted.theta == explicit.theta
        assert defaulted.epsilon == 0.5


class TestValidation:
    def test_rejects_bad_epsilon(self, small_wc_graph):
        with pytest.raises(ValueError):
            imm(small_wc_graph, 2, epsilon=0.0, rng=0)
        with pytest.raises(ValueError):
            imm(small_wc_graph, 2, epsilon=1.5, rng=0)

    def test_rejects_bad_k(self, small_wc_graph):
        with pytest.raises(ValueError):
            imm(small_wc_graph, 0, epsilon=0.5, rng=0)
        with pytest.raises(ValueError):
            imm(small_wc_graph, small_wc_graph.n + 1, epsilon=0.5, rng=0)

    def test_rejects_mismatched_adopted_index(self, small_wc_graph):
        index = SketchIndex.build(small_wc_graph, "IC", theta=50, rng=0)
        try:
            with pytest.raises(ValueError, match="model"):
                imm(small_wc_graph, 2, epsilon=0.5, model="LT", rng=0, index=index)
        finally:
            index.close()


class TestThetaCap:
    def test_cap_flags_result_and_warns(self, small_wc_graph):
        with pytest.warns(RuntimeWarning, match="max_theta cap"):
            result = imm(small_wc_graph, 2, epsilon=0.5, rng=14, max_theta=10)
        assert result.theta == 10
        assert result.theta_capped is True
        assert result.extras["theta_capped"] is True

    def test_uncapped_run_stays_silent(self, small_wc_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = imm(small_wc_graph, 2, epsilon=0.5, rng=14)
        assert result.theta_capped is False
        assert result.extras["theta_capped"] is False


class TestSeedQuality:
    def test_star_hub_first(self):
        g = star_digraph(10, prob=1.0)
        assert imm(g, 1, epsilon=0.5, rng=12).seeds == [0]

    def test_path_head(self):
        g = path_digraph(12, prob=1.0)
        assert imm(g, 1, epsilon=0.5, rng=13).seeds == [0]

    def test_distributional_equivalence_with_tim_plus(self, small_wc_graph):
        """IMM's seeds are as good as TIM+'s under an independent evaluator."""
        judge = SketchIndex.build(small_wc_graph, "IC", theta=20000, rng=999)
        try:
            imm_total = 0.0
            tim_total = 0.0
            for seed in range(8):
                imm_total += judge.spread(
                    imm(small_wc_graph, 3, epsilon=0.5, rng=seed).seeds)
                tim_total += judge.spread(
                    tim_plus(small_wc_graph, 3, epsilon=0.5, rng=seed).seeds)
        finally:
            judge.close()
        assert imm_total >= 0.95 * tim_total

    def test_fewer_rr_sets_than_tim_plus_at_equal_epsilon(self, small_wc_graph):
        imm_result = imm(small_wc_graph, 3, epsilon=0.5, rng=21)
        plus_result = tim_plus(small_wc_graph, 3, epsilon=0.5, rng=21)
        assert imm_result.total_rr_sets < sum(
            plus_result.rr_sets_per_phase.values())
        # Spread estimates agree despite the smaller sketch.
        assert imm_result.estimated_spread == pytest.approx(
            plus_result.estimated_spread, rel=0.25)


class TestModels:
    def test_lt_model(self, small_lt_graph):
        result = imm(small_lt_graph, 3, epsilon=0.5, model="LT", rng=16)
        assert result.model == "LT"
        assert len(result.seeds) == 3

    def test_ic_and_lt_price_theta_independently(self, small_wc_graph):
        ic = imm(small_wc_graph, 3, epsilon=0.5, rng=17)
        lt = imm(small_wc_graph, 3, epsilon=0.5, model="LT", rng=17)
        assert ic.model == "IC" and lt.model == "LT"
        assert len(lt.seeds) == 3


class TestParallelByteIdentity:
    def test_jobs_one_and_two_identical(self, small_wc_graph):
        one = imm(small_wc_graph, 4, epsilon=0.5, rng=30,
                  policy=ExecutionPolicy(jobs=1))
        two = imm(small_wc_graph, 4, epsilon=0.5, rng=30,
                  policy=ExecutionPolicy(jobs=2))
        assert one.seeds == two.seeds
        assert one.theta == two.theta
        assert one.opt_lower_bound == two.opt_lower_bound
        assert one.estimated_spread == two.estimated_spread
        assert one.rr_sets_per_phase == two.rr_sets_per_phase


class TestSketchReuse:
    def test_adopted_index_keeps_grown_sketch(self, small_wc_graph):
        index = SketchIndex.build(small_wc_graph, "IC", theta=100, rng=40)
        try:
            result = imm(small_wc_graph, 3, epsilon=0.5, rng=41, index=index)
            assert result.extras["sketch_sets_reused"] == 100
            assert index.num_sets >= result.theta
            assert index.meta["algorithm"] == "imm"
            assert index.meta["epsilon"] == 0.5
            assert index.meta["imm_lower_bound"] == result.opt_lower_bound
            # The grown sketch answers follow-up queries directly.
            assert index.select(3).seeds == result.seeds
        finally:
            index.close()

    def test_warm_index_samples_only_the_shortfall(self, small_wc_graph):
        cold = imm(small_wc_graph, 3, epsilon=0.5, rng=42)
        index = SketchIndex.build(small_wc_graph, "IC", theta=100, rng=42)
        try:
            warm = imm(small_wc_graph, 3, epsilon=0.5, rng=42, index=index)
        finally:
            index.close()
        assert warm.total_rr_sets <= cold.total_rr_sets
        assert warm.theta >= 1

    def test_imm_ensure_on_fresh_index(self, small_wc_graph):
        collection = FlatRRCollection(small_wc_graph.n, small_wc_graph.m)
        index = SketchIndex(collection, graph=small_wc_graph, model="IC")
        try:
            growth = imm_ensure(
                index, 3, 0.5, adjusted_ell_tim(1.0, small_wc_graph.n), rng=7)
            assert index.num_sets >= growth.theta
            assert len(growth.selection.seeds) == 3
            assert growth.rr_sets_per_phase["lb_search"] >= 1
        finally:
            index.close()


class TestRegistry:
    def test_maximize_influence_dispatch(self, small_wc_graph):
        via_registry = maximize_influence(
            small_wc_graph, 3, algorithm="imm", epsilon=0.5, rng=50)
        direct = imm(small_wc_graph, 3, epsilon=0.5, rng=50)
        assert via_registry.seeds == direct.seeds
        assert via_registry.algorithm == "IMM"


class TestBuildThroughIndex:
    def test_build_with_imm_derivation(self, small_wc_graph):
        index = SketchIndex.build(small_wc_graph, "IC", k=3, epsilon=0.5,
                                  algorithm="imm", rng=60)
        try:
            assert index.meta["algorithm"] == "imm"
            assert index.meta["epsilon"] == 0.5
            assert index.meta["k"] == 3
            assert len(index.select(3).seeds) == 3
        finally:
            index.close()

    def test_imm_derivation_is_smaller_than_tim(self, small_wc_graph):
        via_imm = SketchIndex.build(small_wc_graph, "IC", k=3, epsilon=0.5,
                                    algorithm="imm", rng=61)
        via_tim = SketchIndex.build(small_wc_graph, "IC", k=3, epsilon=0.5,
                                    algorithm="tim", rng=61)
        try:
            assert via_tim.meta["algorithm"] == "tim"
            assert via_imm.num_sets < via_tim.num_sets
        finally:
            via_imm.close()
            via_tim.close()

    def test_policy_algorithm_drives_build(self, small_wc_graph):
        policy = ExecutionPolicy(algorithm="imm")
        index = SketchIndex.build(small_wc_graph, "IC", k=3, epsilon=0.5,
                                  policy=policy, rng=62)
        try:
            assert index.meta["algorithm"] == "imm"
        finally:
            index.close()

    def test_build_rejects_unknown_algorithm(self, small_wc_graph):
        with pytest.raises(ValueError, match="algorithm"):
            SketchIndex.build(small_wc_graph, "IC", k=3, epsilon=0.5,
                              algorithm="greedy", rng=63)

    def test_imm_built_index_round_trips(self, small_wc_graph, tmp_path):
        path = tmp_path / "imm.npz"
        index = SketchIndex.build(small_wc_graph, "IC", k=3, epsilon=0.5,
                                  algorithm="imm", rng=64)
        try:
            seeds = index.select(3, incremental=False).seeds
            index.save(path)
        finally:
            index.close()
        reloaded = SketchIndex.load(path, graph=small_wc_graph)
        assert reloaded.meta["algorithm"] == "imm"
        assert reloaded.meta["epsilon"] == 0.5
        assert reloaded.select(3, incremental=False).seeds == seeds
