"""Tests for Algorithm 3 (RefineKPT)."""

import pytest

from repro.core import estimate_kpt, refine_kpt
from repro.core.parameters import epsilon_prime_default
from repro.rrset import make_rr_sampler


def run_refine(graph, k=5, kpt_scale=1.0, rng=1):
    sampler = make_rr_sampler(graph, "IC")
    estimation = estimate_kpt(graph, k, sampler, rng=rng)
    eps_prime = epsilon_prime_default(0.3, k, 1.0)
    return (
        estimation,
        refine_kpt(
            graph,
            k,
            estimation.kpt_star * kpt_scale,
            estimation.last_iteration_sets,
            sampler,
            epsilon_prime=eps_prime,
            rng=rng + 1,
        ),
    )


class TestRefinement:
    def test_kpt_plus_never_below_kpt_star(self, small_wc_graph):
        estimation, refined = run_refine(small_wc_graph)
        assert refined.kpt_plus >= estimation.kpt_star

    def test_kpt_plus_is_max_of_candidates(self, small_wc_graph):
        estimation, refined = run_refine(small_wc_graph)
        assert refined.kpt_plus == max(refined.kpt_prime, estimation.kpt_star)

    def test_kpt_plus_below_n(self, small_wc_graph):
        _, refined = run_refine(small_wc_graph)
        assert refined.kpt_plus <= small_wc_graph.n

    def test_interim_seeds_are_k_distinct_nodes(self, small_wc_graph):
        _, refined = run_refine(small_wc_graph, k=4)
        assert len(refined.interim_seeds) == 4
        assert len(set(refined.interim_seeds)) == 4

    def test_theta_prime_matches_formula(self, small_wc_graph):
        from repro.core.parameters import lambda_prime, theta_from_kpt

        sampler = make_rr_sampler(small_wc_graph, "IC")
        estimation = estimate_kpt(small_wc_graph, 5, sampler, rng=3)
        eps_prime = 0.4
        refined = refine_kpt(
            small_wc_graph,
            5,
            estimation.kpt_star,
            estimation.last_iteration_sets,
            sampler,
            epsilon_prime=eps_prime,
            rng=4,
        )
        expected = theta_from_kpt(
            lambda_prime(eps_prime, 1.0, small_wc_graph.n), estimation.kpt_star
        )
        assert refined.num_rr_sets == expected

    def test_deterministic(self, small_wc_graph):
        _, a = run_refine(small_wc_graph, rng=7)
        _, b = run_refine(small_wc_graph, rng=7)
        assert a.kpt_plus == b.kpt_plus

    def test_kpt_prime_deflated_by_epsilon_prime(self, small_wc_graph):
        # KPT' = f*n/(1+eps') <= n/(1+eps') strictly below n.
        _, refined = run_refine(small_wc_graph)
        assert refined.kpt_prime < small_wc_graph.n


class TestValidation:
    def test_rejects_empty_last_sets(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        with pytest.raises(ValueError, match="last-iteration"):
            refine_kpt(small_wc_graph, 2, 1.0, [], sampler, epsilon_prime=0.3)

    def test_rejects_kpt_below_one(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        estimation = estimate_kpt(small_wc_graph, 2, sampler, rng=1)
        with pytest.raises(ValueError, match="KPT"):
            refine_kpt(
                small_wc_graph,
                2,
                0.5,
                estimation.last_iteration_sets,
                sampler,
                epsilon_prime=0.3,
            )

    def test_rejects_bad_epsilon_prime(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        estimation = estimate_kpt(small_wc_graph, 2, sampler, rng=1)
        with pytest.raises(ValueError):
            refine_kpt(
                small_wc_graph,
                2,
                estimation.kpt_star,
                estimation.last_iteration_sets,
                sampler,
                epsilon_prime=0.0,
            )
