"""Tests for the TIM parameter calculus (Equations 4, 5, 9)."""

import math

import pytest

from repro.core.parameters import (
    adjusted_ell_tim,
    adjusted_ell_tim_plus,
    epsilon_prime_default,
    kpt_max_iterations,
    kpt_samples_per_iteration,
    lambda_param,
    lambda_prime,
    log_binomial,
    theta_from_kpt,
)


class TestLogBinomial:
    def test_exact_small_values(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 3) == pytest.approx(math.log(120))

    def test_edge_cases(self):
        assert log_binomial(7, 0) == 0.0
        assert log_binomial(7, 7) == 0.0

    def test_symmetry(self):
        assert log_binomial(20, 4) == pytest.approx(log_binomial(20, 16))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            log_binomial(3, 5)


class TestLambda:
    def test_matches_equation4_by_hand(self):
        n, k, epsilon, ell = 100, 2, 0.5, 1.0
        expected = (
            (8 + 2 * epsilon)
            * n
            * (ell * math.log(n) + log_binomial(n, k) + math.log(2))
            / epsilon**2
        )
        assert lambda_param(n, k, epsilon, ell) == pytest.approx(expected)

    def test_decreases_with_epsilon(self):
        assert lambda_param(100, 2, 0.5, 1.0) > lambda_param(100, 2, 0.9, 1.0)

    def test_increases_with_k(self):
        assert lambda_param(100, 10, 0.5, 1.0) > lambda_param(100, 2, 0.5, 1.0)

    def test_increases_with_ell(self):
        assert lambda_param(100, 2, 0.5, 2.0) > lambda_param(100, 2, 0.5, 1.0)

    def test_scales_superlinearly_with_n(self):
        assert lambda_param(200, 2, 0.5, 1.0) > 2 * lambda_param(100, 2, 0.5, 1.0)


class TestTheta:
    def test_ceiling_division(self):
        assert theta_from_kpt(10.0, 3.0) == 4
        assert theta_from_kpt(9.0, 3.0) == 3

    def test_at_least_one(self):
        assert theta_from_kpt(0.5, 100.0) == 1

    def test_equation5_satisfied(self):
        lam, kpt = 12345.6, 7.8
        theta = theta_from_kpt(lam, kpt)
        assert theta >= lam / kpt
        assert theta - 1 < lam / kpt

    def test_rejects_zero_kpt(self):
        with pytest.raises(ValueError):
            theta_from_kpt(10.0, 0.0)


class TestEpsilonPrime:
    def test_formula(self):
        value = epsilon_prime_default(0.1, 50, 1.0)
        assert value == pytest.approx(5 * (1.0 * 0.01 / 51.0) ** (1 / 3))

    def test_satisfies_theory_requirement(self):
        # TIM+ keeps TIM's complexity when eps' >= eps / sqrt(k).
        for k in (1, 5, 50, 500):
            for epsilon in (0.05, 0.1, 0.5, 1.0):
                assert epsilon_prime_default(epsilon, k, 1.0) >= epsilon / math.sqrt(k)

    def test_decreases_with_k(self):
        assert epsilon_prime_default(0.1, 10, 1.0) > epsilon_prime_default(0.1, 100, 1.0)


class TestLambdaPrime:
    def test_formula(self):
        n, eps_prime, ell = 100, 0.3, 1.0
        expected = (2 + eps_prime) * ell * n * math.log(n) / eps_prime**2
        assert lambda_prime(eps_prime, ell, n) == pytest.approx(expected)

    def test_smaller_than_lambda_by_factor_k(self):
        # The paper notes Algorithm 3's cost is ~k times below Algorithm 1's.
        n, k, epsilon, ell = 1000, 50, 0.1, 1.0
        eps_prime = epsilon_prime_default(epsilon, k, ell)
        assert lambda_prime(eps_prime, ell, n) < lambda_param(n, k, epsilon, ell) / 5


class TestAdjustedEll:
    def test_tim_absorbs_factor_two(self):
        n, ell = 1000, 1.0
        adjusted = adjusted_ell_tim(ell, n)
        # n^{-adjusted} == n^{-ell} / 2  <=>  2 * n^{-adjusted} == n^{-ell}.
        assert 2 * n ** (-adjusted) == pytest.approx(n ** (-ell))

    def test_tim_plus_absorbs_factor_three(self):
        n, ell = 1000, 1.0
        adjusted = adjusted_ell_tim_plus(ell, n)
        assert 3 * n ** (-adjusted) == pytest.approx(n ** (-ell))

    def test_adjustment_is_mild(self):
        assert adjusted_ell_tim(1.0, 10**6) < 1.06


class TestKptIterationSchedule:
    def test_max_iterations(self):
        assert kpt_max_iterations(1024) == 9  # log2 = 10, minus 1
        assert kpt_max_iterations(2) == 1  # floored at 1

    def test_samples_double_per_iteration(self):
        c1 = kpt_samples_per_iteration(1000, 1.0, 1)
        c2 = kpt_samples_per_iteration(1000, 1.0, 2)
        assert c2 == pytest.approx(2 * c1, abs=2)

    def test_equation9_value(self):
        n, ell, i = 1000, 1.0, 3
        expected = (6 * ell * math.log(n) + 6 * math.log(math.log2(n))) * 2**i
        assert kpt_samples_per_iteration(n, ell, i) == math.ceil(expected)

    def test_increases_with_ell(self):
        assert kpt_samples_per_iteration(1000, 2.0, 1) > kpt_samples_per_iteration(
            1000, 1.0, 1
        )
