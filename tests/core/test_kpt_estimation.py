"""Tests for Algorithm 2 (KptEstimation)."""

import pytest

from repro.core import estimate_kpt
from repro.graphs import DiGraph, constant_probability, path_digraph, star_digraph
from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


class TestBasicBehaviour:
    def test_kpt_at_least_one(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = estimate_kpt(small_wc_graph, 5, sampler, rng=1)
        assert result.kpt_star >= 1.0

    def test_records_last_iteration_sets(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = estimate_kpt(small_wc_graph, 5, sampler, rng=2)
        assert len(result.last_iteration_sets) > 0
        assert result.num_rr_sets >= len(result.last_iteration_sets)

    def test_deterministic_given_seed(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        a = estimate_kpt(small_wc_graph, 5, sampler, rng=3)
        b = estimate_kpt(small_wc_graph, 5, sampler, rng=3)
        assert a.kpt_star == b.kpt_star
        assert a.num_rr_sets == b.num_rr_sets

    def test_edgeless_graph_falls_back_to_one(self):
        g = DiGraph(10, [], [])
        sampler = make_rr_sampler(g, "IC")
        result = estimate_kpt(g, 2, sampler, rng=4)
        assert result.kpt_star == 1.0

    def test_zero_probability_graph(self):
        g = constant_probability(path_digraph(16), 0.0)
        sampler = make_rr_sampler(g, "IC")
        result = estimate_kpt(g, 2, sampler, rng=5)
        # Every RR set is a singleton; kappa > 0 (width counts in-edges of
        # the root), so the estimate stays small but >= 1.
        assert result.kpt_star >= 1.0

    def test_total_cost_accumulates(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = estimate_kpt(small_wc_graph, 5, sampler, rng=6)
        assert result.total_cost >= result.num_rr_sets  # cost >= 1 per set


class TestAccuracy:
    def test_kpt_star_below_opt_upper_bound(self, small_wc_graph):
        # OPT <= n always, so KPT* <= n must hold comfortably.
        sampler = make_rr_sampler(small_wc_graph, "IC")
        result = estimate_kpt(small_wc_graph, 5, sampler, rng=7)
        assert result.kpt_star <= small_wc_graph.n

    def test_kpt_grows_with_k(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        small_k = estimate_kpt(small_wc_graph, 1, sampler, rng=8).kpt_star
        large_k = estimate_kpt(small_wc_graph, 30, sampler, rng=8).kpt_star
        assert large_k >= small_k

    def test_theorem2_band_on_deterministic_star(self):
        # Star hub -> 31 leaves with p = 1.  A random RR set is {leaf, hub}
        # for leaves (width 1) and {hub} for the hub (width 0).
        # KPT (k=1) = E[I({v*})] where v* is indegree-weighted = always a
        # leaf; I({leaf}) = 1... but KPT uses kappa over widths; Theorem 2
        # guarantees KPT* in [KPT/4, OPT] whp — here OPT = 32 (the hub).
        g = star_digraph(32, prob=1.0, outward=True)
        sampler = make_rr_sampler(g, "IC")
        result = estimate_kpt(g, 1, sampler, rng=RandomSource(9))
        assert 0.25 <= result.kpt_star <= 32.0

    def test_statistical_band_on_wc_graph(self, small_wc_graph):
        """KPT* should land in [KPT/4, OPT] (Theorem 2), with KPT and OPT
        replaced by generous Monte-Carlo brackets."""
        from repro.analysis import estimate_kpt_by_definition

        sampler = make_rr_sampler(small_wc_graph, "IC")
        kpt_reference = estimate_kpt_by_definition(
            small_wc_graph, 5, num_outer=150, num_inner=30, rng=10
        )
        result = estimate_kpt(small_wc_graph, 5, sampler, rng=11)
        assert result.kpt_star >= kpt_reference / 4 * 0.7  # slack for MC noise
        assert result.kpt_star <= small_wc_graph.n


class TestValidation:
    def test_rejects_tiny_graph(self):
        g = DiGraph(1, [], [])
        with pytest.raises(ValueError):
            estimate_kpt(g, 1, make_rr_sampler(g, "IC"), rng=1)

    def test_rejects_bad_k(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        with pytest.raises(ValueError):
            estimate_kpt(small_wc_graph, 0, sampler)
        with pytest.raises(ValueError):
            estimate_kpt(small_wc_graph, 10**6, sampler)
