"""Shared fixtures: small deterministic graphs used across the suite.

Also pins the Hypothesis profiles so property tests are reproducible:

* ``ci`` — derandomized (the database-free fixed seed Hypothesis derives
  from each test), deadline disabled (shared runners have noisy clocks),
  and verbose enough to replay failures from the CI log alone;
* ``dev`` (default) — the stock randomized exploration, deadline disabled
  for parity with CI timing behaviour.

Select with ``HYPOTHESIS_PROFILE=ci pytest ...`` (the CI workflow does).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

settings.register_profile("ci", derandomize=True, deadline=None, max_examples=50)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.graphs import (
    DiGraph,
    GraphBuilder,
    gnm_random_digraph,
    paper_figure1_graph,
    path_digraph,
    star_digraph,
    uniform_random_lt,
    weighted_cascade,
)


@pytest.fixture
def figure1_graph() -> DiGraph:
    """The paper's 4-node running example (Figure 1)."""
    return paper_figure1_graph()


@pytest.fixture
def diamond_graph() -> DiGraph:
    """0 -> {1, 2} -> 3, all probabilities 0.5 — smallest graph with
    converging paths (exercises de-duplication in BFS/RR logic)."""
    builder = GraphBuilder(num_nodes=4)
    builder.add_edge(0, 1, 0.5)
    builder.add_edge(0, 2, 0.5)
    builder.add_edge(1, 3, 0.5)
    builder.add_edge(2, 3, 0.5)
    return builder.build()


@pytest.fixture
def deterministic_path() -> DiGraph:
    """0 -> 1 -> 2 -> 3 with p=1: spread computations are exact integers."""
    return path_digraph(4, prob=1.0)


@pytest.fixture
def out_star() -> DiGraph:
    """Hub 0 -> 9 leaves with p=1: hub spread is exactly n."""
    return star_digraph(10, prob=1.0, outward=True)


@pytest.fixture
def small_wc_graph() -> DiGraph:
    """A 60-node weighted-cascade graph, the workhorse statistical fixture."""
    return weighted_cascade(gnm_random_digraph(60, 240, rng=12345))


@pytest.fixture
def small_lt_graph() -> DiGraph:
    """A 60-node LT graph with normalised random weights."""
    return uniform_random_lt(gnm_random_digraph(60, 240, rng=54321), rng=999)
