"""Chaos-suite fixtures: every test starts and ends with no plan armed."""

from __future__ import annotations

import pytest

from repro.faults import injection


@pytest.fixture(autouse=True)
def clean_fault_state():
    injection.clear()
    yield
    injection.clear()
