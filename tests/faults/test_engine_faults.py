"""Chaos: ParallelSampler waves under injected faults stay byte-identical.

Acceptance (i): K consecutive wave crashes inside the retry budget recover
to the exact bytes of an un-faulted run; past the budget the engine
degrades to in-process shards — same bytes, loud warning, never a hang.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FatalError, FaultPlan, FaultRule, RetryPolicy, injection
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.parallel import ParallelSampler
from repro.rrset import make_rr_sampler


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(1200, 7000, rng=17))


@pytest.fixture(scope="module")
def expected(wc_graph):
    """Un-faulted jobs=1 reference bytes (computed before any plan exists)."""
    with ParallelSampler(make_rr_sampler(wc_graph, "IC"), jobs=1) as sampler:
        return sampler.sample_random_batch(2500, rng=31)


def arrays(collection):
    return (
        collection.ptr_array,
        collection.nodes_array,
        collection.roots_array,
        collection.widths_array,
        collection.costs_array,
    )


def assert_identical(a, b):
    for left, right in zip(arrays(a), arrays(b)):
        assert np.array_equal(left, right)


FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_ms=0.5, max_delay_ms=2.0)


class TestWaveRetry:
    def test_k_consecutive_crashes_inside_budget_reproduce_bytes(
        self, wc_graph, expected
    ):
        # First two attempts of the wave fail; the third succeeds on a
        # freshly respawned pool re-running the same shard seed stream.
        plan = FaultPlan(
            [FaultRule(site="parallel.wave", error="transient", times=2)]
        )
        with injection.plan_scope(plan):
            with ParallelSampler(
                make_rr_sampler(wc_graph, "IC"), jobs=2, retry=FAST_RETRY
            ) as sampler:
                survived = sampler.sample_random_batch(2500, rng=31)
        assert plan.hits("parallel.wave") == 3
        assert not sampler._pool_disabled
        assert_identical(survived, expected)

    def test_budget_exhausted_degrades_inline_same_bytes(self, wc_graph, expected):
        # Every in-budget attempt fails -> loud degradation to in-process
        # shards, which still produce the reference bytes (the shard layout
        # and seed streams never depended on the pool).
        plan = FaultPlan(
            [FaultRule(site="parallel.wave", error="transient", times=3)]
        )
        with injection.plan_scope(plan):
            with ParallelSampler(
                make_rr_sampler(wc_graph, "IC"), jobs=2, retry=FAST_RETRY
            ) as sampler:
                with pytest.warns(RuntimeWarning, match="degraded"):
                    survived = sampler.sample_random_batch(2500, rng=31)
        assert sampler._pool_disabled
        assert_identical(survived, expected)

    def test_fatal_fault_is_not_retried(self, wc_graph):
        plan = FaultPlan([FaultRule(site="parallel.wave", error="fatal")])
        with injection.plan_scope(plan):
            with ParallelSampler(
                make_rr_sampler(wc_graph, "IC"), jobs=2, retry=FAST_RETRY
            ) as sampler:
                with pytest.raises(FatalError, match="injected"):
                    sampler.sample_random_batch(2500, rng=31)
        assert plan.hits("parallel.wave") == 1  # no second attempt

    def test_irrelevant_plan_leaves_bytes_untouched(self, wc_graph, expected):
        # Armed-but-not-matching is the "faults off" identity: checkpoints
        # fire, no rule matches, the wave runs exactly once.
        plan = FaultPlan([FaultRule(site="sketch.build", error="fatal")])
        with injection.plan_scope(plan):
            with ParallelSampler(
                make_rr_sampler(wc_graph, "IC"), jobs=2, retry=FAST_RETRY
            ) as sampler:
                result = sampler.sample_random_batch(2500, rng=31)
        assert plan.hits("parallel.wave") == 1
        assert_identical(result, expected)
