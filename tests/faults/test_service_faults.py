"""Chaos: InfluenceService under injected faults, deadlines, and pressure.

Acceptance (iii): a request over its wall-clock budget returns a structured
``deadline_exceeded`` error — the JSONL loop never hangs — and transient
dispatch failures are retried exactly once for idempotent ops.
"""

from __future__ import annotations

import pytest

from repro.api.ops import ErrorResponse, SelectRequest, SelectResponse
from repro.faults import FaultPlan, FaultRule, RetryPolicy, injection
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.sketch import InfluenceService


@pytest.fixture(scope="module")
def wc_graph():
    return weighted_cascade(gnm_random_digraph(90, 360, rng=31))


@pytest.fixture
def service():
    svc = InfluenceService(max_indexes=2, theta=400, rng=17)
    yield svc
    svc.close()


class TestDeadline:
    def test_over_budget_select_returns_structured_error(self, wc_graph, service):
        # A 50 ms stall injected into dispatch against a 5 ms budget: the
        # delayed checkpoint itself detects the expiry — no hang, ever.
        plan = FaultPlan([FaultRule(site="serve.dispatch", delay_ms=50.0)])
        with injection.plan_scope(plan):
            response = service.execute(
                wc_graph, {"op": "select", "k": 3, "deadline_ms": 5}
            )
        assert isinstance(response, ErrorResponse)
        wire = response.to_wire()
        assert wire["error"]["code"] == "deadline_exceeded"
        assert wire["error"]["retryable"] is False
        assert service.stats.errors == 1
        assert service.stats.retries == 0  # a spent budget is never retried

    def test_service_level_default_budget(self, wc_graph):
        svc = InfluenceService(max_indexes=2, theta=400, rng=17, deadline_ms=5)
        try:
            plan = FaultPlan([FaultRule(site="serve.dispatch", delay_ms=50.0)])
            with injection.plan_scope(plan):
                response = svc.execute(wc_graph, SelectRequest(k=3))
            assert isinstance(response, ErrorResponse)
            assert response.code == "deadline_exceeded"
        finally:
            svc.close()

    def test_request_budget_overrides_service_default(self, wc_graph):
        # A generous per-request budget rescues a query the tight service
        # default would have killed.
        svc = InfluenceService(max_indexes=2, theta=400, rng=17, deadline_ms=1)
        try:
            plan = FaultPlan([FaultRule(site="serve.dispatch", delay_ms=10.0)])
            with injection.plan_scope(plan):
                response = svc.execute(
                    wc_graph, SelectRequest(k=3, deadline_ms=60_000)
                )
            assert isinstance(response, SelectResponse)
        finally:
            svc.close()

    def test_batch_with_deadline_faults_never_hangs(self, wc_graph, service):
        plan = FaultPlan(
            [FaultRule(site="serve.dispatch", delay_ms=30.0, times=1000)]
        )
        lines = ['{"op": "select", "k": 2, "deadline_ms": 5, "id": %d}' % i
                 for i in range(5)]
        with injection.plan_scope(plan):
            responses = service.run_batch(wc_graph, lines)
        assert len(responses) == 5
        assert all(r["error"]["code"] == "deadline_exceeded" for r in responses)
        assert [r["id"] for r in responses] == list(range(5))


class TestDispatchRetry:
    def test_transient_fault_retried_once_then_succeeds(self, wc_graph, service):
        plan = FaultPlan([FaultRule(site="serve.dispatch", error="transient")])
        with injection.plan_scope(plan):
            response = service.execute(wc_graph, SelectRequest(k=3))
        assert isinstance(response, SelectResponse)
        assert len(response.seeds) == 3
        assert service.stats.retries == 1
        assert service.stats.errors == 0

    def test_persistent_transient_becomes_structured_error(self, wc_graph, service):
        plan = FaultPlan(
            [FaultRule(site="serve.dispatch", error="transient", times=2)]
        )
        with injection.plan_scope(plan):
            response = service.execute(wc_graph, SelectRequest(k=3))
        assert isinstance(response, ErrorResponse)
        wire = response.to_wire()
        assert wire["error"]["code"] == "transient"
        assert wire["error"]["retryable"] is True  # the caller may resubmit

    def test_fatal_fault_is_not_retried(self, wc_graph, service):
        plan = FaultPlan([FaultRule(site="serve.dispatch", error="fatal")])
        with injection.plan_scope(plan):
            response = service.execute(wc_graph, SelectRequest(k=3))
        assert isinstance(response, ErrorResponse)
        assert response.code == "fatal"
        assert plan.hits("serve.dispatch") == 1
        assert service.stats.retries == 0

    def test_update_is_never_replayed(self, wc_graph, service):
        from repro.dynamic.graph import DynamicDiGraph

        dynamic = DynamicDiGraph(wc_graph)
        plan = FaultPlan([FaultRule(site="serve.dispatch", error="transient")])
        with injection.plan_scope(plan):
            response = service.execute(
                dynamic,
                {"op": "update", "action": "reweight", "u": 0, "v": 1, "p": 0.01},
            )
        # The same transient that earns a select a redo fails an update:
        # graph mutation must not risk double-apply.
        assert isinstance(response, ErrorResponse)
        assert plan.hits("serve.dispatch") == 1
        assert service.stats.retries == 0

    def test_custom_retry_budget(self, wc_graph):
        svc = InfluenceService(
            max_indexes=2, theta=400, rng=17,
            retry=RetryPolicy(max_attempts=4, base_delay_ms=0.5, max_delay_ms=2.0),
        )
        try:
            plan = FaultPlan(
                [FaultRule(site="serve.dispatch", error="transient", times=3)]
            )
            with injection.plan_scope(plan):
                response = svc.execute(wc_graph, SelectRequest(k=3))
            assert isinstance(response, SelectResponse)
            assert svc.stats.retries == 3
        finally:
            svc.close()

    def test_retries_surface_in_stats_payload(self, wc_graph, service):
        plan = FaultPlan([FaultRule(site="serve.dispatch", error="transient")])
        with injection.plan_scope(plan):
            service.execute(wc_graph, SelectRequest(k=2))
            stats = service.execute(wc_graph, {"op": "stats"})
        assert stats.to_wire()["result"]["retries"] == 1


class TestMemoryBudget:
    def test_budget_evicts_lru_before_cold_build(self, wc_graph):
        other = weighted_cascade(gnm_random_digraph(90, 360, rng=32))
        svc = InfluenceService(max_indexes=8, theta=400, rng=17,
                               memory_budget_bytes=1)  # everything is over
        try:
            svc.execute(wc_graph, SelectRequest(k=2))
            assert len(svc) == 1
            svc.execute(other, SelectRequest(k=2))
            # The budget pass evicted the first index before the second
            # build; max_indexes alone would have kept both.
            assert len(svc) == 1
            assert svc.stats.evictions == 1
        finally:
            svc.close()

    def test_budget_keeps_at_least_one_index(self, wc_graph):
        svc = InfluenceService(max_indexes=4, theta=400, rng=17,
                               memory_budget_bytes=1)
        try:
            response = svc.execute(wc_graph, SelectRequest(k=3))
            assert isinstance(response, SelectResponse)
            assert len(svc) == 1  # never evicted below a working set of one
            assert svc.memory_bytes() > 0
        finally:
            svc.close()


class TestCloseLeakSafety:
    def test_one_failing_close_does_not_leak_the_rest(self, wc_graph, monkeypatch):
        other = weighted_cascade(gnm_random_digraph(90, 360, rng=33))
        svc = InfluenceService(max_indexes=4, theta=400, rng=17)
        svc.execute(wc_graph, SelectRequest(k=2))
        svc.execute(other, SelectRequest(k=2))
        first, second = (svc._indexes[key] for key in svc.cached_keys())

        closed = []
        monkeypatch.setattr(
            type(first), "close",
            lambda self: (_ for _ in ()).throw(RuntimeError("pool wedged"))
            if self is first else closed.append(self),
        )
        with pytest.raises(RuntimeError, match="pool wedged"):
            svc.close()
        assert closed == [second]  # the healthy index still closed

    def test_evict_closes_every_victim_despite_failure(self, wc_graph, monkeypatch):
        graphs = [wc_graph] + [
            weighted_cascade(gnm_random_digraph(90, 360, rng=40 + i))
            for i in range(2)
        ]
        svc = InfluenceService(max_indexes=4, theta=400, rng=17)
        for graph in graphs:
            svc.execute(graph, SelectRequest(k=2))
        victims = [svc._indexes[key] for key in svc.cached_keys()[:2]]

        closed = []
        monkeypatch.setattr(
            type(victims[0]), "close",
            lambda self: (_ for _ in ()).throw(RuntimeError("wedged"))
            if self is victims[0] else closed.append(self),
        )
        svc.max_indexes = 1
        with pytest.raises(RuntimeError, match="wedged"):
            svc._evict()
        # Both victims left the cache and the second one's close() ran.
        assert len(svc) == 1
        assert victims[1] in closed
        monkeypatch.undo()
        svc.close()
