"""The retryable-error taxonomy: codes, retryability, builtin mapping."""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

import pytest

from repro.faults import (
    DeadlineExceeded,
    FatalError,
    ReproError,
    TransientError,
    error_code,
    is_retryable,
)


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (TransientError, FatalError, DeadlineExceeded):
            assert issubclass(cls, ReproError)
        assert issubclass(ReproError, Exception)

    @pytest.mark.parametrize(
        "cls, code, retryable",
        [
            (ReproError, "internal", False),
            (TransientError, "transient", True),
            (FatalError, "fatal", False),
            (DeadlineExceeded, "deadline_exceeded", False),
        ],
    )
    def test_codes_and_retryability(self, cls, code, retryable):
        exc = cls("boom")
        assert exc.code == code
        assert exc.retryable is retryable
        assert error_code(exc) == code
        assert is_retryable(exc) is retryable


class TestBuiltinClassification:
    @pytest.mark.parametrize(
        "exc", [BrokenExecutor(), MemoryError(), TimeoutError(), ConnectionError()]
    )
    def test_retryable_builtins(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize("exc", [ValueError("x"), KeyError("k"), OSError("io")])
    def test_everything_else_is_not(self, exc):
        assert not is_retryable(exc)

    def test_memory_error_code(self):
        assert error_code(MemoryError("oom")) == "resource_exhausted"

    def test_unknown_exception_code(self):
        assert error_code(ValueError("x")) == "bad_request"

    def test_api_error_code_passthrough(self):
        from repro.api.ops import ApiError

        assert error_code(ApiError("unknown_field", "typo")) == "unknown_field"
