"""FaultPlan / checkpoint / deadline_scope mechanics."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    DeadlineExceeded,
    FatalError,
    FaultPlan,
    FaultRule,
    TransientError,
    injection,
)


class TestFaultRule:
    def test_defaults_rejected_without_action(self):
        with pytest.raises(ValueError, match="no action"):
            FaultRule(site="parallel.wave")

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(site="", error="transient"), "non-empty site"),
            (dict(site="x", error="nope"), "unknown fault error kind"),
            (dict(site="x", delay_ms=-1.0), "delay_ms"),
            (dict(site="x", error="fatal", truncate_at=-5), "truncate_at"),
            (dict(site="x", error="fatal", after=-1), "after"),
            (dict(site="x", error="fatal", times=0), "times"),
            (dict(site="x", error="fatal", probability=0.0), "probability"),
            (dict(site="x", error="fatal", probability=1.5), "probability"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultRule(**kwargs)

    def test_make_error_kinds(self):
        assert isinstance(
            FaultRule(site="s", error="transient").make_error("s", 0), TransientError
        )
        assert isinstance(
            FaultRule(site="s", error="fatal").make_error("s", 0), FatalError
        )
        assert isinstance(
            FaultRule(site="s", error="memory").make_error("s", 3), MemoryError
        )
        message = str(FaultRule(site="s", error="oserror").make_error("s", 7))
        assert "hit #7" in message


class TestFaultPlan:
    def test_from_json_list(self):
        plan = FaultPlan.from_json('[{"site": "parallel.wave", "error": "transient"}]')
        assert len(plan.rules) == 1
        assert plan.rules[0].site == "parallel.wave"
        assert plan.seed == 0

    def test_from_json_object_with_seed(self):
        plan = FaultPlan.from_json(
            '{"seed": 9, "rules": [{"site": "sketch.save", "truncate_at": 64}]}'
        )
        assert plan.seed == 9
        assert plan.rules[0].truncate_at == 64

    @pytest.mark.parametrize(
        "text", ['"just a string"', '{"rules": 3}', "[{\"site\": \"x\"}]"]
    )
    def test_from_json_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            FaultPlan.from_json(text)

    def test_fire_window_after_times(self):
        plan = FaultPlan([FaultRule(site="s", error="transient", after=1, times=2)])
        fired = [plan.fire("s") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]
        assert plan.hits("s") == 5
        assert plan.hits("other") == 0

    def test_fire_counts_per_site(self):
        plan = FaultPlan([FaultRule(site="a", error="fatal", after=1)])
        assert plan.fire("b") is None  # does not advance site "a"
        assert plan.fire("a") is None
        assert plan.fire("a") is not None

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan(
                [FaultRule(site="s", error="transient", times=50, probability=0.5)],
                seed=seed,
            )
            return tuple(plan.fire("s") is not None for _ in range(50))

        first = pattern(11)
        assert pattern(11) == first
        assert any(first) and not all(first)


class TestGlobalState:
    def test_disarmed_checkpoint_is_noop(self):
        assert not injection.enabled()
        assert injection.checkpoint("parallel.wave") is None

    def test_install_and_clear(self):
        plan = FaultPlan([FaultRule(site="s", error="transient")])
        injection.install(plan)
        assert injection.enabled()
        assert injection.active_plan() is plan
        injection.clear()
        assert not injection.enabled()
        assert injection.active_plan() is None

    def test_plan_scope_restores_previous(self):
        outer = FaultPlan([FaultRule(site="s", delay_ms=1.0)])
        injection.install(outer)
        inner = FaultPlan([FaultRule(site="s", error="fatal")])
        with injection.plan_scope(inner):
            assert injection.active_plan() is inner
        assert injection.active_plan() is outer

    def test_checkpoint_raises_planned_error(self):
        plan = FaultPlan([FaultRule(site="s", error="transient", after=1)])
        with injection.plan_scope(plan):
            assert injection.checkpoint("s") is None
            with pytest.raises(TransientError, match="injected"):
                injection.checkpoint("s")

    def test_checkpoint_returns_rule_for_rich_actions(self):
        plan = FaultPlan([FaultRule(site="sketch.save", truncate_at=16)])
        with injection.plan_scope(plan):
            rule = injection.checkpoint("sketch.save")
        assert rule is not None and rule.truncate_at == 16


class TestInstallFromEnv:
    def test_unset_is_noop(self):
        assert injection.install_from_env(env={}) is None
        assert not injection.enabled()

    def test_inline_json(self):
        raw = json.dumps([{"site": "serve.dispatch", "error": "transient"}])
        plan = injection.install_from_env(env={injection.ENV_VAR: raw})
        assert plan is not None and injection.active_plan() is plan

    def test_at_path(self, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            json.dumps({"seed": 3, "rules": [{"site": "s", "delay_ms": 1}]})
        )
        plan = injection.install_from_env(env={injection.ENV_VAR: f"@{plan_file}"})
        assert plan is not None and plan.seed == 3

    @pytest.mark.parametrize(
        "raw", ["not json", '{"rules": "x"}", ', "@/nonexistent/plan.json"]
    )
    def test_bad_plan_raises_value_error(self, raw):
        with pytest.raises(ValueError, match="invalid REPRO_FAULTS"):
            injection.install_from_env(env={injection.ENV_VAR: raw})


class TestDeadlines:
    def test_none_budget_is_noop(self):
        with injection.deadline_scope(None):
            assert injection.remaining_ms() is None
            assert not injection.enabled()

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            with injection.deadline_scope(0):
                pass  # pragma: no cover - never entered

    def test_checkpoint_past_budget_raises(self):
        plan = FaultPlan([FaultRule(site="slow", delay_ms=30.0)])
        with injection.plan_scope(plan):
            with injection.deadline_scope(10.0):
                with pytest.raises(DeadlineExceeded, match="slow"):
                    injection.checkpoint("slow")  # delay spends the budget
        assert injection.remaining_ms() is None

    def test_nested_scopes_tightest_wins(self):
        with injection.deadline_scope(60_000.0):
            outer = injection.remaining_ms()
            with injection.deadline_scope(5_000.0):
                inner = injection.remaining_ms()
                assert inner is not None and outer is not None
                assert inner < outer
            restored = injection.remaining_ms()
            assert restored is not None and restored > 10_000.0

    def test_deadline_arms_checkpoints_without_plan(self):
        assert injection.active_plan() is None
        with injection.deadline_scope(60_000.0):
            assert injection.enabled()
            assert injection.checkpoint("anything") is None  # within budget
        assert not injection.enabled()
