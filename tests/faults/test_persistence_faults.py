"""Chaos: torn sketch writes, checksum corruption, quarantine-and-rebuild.

Acceptance (ii): a truncated sketch write produces a structured error and a
quarantined file — never a wrong answer — and a rebuild at the same path
recovers without operator surgery.
"""

from __future__ import annotations

import struct
import zipfile

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultRule, injection
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.rrset import make_rr_sampler
from repro.sketch import (
    SketchCorruptionError,
    SketchFileError,
    load_sketch,
    read_sketch_meta,
    save_sketch,
)
from repro.utils.rng import RandomSource


@pytest.fixture
def wc_graph():
    return weighted_cascade(gnm_random_digraph(80, 320, rng=5))


@pytest.fixture
def sampled(wc_graph):
    return make_rr_sampler(wc_graph, "IC").sample_random_batch(400, RandomSource(9))


def flip_payload_byte(path, member="nodes.npy"):
    """Flip one byte inside a stored member's array payload (zip intact)."""
    data = bytearray(path.read_bytes())
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(member)
    head = info.header_offset
    name_len, extra_len = struct.unpack("<HH", bytes(data[head + 26 : head + 30]))
    npy_start = head + 30 + name_len + extra_len
    header_len = struct.unpack("<H", bytes(data[npy_start + 8 : npy_start + 10]))[0]
    payload = npy_start + 10 + header_len
    data[payload + 4] ^= 0xFF
    path.write_bytes(bytes(data))


class TestTornWrite:
    def test_truncated_write_quarantines_and_rebuild_recovers(
        self, tmp_path, sampled
    ):
        path = tmp_path / "sketch.npz"
        plan = FaultPlan([FaultRule(site="sketch.save", truncate_at=512)])
        with injection.plan_scope(plan):
            save_sketch(path, sampled, {"model": "IC"})
        assert path.stat().st_size == 512  # the torn file landed at path

        with pytest.raises(SketchFileError, match="quarantined"):
            load_sketch(path)
        assert not path.exists()
        aside = tmp_path / "sketch.npz.quarantined"
        assert aside.exists() and aside.stat().st_size == 512

        # Rebuild at the now-free path; the recovered sketch is bit-exact.
        save_sketch(path, sampled, {"model": "IC"})
        loaded, _ = load_sketch(path)
        assert np.array_equal(loaded.nodes_array, sampled.nodes_array)

    def test_quarantined_error_carries_new_location(self, tmp_path, sampled):
        path = tmp_path / "sketch.npz"
        plan = FaultPlan([FaultRule(site="sketch.save", truncate_at=100)])
        with injection.plan_scope(plan):
            save_sketch(path, sampled, {"model": "IC"})
        with pytest.raises(SketchFileError) as excinfo:
            load_sketch(path)
        assert excinfo.value.quarantined_path == str(path) + ".quarantined"

    def test_quarantine_false_keeps_the_file(self, tmp_path, sampled):
        path = tmp_path / "sketch.npz"
        plan = FaultPlan([FaultRule(site="sketch.save", truncate_at=100)])
        with injection.plan_scope(plan):
            save_sketch(path, sampled, {"model": "IC"})
        with pytest.raises(SketchFileError):
            load_sketch(path, quarantine=False)
        assert path.exists()  # forensics mode: nothing moved


class TestAtomicReplace:
    def test_failed_save_leaves_old_sketch_intact(self, tmp_path, sampled, wc_graph):
        path = tmp_path / "sketch.npz"
        save_sketch(path, sampled, {"model": "IC", "generation": 1})

        newer = make_rr_sampler(wc_graph, "IC").sample_random_batch(
            100, RandomSource(4)
        )
        plan = FaultPlan([FaultRule(site="sketch.save", error="oserror")])
        with injection.plan_scope(plan):
            with pytest.raises(OSError, match="injected"):
                save_sketch(path, newer, {"model": "IC", "generation": 2})

        # The overwrite never happened and no temp file is stranded.
        loaded, meta = load_sketch(path)
        assert meta["generation"] == 1
        assert np.array_equal(loaded.nodes_array, sampled.nodes_array)
        assert list(tmp_path.iterdir()) == [path]


class TestChecksum:
    def test_meta_records_payload_checksum(self, tmp_path, sampled):
        path = tmp_path / "sketch.npz"
        save_sketch(path, sampled, {"model": "IC"})
        meta = read_sketch_meta(path)
        sha = meta.get("payload_sha256")
        assert isinstance(sha, str) and len(sha) == 64

    def test_bit_flip_fails_mmap_load_with_corruption_error(
        self, tmp_path, sampled
    ):
        # The mmap path has no zip CRC pass, so the payload checksum is the
        # only line of defence against a flipped bit.
        path = tmp_path / "sketch.npz"
        save_sketch(path, sampled, {"model": "IC"})
        flip_payload_byte(path)
        with pytest.raises(SketchCorruptionError, match="checksum mismatch"):
            load_sketch(path, mmap=True, quarantine=False)

    def test_bit_flip_fails_eager_load_too(self, tmp_path, sampled):
        # Eager np.load catches it at the zip CRC layer; either way the
        # corrupt file is quarantined, never served.
        path = tmp_path / "sketch.npz"
        save_sketch(path, sampled, {"model": "IC"})
        flip_payload_byte(path)
        with pytest.raises(SketchFileError):
            load_sketch(path)
        assert not path.exists()
        assert (tmp_path / "sketch.npz.quarantined").exists()

    def test_verify_false_skips_the_checksum(self, tmp_path, sampled):
        path = tmp_path / "sketch.npz"
        save_sketch(path, sampled, {"model": "IC"})
        flip_payload_byte(path, member="costs.npy")
        loaded, _ = load_sketch(path, mmap=True, verify=False, quarantine=False)
        assert len(loaded) == len(sampled)  # loads, knowingly unchecked


class TestLoadInjection:
    def test_fault_at_sketch_load_site(self, tmp_path, sampled):
        path = tmp_path / "sketch.npz"
        save_sketch(path, sampled, {"model": "IC"})
        plan = FaultPlan([FaultRule(site="sketch.load", error="oserror")])
        with injection.plan_scope(plan):
            with pytest.raises(OSError, match="injected"):
                load_sketch(path)
        assert path.exists()  # injected failure, not corruption: no quarantine
        loaded, _ = load_sketch(path)
        assert np.array_equal(loaded.nodes_array, sampled.nodes_array)
