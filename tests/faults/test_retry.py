"""RetryPolicy: deterministic backoff schedules and bounded retries."""

from __future__ import annotations

import pytest

from repro.faults import (
    DeadlineExceeded,
    FatalError,
    RetryPolicy,
    TransientError,
    call_with_retry,
)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(max_attempts=0), "max_attempts"),
            (dict(base_delay_ms=-1.0), "must be >= 0"),
            (dict(max_delay_ms=-1.0), "must be >= 0"),
            (dict(multiplier=0.5), "multiplier"),
            (dict(jitter=1.5), "jitter"),
            (dict(jitter=-0.1), "jitter"),
        ],
    )
    def test_rejects_bad_fields(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)


class TestDelaySchedule:
    def test_pure_function_of_policy(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        assert policy.delays_ms() == policy.delays_ms()
        assert RetryPolicy(max_attempts=5, seed=7).delays_ms() == policy.delays_ms()

    def test_seed_changes_jitter(self):
        base = RetryPolicy(max_attempts=4, seed=1)
        other = RetryPolicy(max_attempts=4, seed=2)
        assert base.delays_ms() != other.delays_ms()

    def test_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_ms=10.0, multiplier=2.0,
            max_delay_ms=35.0, jitter=0.0,
        )
        assert policy.delays_ms() == (10.0, 20.0, 35.0, 35.0, 35.0)

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_ms=10.0, multiplier=1.0,
            max_delay_ms=10.0, jitter=0.5, seed=3,
        )
        for delay in policy.delays_ms():
            assert 10.0 <= delay <= 15.0

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays_ms() == ()


class TestCallWithRetry:
    def _policy(self, attempts=3):
        return RetryPolicy(max_attempts=attempts, base_delay_ms=0.0, jitter=0.0)

    def test_success_first_try(self):
        calls = []
        result = call_with_retry(lambda: calls.append(1) or "ok",
                                 policy=self._policy())
        assert result == "ok" and len(calls) == 1

    def test_transient_retried_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("wave crashed")
            return "recovered"

        slept = []
        result = call_with_retry(flaky, policy=self._policy(), sleep=slept.append)
        assert result == "recovered"
        assert len(attempts) == 3 and len(slept) == 2

    def test_exhaustion_reraises_last_error(self):
        def always_fails():
            raise TransientError("still down")

        with pytest.raises(TransientError, match="still down"):
            call_with_retry(always_fails, policy=self._policy(2))

    def test_non_retryable_raises_immediately(self):
        attempts = []

        def fatal():
            attempts.append(1)
            raise FatalError("wedged")

        with pytest.raises(FatalError):
            call_with_retry(fatal, policy=self._policy())
        assert len(attempts) == 1

    def test_deadline_exceeded_never_retried(self):
        attempts = []

        def over_budget():
            attempts.append(1)
            raise DeadlineExceeded("budget spent")

        # Even with a retryable predicate that approves everything.
        with pytest.raises(DeadlineExceeded):
            call_with_retry(over_budget, policy=self._policy(),
                            retryable=lambda exc: True)
        assert len(attempts) == 1

    def test_on_retry_sees_attempt_and_error(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientError("again")
            return "done"

        call_with_retry(flaky, policy=self._policy(),
                        on_retry=lambda n, exc: seen.append((n, str(exc))))
        assert seen == [(1, "again"), (2, "again")]

    def test_custom_retryable_predicate(self):
        attempts = []

        def odd_failure():
            attempts.append(1)
            raise KeyError("missing")

        with pytest.raises(KeyError):
            call_with_retry(odd_failure, policy=self._policy(2),
                            retryable=lambda exc: isinstance(exc, KeyError))
        assert len(attempts) == 2  # KeyError approved, budget of 2 spent

    def test_sleeps_follow_the_policy_schedule(self):
        policy = RetryPolicy(max_attempts=3, base_delay_ms=8.0,
                             multiplier=2.0, max_delay_ms=100.0, jitter=0.0)
        slept = []

        def flaky():
            if len(slept) < 2:
                raise TransientError("again")
            return "ok"

        call_with_retry(flaky, policy=policy, sleep=slept.append)
        assert slept == [0.008, 0.016]
