"""Tests for the simple heuristics: degree, degree-discount, pagerank, random."""

import numpy as np
import pytest

from repro.algorithms import max_degree, pagerank_scores, pagerank_seeds, random_seeds
from repro.algorithms.degree import degree_discount
from repro.graphs import cycle_digraph, path_digraph, star_digraph


class TestMaxDegree:
    def test_hub_first(self):
        g = star_digraph(10, prob=1.0, outward=True)
        assert max_degree(g, 1).seeds == [0]

    def test_tie_break_by_id(self):
        g = cycle_digraph(5)
        assert max_degree(g, 2).seeds == [0, 1]

    def test_seed_contract(self, small_wc_graph):
        result = max_degree(small_wc_graph, 6)
        assert len(set(result.seeds)) == 6


class TestDegreeDiscount:
    def test_hub_first(self):
        g = star_digraph(10, prob=1.0, outward=True)
        assert degree_discount(g, 1).seeds == [0]

    def test_discount_spreads_seeds(self):
        from repro.graphs import GraphBuilder

        # Two stars: hub 0 (5 leaves), hub 6 (4 leaves). Plain degree picks
        # 0 then 6 too, but discount must also avoid picking 0's leaves.
        builder = GraphBuilder(num_nodes=12)
        for leaf in (1, 2, 3, 4, 5):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (7, 8, 9, 10):
            builder.add_edge(6, leaf, 1.0)
        g = builder.build()
        result = degree_discount(g, 2, p=0.1)
        assert set(result.seeds) == {0, 6}

    def test_seed_contract(self, small_wc_graph):
        result = degree_discount(small_wc_graph, 6, p=0.05)
        assert len(set(result.seeds)) == 6

    def test_p_validation(self, small_wc_graph):
        with pytest.raises(ValueError):
            degree_discount(small_wc_graph, 2, p=1.5)


class TestPagerank:
    def test_scores_sum_to_one(self, small_wc_graph):
        scores = pagerank_scores(small_wc_graph)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_reverse_ranks_influencers(self):
        # In reverse PageRank, the *source* of a p=1 chain accumulates mass.
        g = path_digraph(5, prob=1.0)
        scores = pagerank_scores(g, reverse=True)
        assert int(np.argmax(scores)) == 0

    def test_forward_ranks_sinks(self):
        g = path_digraph(5, prob=1.0)
        scores = pagerank_scores(g, reverse=False)
        assert int(np.argmax(scores)) == 4

    def test_uniform_on_cycle(self):
        scores = pagerank_scores(cycle_digraph(6))
        assert np.allclose(scores, 1 / 6, atol=1e-6)

    def test_seeds_hub(self):
        g = star_digraph(10, prob=1.0, outward=True)
        assert pagerank_seeds(g, 1).seeds == [0]

    def test_damping_validation(self, small_wc_graph):
        with pytest.raises(ValueError):
            pagerank_scores(small_wc_graph, damping=1.0)


class TestRandomSeeds:
    def test_contract(self, small_wc_graph):
        result = random_seeds(small_wc_graph, 5, rng=1)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5
        assert all(0 <= s < small_wc_graph.n for s in result.seeds)

    def test_deterministic_given_seed(self, small_wc_graph):
        assert random_seeds(small_wc_graph, 5, rng=2).seeds == random_seeds(
            small_wc_graph, 5, rng=2
        ).seeds

    def test_varies_across_seeds(self, small_wc_graph):
        assert random_seeds(small_wc_graph, 5, rng=3).seeds != random_seeds(
            small_wc_graph, 5, rng=4
        ).seeds
