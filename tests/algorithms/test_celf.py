"""Tests for CELF."""

from repro.algorithms import celf, greedy
from repro.graphs import star_digraph


class TestCelf:
    def test_star_hub_found(self):
        g = star_digraph(12, prob=1.0, outward=True)
        result = celf(g, 1, num_runs=30, rng=1)
        assert result.seeds == [0]

    def test_matches_greedy_on_deterministic_graph(self):
        from repro.graphs import GraphBuilder

        builder = GraphBuilder(num_nodes=9)
        for leaf in (1, 2, 3, 4):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (6, 7):
            builder.add_edge(5, leaf, 1.0)
        g = builder.build()
        celf_result = celf(g, 2, num_runs=25, rng=2)
        greedy_result = greedy(g, 2, num_runs=25, rng=3)
        assert set(celf_result.seeds) == set(greedy_result.seeds)

    def test_lazy_saves_evaluations(self, small_wc_graph):
        k = 4
        celf_result = celf(small_wc_graph, k, num_runs=15, rng=4)
        greedy_evals = small_wc_graph.n * k - sum(range(k))  # n + (n-1) + ...
        assert celf_result.extras["spread_evaluations"] < greedy_evals

    def test_seed_count_and_distinct(self, small_wc_graph):
        result = celf(small_wc_graph, 5, num_runs=15, rng=5)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_time_at_k_length(self, small_wc_graph):
        result = celf(small_wc_graph, 3, num_runs=10, rng=6)
        assert len(result.extras["time_at_k"]) == 3

    def test_estimated_spread_positive(self, small_wc_graph):
        result = celf(small_wc_graph, 3, num_runs=15, rng=7)
        assert result.estimated_spread >= 3.0  # at least the seeds themselves
