"""Tests for the algorithm registry and front door."""

import pytest

from repro.algorithms import algorithm_names, get_algorithm, maximize_influence, register_algorithm
from repro.core.results import InfluenceMaxResult


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = set(algorithm_names())
        expected = {
            "tim",
            "tim+",
            "greedy",
            "celf",
            "celf++",
            "ris",
            "irie",
            "simpath",
            "degree",
            "degree-discount",
            "pagerank",
            "random",
        }
        assert expected <= names

    def test_lookup_case_insensitive(self):
        assert get_algorithm("TIM+") is get_algorithm("tim+")

    def test_unknown_raises_with_catalogue(self):
        with pytest.raises(ValueError, match="known:"):
            get_algorithm("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("tim", lambda *a, **k: None)

    def test_reregistering_same_definition_is_idempotent(self):
        # The module-reimport / interactive-reload shape: same module and
        # qualname, possibly a fresh function object.  Must never raise.
        from repro.core.tim import tim

        before = get_algorithm("tim")
        register_algorithm("tim", tim)
        register_algorithm("tim", tim)
        assert get_algorithm("tim") is before

    def test_replace_true_swaps_and_restores(self):
        original = get_algorithm("tim")

        def stub(*args, **kwargs):  # pragma: no cover - never called
            raise AssertionError

        register_algorithm("tim", stub, replace=True)
        try:
            assert get_algorithm("tim") is stub
        finally:
            register_algorithm("tim", original, replace=True)
        assert get_algorithm("tim") is original


class TestMaximizeInfluence:
    def test_dispatch_and_result_type(self, small_wc_graph):
        result = maximize_influence(small_wc_graph, 3, algorithm="degree")
        assert isinstance(result, InfluenceMaxResult)
        assert result.algorithm == "MaxDegree"
        assert len(result.seeds) == 3

    def test_kwargs_forwarded(self, small_wc_graph):
        result = maximize_influence(
            small_wc_graph, 2, algorithm="tim+", epsilon=0.5, ell=0.5, rng=1
        )
        assert result.epsilon == 0.5

    def test_runtime_filled_when_missing(self, small_wc_graph):
        result = maximize_influence(small_wc_graph, 2, algorithm="random", rng=1)
        assert result.runtime_seconds > 0.0


class TestResultValidation:
    def test_result_rejects_wrong_seed_count(self):
        with pytest.raises(ValueError, match="seeds"):
            InfluenceMaxResult(algorithm="x", model="IC", seeds=[1], k=2)

    def test_result_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            InfluenceMaxResult(algorithm="x", model="IC", seeds=[1, 1], k=2)
