"""Tests for IRIE."""

import numpy as np
import pytest

from repro.algorithms import influence_rank, irie
from repro.graphs import constant_probability, path_digraph, star_digraph


class TestInfluenceRank:
    def test_rank_at_least_one(self, small_wc_graph):
        rank = influence_rank(small_wc_graph)
        assert np.all(rank >= 1.0)

    def test_hub_ranks_highest(self):
        g = star_digraph(10, prob=1.0, outward=True)
        rank = influence_rank(g)
        assert int(np.argmax(rank)) == 0

    def test_sinks_rank_lowest(self):
        g = path_digraph(5, prob=1.0)
        rank = influence_rank(g)
        assert rank[0] == rank.max()
        assert rank[4] == rank.min()

    def test_activation_probability_damps(self, small_wc_graph):
        undamped = influence_rank(small_wc_graph)
        ap = np.full(small_wc_graph.n, 0.5)
        damped = influence_rank(small_wc_graph, activation_prob=ap)
        assert np.all(damped <= undamped)

    def test_fully_activated_node_rank_zero(self, small_wc_graph):
        ap = np.zeros(small_wc_graph.n)
        ap[3] = 1.0
        rank = influence_rank(small_wc_graph, activation_prob=ap)
        assert rank[3] == 0.0

    def test_alpha_validation(self, small_wc_graph):
        with pytest.raises(ValueError):
            influence_rank(small_wc_graph, alpha=1.5)

    def test_converges(self, small_wc_graph):
        short = influence_rank(small_wc_graph, max_iterations=20)
        long = influence_rank(small_wc_graph, max_iterations=60)
        assert np.abs(short - long).max() < 1e-2


class TestIrie:
    def test_star_hub_found(self):
        g = star_digraph(12, prob=1.0, outward=True)
        result = irie(g, 1, rng=1, ap_runs=20)
        assert result.seeds == [0]

    def test_second_seed_avoids_covered_region(self):
        from repro.graphs import GraphBuilder

        builder = GraphBuilder(num_nodes=10)
        for leaf in (1, 2, 3, 4):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (6, 7, 8):
            builder.add_edge(5, leaf, 1.0)
        g = builder.build()
        result = irie(g, 2, rng=2, ap_runs=30)
        assert set(result.seeds) == {0, 5}

    def test_seed_contract(self, small_wc_graph):
        result = irie(small_wc_graph, 5, rng=3, ap_runs=20)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_zero_probability_graph_degenerates_gracefully(self):
        g = constant_probability(path_digraph(6), 0.0)
        result = irie(g, 2, rng=4, ap_runs=10)
        assert len(result.seeds) == 2

    def test_time_at_k_recorded(self, small_wc_graph):
        result = irie(small_wc_graph, 3, rng=5, ap_runs=10)
        assert len(result.extras["time_at_k"]) == 3
