"""Tests for CELF++."""

from repro.algorithms import celf, celf_plus_plus
from repro.graphs import star_digraph


class TestCelfPlusPlus:
    def test_star_hub_found(self):
        g = star_digraph(12, prob=1.0, outward=True)
        result = celf_plus_plus(g, 1, num_runs=30, rng=1)
        assert result.seeds == [0]

    def test_matches_celf_on_deterministic_graph(self):
        from repro.graphs import GraphBuilder

        builder = GraphBuilder(num_nodes=9)
        for leaf in (1, 2, 3, 4):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (6, 7):
            builder.add_edge(5, leaf, 1.0)
        g = builder.build()
        pp = celf_plus_plus(g, 2, num_runs=25, rng=2)
        plain = celf(g, 2, num_runs=25, rng=3)
        assert set(pp.seeds) == set(plain.seeds)

    def test_seed_count_and_distinct(self, small_wc_graph):
        result = celf_plus_plus(small_wc_graph, 5, num_runs=15, rng=4)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_mg2_shortcut_counter_present(self, small_wc_graph):
        result = celf_plus_plus(small_wc_graph, 4, num_runs=15, rng=5)
        assert result.extras["mg2_shortcuts"] >= 0

    def test_time_at_k_monotone(self, small_wc_graph):
        result = celf_plus_plus(small_wc_graph, 4, num_runs=15, rng=6)
        times = result.extras["time_at_k"]
        assert len(times) == 4
        assert times == sorted(times)

    def test_quality_close_to_celf_statistically(self, small_wc_graph):
        """Same greedy semantics: spreads of the two selections should agree
        within Monte-Carlo noise."""
        from repro.diffusion import estimate_spread

        pp = celf_plus_plus(small_wc_graph, 4, num_runs=40, rng=7)
        plain = celf(small_wc_graph, 4, num_runs=40, rng=8)
        spread_pp = estimate_spread(small_wc_graph, pp.seeds, num_samples=1500, rng=9).mean
        spread_plain = estimate_spread(small_wc_graph, plain.seeds, num_samples=1500, rng=10).mean
        assert abs(spread_pp - spread_plain) / max(spread_plain, 1.0) < 0.2
