"""Tests for Kempe et al.'s Greedy and the Lemma 10 bound."""

import pytest

from repro.algorithms import greedy, recommended_monte_carlo_runs
from repro.graphs import path_digraph, star_digraph


class TestGreedy:
    def test_star_hub_found(self):
        g = star_digraph(12, prob=1.0, outward=True)
        result = greedy(g, 1, num_runs=30, rng=1)
        assert result.seeds == [0]

    def test_two_stars(self):
        from repro.graphs import GraphBuilder

        builder = GraphBuilder(num_nodes=10)
        for leaf in (1, 2, 3, 4):
            builder.add_edge(0, leaf, 1.0)
        for leaf in (6, 7, 8):
            builder.add_edge(5, leaf, 1.0)
        g = builder.build()
        result = greedy(g, 2, num_runs=30, rng=2)
        assert set(result.seeds) == {0, 5}

    def test_seed_count(self, small_wc_graph):
        result = greedy(small_wc_graph, 4, num_runs=20, rng=3)
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_evaluation_count(self):
        g = path_digraph(6, prob=0.5)
        result = greedy(g, 2, num_runs=5, rng=4)
        # Iteration 1 evaluates 6 candidates, iteration 2 evaluates 5.
        assert result.extras["spread_evaluations"] == 11

    def test_candidate_pool_restriction(self, small_wc_graph):
        result = greedy(small_wc_graph, 2, num_runs=10, rng=5, candidates=[0, 1, 2])
        assert set(result.seeds) <= {0, 1, 2}

    def test_pool_smaller_than_k_rejected(self, small_wc_graph):
        with pytest.raises(ValueError):
            greedy(small_wc_graph, 4, num_runs=5, candidates=[0, 1])

    def test_time_at_k_monotone(self, small_wc_graph):
        result = greedy(small_wc_graph, 3, num_runs=10, rng=6)
        times = result.extras["time_at_k"]
        assert len(times) == 3
        assert times == sorted(times)

    def test_lt_model(self, small_lt_graph):
        result = greedy(small_lt_graph, 2, model="LT", num_runs=20, rng=7)
        assert len(result.seeds) == 2


class TestLemma10:
    def test_formula_by_hand(self):
        import math

        n, k, epsilon, ell, opt = 100, 2, 0.5, 1.0, 10.0
        expected = (
            (8 * k * k + 2 * k * epsilon)
            * n
            * ((ell + 1) * math.log(n) + math.log(k))
            / (epsilon**2 * opt)
        )
        assert recommended_monte_carlo_runs(n, k, epsilon, ell, opt) == math.ceil(expected)

    def test_exceeds_folklore_10000(self):
        # The paper notes Lemma 10's r always exceeded 10000 in their runs.
        r = recommended_monte_carlo_runs(15_000, 50, 0.1, 1.0, 1000.0)
        assert r > 10_000

    def test_decreases_with_opt(self):
        small_opt = recommended_monte_carlo_runs(100, 2, 0.5, 1.0, 5.0)
        large_opt = recommended_monte_carlo_runs(100, 2, 0.5, 1.0, 50.0)
        assert small_opt > large_opt

    def test_grows_quadratically_with_k(self):
        r2 = recommended_monte_carlo_runs(100, 2, 0.5, 1.0, 10.0)
        r20 = recommended_monte_carlo_runs(100, 20, 0.5, 1.0, 10.0)
        assert r20 > 50 * r2  # ~(20/2)^2 = 100x, allow slack for linear terms

    def test_rejects_bad_opt(self):
        with pytest.raises(ValueError):
            recommended_monte_carlo_runs(100, 2, 0.5, 1.0, 0.0)
