"""Tests for Borgs et al.'s RIS."""

import math

import pytest

from repro.algorithms import ris, ris_threshold
from repro.graphs import star_digraph


class TestThreshold:
    def test_formula(self):
        n, m, k, epsilon, ell = 100, 400, 5, 0.2, 1.0
        expected = k * ell * (m + n) * math.log(n) / epsilon**3
        assert ris_threshold(n, m, k, epsilon, ell) == pytest.approx(expected)

    def test_constant_scales(self):
        base = ris_threshold(100, 400, 5, 0.2, 1.0)
        assert ris_threshold(100, 400, 5, 0.2, 1.0, tau_constant=2.0) == pytest.approx(2 * base)

    def test_epsilon_cubed(self):
        loose = ris_threshold(100, 400, 5, 0.4, 1.0)
        tight = ris_threshold(100, 400, 5, 0.2, 1.0)
        assert tight == pytest.approx(8 * loose)


class TestRis:
    def test_star_hub_found(self):
        g = star_digraph(20, prob=1.0, outward=True)
        result = ris(g, 1, rng=1, epsilon=0.5)
        assert result.seeds == [0]

    def test_cost_threshold_respected(self, small_wc_graph):
        result = ris(small_wc_graph, 2, rng=2, epsilon=0.5, tau_constant=0.1)
        assert result.extras["total_cost"] >= result.extras["tau"]

    def test_stops_promptly_after_threshold(self, small_wc_graph):
        # The final RR set may overshoot, but only by one set's cost.
        result = ris(small_wc_graph, 2, rng=3, epsilon=0.5, tau_constant=0.1)
        tau = result.extras["tau"]
        overshoot = result.extras["total_cost"] - tau
        # One RR set costs at most n + m.
        assert overshoot <= small_wc_graph.n + small_wc_graph.m

    def test_max_rr_sets_safety_valve(self, small_wc_graph):
        result = ris(small_wc_graph, 2, rng=4, epsilon=0.2, max_rr_sets=50)
        assert result.extras["num_rr_sets"] == 50

    def test_more_work_for_smaller_epsilon(self, small_wc_graph):
        loose = ris(small_wc_graph, 2, rng=5, epsilon=0.8, tau_constant=0.1)
        tight = ris(small_wc_graph, 2, rng=5, epsilon=0.4, tau_constant=0.1)
        assert tight.extras["num_rr_sets"] > loose.extras["num_rr_sets"]

    def test_seed_contract(self, small_wc_graph):
        result = ris(small_wc_graph, 4, rng=6, epsilon=0.5, tau_constant=0.1)
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_lt_model_supported(self, small_lt_graph):
        result = ris(small_lt_graph, 2, model="LT", rng=7, epsilon=0.5, tau_constant=0.1)
        assert result.model == "LT"
        assert len(result.seeds) == 2
