"""Tests for SIMPATH."""

import pytest

from repro.algorithms import greedy_vertex_cover, sigma_within, simpath, simpath_spread
from repro.analysis import exact_spread_lt
from repro.graphs import DiGraph, GraphBuilder, path_digraph, star_digraph


class TestSigmaWithin:
    def test_isolated_node(self):
        g = DiGraph(2, [], [])
        assert sigma_within(g, 0, {0, 1}, eta=1e-6) == 1.0

    def test_single_edge(self):
        g = DiGraph(2, [0], [1], [0.5])
        assert sigma_within(g, 0, {0, 1}, eta=1e-6) == pytest.approx(1.5)

    def test_chain_weight_products(self):
        g = path_digraph(4, prob=0.5)
        # Paths: (), (0-1), (0-1-2), (0-1-2-3) -> 1 + .5 + .25 + .125.
        assert sigma_within(g, 0, set(range(4)), eta=1e-6) == pytest.approx(1.875)

    def test_eta_prunes_long_paths(self):
        g = path_digraph(4, prob=0.5)
        # eta = 0.3 prunes the two paths with weight < 0.3.
        assert sigma_within(g, 0, set(range(4)), eta=0.3) == pytest.approx(1.5)

    def test_allowed_set_restricts(self):
        g = path_digraph(4, prob=0.5)
        assert sigma_within(g, 0, {0, 1}, eta=1e-6) == pytest.approx(1.5)

    def test_simple_paths_only_in_cycle(self):
        g = DiGraph(2, [0, 1], [1, 0], [0.5, 0.5])
        # From 0: empty path + 0->1; the cycle back to 0 is not simple.
        assert sigma_within(g, 0, {0, 1}, eta=1e-9) == pytest.approx(1.5)

    def test_requires_start_in_allowed(self):
        g = path_digraph(3)
        with pytest.raises(ValueError):
            sigma_within(g, 0, {1, 2}, eta=0.1)


class TestSimpathSpread:
    def test_matches_exact_lt_on_small_graph(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 2, 0.5)
        builder.add_edge(0, 2, 0.3)
        builder.add_edge(2, 3, 0.7)
        g = builder.build()
        for seeds in ([0], [1], [0, 3]):
            path_estimate = simpath_spread(g, seeds, eta=1e-9)
            exact = exact_spread_lt(g, seeds)
            assert path_estimate == pytest.approx(exact, abs=1e-6), seeds

    def test_multi_seed_excludes_other_seeds_paths(self):
        g = path_digraph(3, prob=1.0)
        # sigma({0, 1}): seed 0's enumeration must avoid seed 1, giving 1;
        # seed 1 contributes 1 + 1 (node 2). Total 3 = exact spread.
        assert simpath_spread(g, [0, 1], eta=1e-9) == pytest.approx(3.0)


class TestVertexCover:
    def test_cover_is_valid(self, small_lt_graph):
        cover = greedy_vertex_cover(small_lt_graph)
        for u, v in zip(small_lt_graph.src.tolist(), small_lt_graph.dst.tolist()):
            assert u in cover or v in cover

    def test_star_cover_is_hub(self):
        g = star_digraph(8, prob=0.5, outward=True)
        cover = greedy_vertex_cover(g)
        # Matching-based 2-approx picks hub plus one leaf per matched edge;
        # the hub must be covered after the first edge.
        assert 0 in cover


class TestSimpath:
    def test_star_hub_found(self):
        from repro.graphs import normalize_in_weights

        g = normalize_in_weights(star_digraph(10, prob=1.0, outward=True))
        result = simpath(g, 1)
        assert result.seeds == [0]

    def test_seed_contract(self, small_lt_graph):
        result = simpath(small_lt_graph, 4)
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_vertex_cover_and_direct_agree(self, small_lt_graph):
        with_cover = simpath(small_lt_graph, 3, use_vertex_cover=True)
        without_cover = simpath(small_lt_graph, 3, use_vertex_cover=False)
        assert with_cover.seeds == without_cover.seeds

    def test_rejects_ic_model(self, small_wc_graph):
        with pytest.raises(ValueError, match="LT model only"):
            simpath(small_wc_graph, 2, model="IC")

    def test_quality_near_greedy(self, small_lt_graph):
        """SIMPATH should be within ~20% of MC-greedy's spread."""
        from repro.algorithms import celf
        from repro.diffusion import estimate_spread

        sp = simpath(small_lt_graph, 3)
        reference = celf(small_lt_graph, 3, model="LT", num_runs=60, rng=2)
        spread_sp = estimate_spread(
            small_lt_graph, sp.seeds, model="LT", num_samples=1500, rng=3
        ).mean
        spread_ref = estimate_spread(
            small_lt_graph, reference.seeds, model="LT", num_samples=1500, rng=4
        ).mean
        assert spread_sp >= 0.8 * spread_ref

    def test_time_at_k_recorded(self, small_lt_graph):
        result = simpath(small_lt_graph, 3)
        assert len(result.extras["time_at_k"]) == 3

    def test_eta_validation(self, small_lt_graph):
        with pytest.raises(ValueError):
            simpath(small_lt_graph, 2, eta=0.0)
