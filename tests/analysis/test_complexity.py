"""Tests for the Section 5 asymptotic cost models."""

import pytest

from repro.analysis import (
    borgs_lower_bound,
    greedy_time_bound,
    ris_time_bound,
    tim_time_bound,
)


class TestOrderings:
    def test_tim_beats_ris_asymptotically(self):
        # Section 5: RIS is larger by a factor of ~ell * log n / epsilon.
        n, m, k, ell, epsilon = 10**6, 10**7, 50, 1.0, 0.1
        assert tim_time_bound(n, m, k, ell, epsilon) < ris_time_bound(n, m, k, ell, epsilon)

    def test_ris_over_tim_ratio(self):
        import math

        n, m, k, ell, epsilon = 10**6, 10**7, 50, 1.0, 0.1
        ratio = ris_time_bound(n, m, k, ell, epsilon) / tim_time_bound(n, m, k, ell, epsilon)
        expected = k * ell * ell * math.log(n) / ((k + ell) * epsilon)
        assert ratio == pytest.approx(expected)

    def test_greedy_dwarfs_both(self):
        n, m, k, ell, epsilon = 10**4, 10**5, 50, 1.0, 0.1
        greedy = greedy_time_bound(n, m, k, num_runs=10_000)
        assert greedy > 100 * ris_time_bound(n, m, k, ell, epsilon)
        assert greedy > 100 * tim_time_bound(n, m, k, ell, epsilon)

    def test_tim_is_near_linear(self):
        # Doubling m should roughly double TIM's bound (for fixed n).
        base = tim_time_bound(1000, 10_000, 10, 1.0, 0.2)
        doubled = tim_time_bound(1000, 20_000, 10, 1.0, 0.2)
        # Exactly (2m + n) / (m + n) ~ 1.91 for these sizes.
        assert doubled / base == pytest.approx(21_000 / 11_000)

    def test_lower_bound_is_m_plus_n(self):
        assert borgs_lower_bound(100, 400) == 500.0

    def test_all_bounds_exceed_lower_bound(self):
        n, m, k, ell, epsilon = 10**4, 10**5, 10, 1.0, 0.5
        floor = borgs_lower_bound(n, m)
        assert tim_time_bound(n, m, k, ell, epsilon) > floor
        assert ris_time_bound(n, m, k, ell, epsilon) > floor
        assert greedy_time_bound(n, m, k, 100) > floor


class TestValidation:
    def test_k_range_enforced(self):
        with pytest.raises(ValueError):
            tim_time_bound(100, 10, 0, 1.0, 0.5)
        with pytest.raises(ValueError):
            ris_time_bound(100, 10, 101, 1.0, 0.5)

    def test_runs_positive(self):
        with pytest.raises(ValueError):
            greedy_time_bound(100, 10, 5, 0)
