"""Tests for the exact world-enumeration oracles."""

import pytest

from repro.analysis import (
    brute_force_opt,
    exact_activation_probability_ic,
    exact_spread_ic,
    exact_spread_lt,
)
from repro.diffusion import estimate_spread
from repro.graphs import DiGraph, GraphBuilder, path_digraph


class TestExactSpreadIC:
    def test_deterministic_path(self):
        g = path_digraph(4, prob=1.0)
        assert exact_spread_ic(g, [0]) == pytest.approx(4.0)

    def test_single_edge(self):
        g = path_digraph(2, prob=0.3)
        assert exact_spread_ic(g, [0]) == pytest.approx(1.3)

    def test_two_hop_chain(self):
        g = path_digraph(3, prob=0.5)
        # E = 1 + 0.5 + 0.25.
        assert exact_spread_ic(g, [0]) == pytest.approx(1.75)

    def test_diamond(self, diamond_graph):
        # I(0) = 1 + 2*0.5 + P(3 activated).
        # P(3) = 1 - (1 - 0.25)^2 = 0.4375.
        assert exact_spread_ic(diamond_graph, [0]) == pytest.approx(2.4375)

    def test_figure1_example(self, figure1_graph):
        # Spread of {v2}: 1 + p(v2->v1 path union) + p(v4) ... validated
        # against the Monte-Carlo estimator instead of hand algebra.
        exact = exact_spread_ic(figure1_graph, [1])
        mc = estimate_spread(figure1_graph, [1], num_samples=30000, rng=1).mean
        assert exact == pytest.approx(mc, abs=0.03)

    def test_empty_seeds(self):
        assert exact_spread_ic(path_digraph(3, prob=0.5), []) == 0.0

    def test_guard_on_large_graphs(self):
        from repro.graphs import gnm_random_digraph, weighted_cascade

        g = weighted_cascade(gnm_random_digraph(30, 60, rng=1))
        with pytest.raises(ValueError, match="too many random edges"):
            exact_spread_ic(g, [0])

    def test_p1_edges_do_not_count_toward_guard(self):
        g = path_digraph(30, prob=1.0)  # 29 edges, all certain
        assert exact_spread_ic(g, [0]) == 30.0


class TestExactActivationProbability:
    def test_direct_edge(self):
        g = path_digraph(2, prob=0.3)
        assert exact_activation_probability_ic(g, [0], 1) == pytest.approx(0.3)

    def test_two_paths(self, diamond_graph):
        assert exact_activation_probability_ic(diamond_graph, [0], 3) == pytest.approx(0.4375)

    def test_seed_activates_itself(self):
        g = path_digraph(3, prob=0.1)
        assert exact_activation_probability_ic(g, [1], 1) == pytest.approx(1.0)

    def test_unreachable_target(self):
        g = path_digraph(3, prob=1.0)
        assert exact_activation_probability_ic(g, [1], 0) == 0.0


class TestExactSpreadLT:
    def test_deterministic_chain(self):
        g = path_digraph(4, prob=1.0)
        assert exact_spread_lt(g, [0]) == pytest.approx(4.0)

    def test_single_weighted_edge(self):
        g = DiGraph(2, [0], [1], [0.4])
        assert exact_spread_lt(g, [0]) == pytest.approx(1.4)

    def test_matches_monte_carlo(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 2, 0.6)
        builder.add_edge(0, 2, 0.3)
        builder.add_edge(2, 3, 0.7)
        g = builder.build()
        exact = exact_spread_lt(g, [0])
        mc = estimate_spread(g, [0], model="LT", num_samples=30000, rng=2).mean
        assert exact == pytest.approx(mc, abs=0.03)

    def test_guard_on_large_worlds(self):
        from repro.graphs import gnm_random_digraph, uniform_random_lt

        g = uniform_random_lt(gnm_random_digraph(40, 300, rng=3), rng=4)
        with pytest.raises(ValueError, match="too many LT worlds"):
            exact_spread_lt(g, [0])


class TestBruteForceOpt:
    def test_path_head_is_optimal(self):
        g = path_digraph(4, prob=1.0)
        seeds, spread = brute_force_opt(g, 1, "IC")
        assert seeds == [0]
        assert spread == pytest.approx(4.0)

    def test_k2_on_disconnected_chains(self):
        builder = GraphBuilder(num_nodes=6)
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(1, 2, 1.0)
        builder.add_edge(3, 4, 1.0)
        g = builder.build()
        seeds, spread = brute_force_opt(g, 2, "IC")
        assert seeds == [0, 3]
        assert spread == pytest.approx(5.0)

    def test_figure1_opt_is_v2(self, figure1_graph):
        # v2 reaches v4 and then v1 (p=1 edge v4->v1): highest exact spread?
        seeds, spread = brute_force_opt(figure1_graph, 1, "IC")
        # The exact best singleton is whichever maximises the oracle; check
        # consistency rather than hard-coding intuition.
        best = max(range(4), key=lambda v: exact_spread_ic(figure1_graph, [v]))
        assert seeds == [best]
        assert spread == pytest.approx(exact_spread_ic(figure1_graph, [best]))

    def test_lt_variant(self):
        g = DiGraph(3, [0, 1], [1, 2], [0.5, 0.5])
        seeds, _ = brute_force_opt(g, 1, "LT")
        assert seeds == [0]
