"""Tests for Chernoff-bound helpers and sample-size requirements."""

import math

import pytest

from repro.analysis import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    required_theta_failure_probability,
    theta_lower_bound,
)
from repro.core.parameters import lambda_param


class TestChernoff:
    def test_upper_tail_formula(self):
        count, mean, delta = 100, 0.3, 0.5
        expected = math.exp(-(delta**2) / (2 + delta) * count * mean)
        assert chernoff_upper_tail(count, mean, delta) == pytest.approx(expected)

    def test_lower_tail_formula(self):
        count, mean, delta = 100, 0.3, 0.5
        expected = math.exp(-(delta**2) / 2 * count * mean)
        assert chernoff_lower_tail(count, mean, delta) == pytest.approx(expected)

    def test_lower_tail_tighter_than_upper(self):
        # exp(-d^2 c mu / 2) <= exp(-d^2 c mu / (2 + d)) for d > 0.
        assert chernoff_lower_tail(50, 0.5, 0.3) <= chernoff_upper_tail(50, 0.5, 0.3)

    def test_decays_with_count(self):
        assert chernoff_upper_tail(1000, 0.3, 0.5) < chernoff_upper_tail(10, 0.3, 0.5)

    def test_bounds_are_probabilities_for_reasonable_inputs(self):
        assert 0.0 < chernoff_upper_tail(10, 0.1, 0.1) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(0, 0.5, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5, 0.5)
        with pytest.raises(ValueError):
            chernoff_upper_tail(10, 0.5, 0.0)


class TestThetaLowerBound:
    def test_equals_lambda_over_opt(self):
        n, k, epsilon, ell, opt = 200, 3, 0.4, 1.0, 25.0
        assert theta_lower_bound(n, k, epsilon, ell, opt) == pytest.approx(
            lambda_param(n, k, epsilon, ell) / opt
        )

    def test_larger_opt_needs_fewer_samples(self):
        small = theta_lower_bound(200, 3, 0.4, 1.0, 10.0)
        large = theta_lower_bound(200, 3, 0.4, 1.0, 100.0)
        assert large < small


class TestLemma3FailureProbability:
    def test_prescribed_theta_achieves_target(self):
        """With θ at Equation 2's bound, the per-set failure probability must
        be below n^{-ell} / C(n, k) as Lemma 3 claims."""
        import math as _math

        n, k, epsilon, ell = 100, 2, 0.5, 1.0
        opt = 20.0
        theta = math.ceil(theta_lower_bound(n, k, epsilon, ell, opt))
        # Worst case is spread = opt (rho as large as possible).
        failure = required_theta_failure_probability(theta, n, k, epsilon, opt, opt)
        from repro.core.parameters import log_binomial

        target = math.exp(-ell * _math.log(n) - log_binomial(n, k))
        assert failure <= target * 1.01

    def test_failure_grows_when_theta_shrinks(self):
        base = required_theta_failure_probability(10_000, 100, 2, 0.5, 20.0, 10.0)
        tiny = required_theta_failure_probability(100, 100, 2, 0.5, 20.0, 10.0)
        assert tiny > base
