"""Statistical regression harness for the paper's approximation guarantee.

Theorem 1 / Theorem 3: TIM returns a ``(1 - 1/e - ε)``-approximate seed set
with probability at least ``1 - n^{-ℓ}``.  On graphs small enough for exact
world enumeration we can check the guarantee *against ground truth*: OPT
comes from :func:`repro.analysis.brute_force_opt` and each returned seed
set is scored by exact spread — no Monte-Carlo slack on the verdict.

The harness runs 20 seeded trials per scenario (a fast, tier-1
parameterization; the bound permits at most ``n^{-ℓ}``-mass of failures, so
even one genuine miss across the fixed seeds flags a regression loudly) and
also exercises the *dynamic* path: after an edge update and an incremental
repair, the repaired sketch's selection must still clear the bound on the
updated graph.
"""

import math

import numpy as np
import pytest

from repro.analysis import brute_force_opt, exact_spread_ic, exact_spread_lt
from repro.core import imm, tim
from repro.dynamic import DynamicDiGraph
from repro.graphs import from_edges
from repro.sketch import SketchIndex

TRIALS = 20
EPSILON = 0.3
GUARANTEE = 1.0 - 1.0 / math.e - EPSILON

#: Two fixed IC scenarios: a hub-and-chain mix and a denser random pattern,
#: both within the exact-enumeration budget (<= 16 probabilistic edges).
IC_SCENARIOS = {
    "hub-chain": (
        7,
        [
            (0, 1, 0.6), (0, 2, 0.6), (0, 3, 0.4), (1, 4, 0.5),
            (2, 4, 0.5), (3, 5, 0.7), (4, 6, 0.3), (5, 6, 0.4),
            (6, 0, 0.2),
        ],
    ),
    "dense-random": (
        8,
        [
            (0, 1, 0.35), (1, 2, 0.45), (2, 3, 0.25), (3, 0, 0.55),
            (4, 5, 0.65), (5, 6, 0.3), (6, 7, 0.5), (7, 4, 0.4),
            (0, 4, 0.3), (2, 6, 0.45), (5, 1, 0.35), (7, 3, 0.25),
        ],
    ),
}

LT_SCENARIO = (
    6,
    [
        (0, 1, 0.5), (2, 1, 0.3), (1, 3, 0.6), (0, 3, 0.2),
        (3, 4, 0.7), (4, 5, 0.5), (5, 0, 0.4),
    ],
)


@pytest.fixture(scope="module", params=sorted(IC_SCENARIOS))
def ic_case(request):
    n, edges = IC_SCENARIOS[request.param]
    graph = from_edges(edges, num_nodes=n)
    _, opt = brute_force_opt(graph, 2, model="IC")
    return graph, opt


class TestTimGuaranteeIC:
    def test_twenty_seeded_trials_meet_bound(self, ic_case):
        graph, opt = ic_case
        floor = GUARANTEE * opt
        spreads = []
        for seed in range(TRIALS):
            result = tim(graph, 2, epsilon=EPSILON, rng=seed)
            spreads.append(exact_spread_ic(graph, result.seeds))
        spreads = np.asarray(spreads)
        failures = int((spreads < floor).sum())
        assert failures == 0, (
            f"{failures}/{TRIALS} trials below (1 - 1/e - ε)·OPT = {floor:.3f}: "
            f"min spread {spreads.min():.3f}"
        )
        # The bound should not be met vacuously: greedy on graphs this small
        # is essentially optimal, so the mean must sit far above the floor.
        assert spreads.mean() >= 0.95 * opt

    def test_trials_are_near_optimal_in_aggregate(self, ic_case):
        """Beyond the worst-case floor: in practice TIM at ε = 0.3 should
        recover ≥ 95% of OPT in at least half the seeded trials — a much
        tighter regression tripwire than the theorem's own bound (which any
        size-2 set clears on graphs this small)."""
        graph, opt = ic_case
        near_optimal = sum(
            exact_spread_ic(graph, tim(graph, 2, epsilon=EPSILON, rng=seed).seeds)
            >= 0.95 * opt
            for seed in range(TRIALS)
        )
        assert near_optimal >= TRIALS // 2


class TestImmGuaranteeIC:
    def test_twenty_seeded_trials_meet_bound(self, ic_case):
        """IMM's martingale bound promises the same (1 - 1/e - ε)·OPT floor
        as TIM — check it against ground truth on the exact-enumeration
        scenarios, same seeds and ε as the TIM harness above."""
        graph, opt = ic_case
        floor = GUARANTEE * opt
        spreads = []
        for seed in range(TRIALS):
            result = imm(graph, 2, epsilon=EPSILON, rng=seed)
            spreads.append(exact_spread_ic(graph, result.seeds))
        spreads = np.asarray(spreads)
        failures = int((spreads < floor).sum())
        assert failures == 0, (
            f"{failures}/{TRIALS} IMM trials below (1 - 1/e - ε)·OPT = "
            f"{floor:.3f}: min spread {spreads.min():.3f}"
        )
        assert spreads.mean() >= 0.95 * opt

    def test_lower_bound_never_exceeds_opt(self, ic_case):
        """The certified LB the θ derivation rests on must actually lower-
        bound OPT (with the harness seeds; the theorem allows n^{-ℓ} slack)."""
        graph, opt = ic_case
        for seed in range(0, TRIALS, 4):
            result = imm(graph, 2, epsilon=EPSILON, rng=seed)
            assert result.opt_lower_bound <= opt * (1.0 + 1e-9)


class TestTimGuaranteeLT:
    def test_twenty_seeded_trials_meet_bound(self):
        n, edges = LT_SCENARIO
        graph = from_edges(edges, num_nodes=n)
        _, opt = brute_force_opt(graph, 2, model="LT")
        floor = GUARANTEE * opt
        for seed in range(TRIALS):
            result = tim(graph, 2, epsilon=EPSILON, model="LT", rng=seed)
            assert exact_spread_lt(graph, result.seeds) >= floor


class TestGuaranteeSurvivesRepair:
    def test_repaired_sketch_selection_meets_bound_on_new_graph(self):
        """After an update + incremental repair, selecting from the repaired
        sketch still clears (1 - 1/e - ε)·OPT of the *updated* graph."""
        n, edges = IC_SCENARIOS["hub-chain"]
        graph = from_edges(edges, num_nodes=n)
        dynamic = DynamicDiGraph(graph)
        for seed in range(0, TRIALS, 4):  # 5 repair trials ride the harness
            index = SketchIndex.build(graph, "IC", theta=4000, rng=seed,
                                      trace_edges=True)
            delta = dynamic.delete_edge(0, 2)
            index.apply_update(delta, rng=seed + 1)
            seeds = index.select(2).seeds
            _, opt = brute_force_opt(dynamic.graph, 2, model="IC")
            assert exact_spread_ic(dynamic.graph, seeds) >= GUARANTEE * opt
            # Reset for the next trial.
            dynamic = DynamicDiGraph(graph)
