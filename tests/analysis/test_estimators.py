"""Tests for EPT/KPT estimators (make Lemmas 4 and 5 executable)."""

import pytest

from repro.analysis import (
    estimate_ept,
    estimate_kpt_by_definition,
    estimate_kpt_by_kappa,
    sample_indegree_weighted_node,
    sample_indegree_weighted_set,
)
from repro.graphs import DiGraph, star_digraph
from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


class TestVStarSampling:
    def test_proportional_to_indegree(self):
        # Node 2 has indegree 2, node 1 indegree 1: expect 2:1 draw ratio.
        g = DiGraph(3, [0, 0, 1], [1, 2, 2])
        rng = RandomSource(1)
        draws = [sample_indegree_weighted_node(g, rng) for _ in range(6000)]
        ratio = draws.count(2) / max(draws.count(1), 1)
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_zero_indegree_never_drawn(self):
        g = DiGraph(3, [0, 0, 1], [1, 2, 2])
        rng = RandomSource(2)
        assert all(sample_indegree_weighted_node(g, rng) != 0 for _ in range(500))

    def test_edgeless_rejected(self):
        with pytest.raises(ValueError):
            sample_indegree_weighted_node(DiGraph(3, [], []))

    def test_set_deduplicates(self, small_wc_graph):
        seeds = sample_indegree_weighted_set(small_wc_graph, 10, rng=3)
        assert len(seeds) == len(set(seeds))
        assert 1 <= len(seeds) <= 10


class TestEptEstimation:
    def test_star_ept_by_hand(self):
        # Star hub -> 9 leaves with p=1.  Random root: hub (p=1/10) gives RR
        # set {hub} width 0; leaf gives {leaf, hub} width 1.
        # EPT = 0.9.
        g = star_digraph(10, prob=1.0, outward=True)
        sampler = make_rr_sampler(g, "IC")
        ept = estimate_ept(sampler, num_samples=4000, rng=4)
        assert ept == pytest.approx(0.9, abs=0.05)

    def test_positive_on_random_graph(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        assert estimate_ept(sampler, num_samples=500, rng=5) > 0


class TestKptEstimators:
    def test_lemma5_agreement(self, small_wc_graph):
        """KPT by definition (two-level MC) vs KPT = n·E[κ(R)] (Lemma 5)."""
        k = 5
        by_definition = estimate_kpt_by_definition(
            small_wc_graph, k, num_outer=250, num_inner=25, rng=6
        )
        sampler = make_rr_sampler(small_wc_graph, "IC")
        by_kappa = estimate_kpt_by_kappa(small_wc_graph, k, sampler, num_samples=6000, rng=7)
        assert by_kappa == pytest.approx(by_definition, rel=0.15)

    def test_kpt_monotone_in_k(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        k1 = estimate_kpt_by_kappa(small_wc_graph, 1, sampler, num_samples=3000, rng=8)
        k10 = estimate_kpt_by_kappa(small_wc_graph, 10, sampler, num_samples=3000, rng=8)
        assert k10 > k1

    def test_kpt_bounded_by_n(self, small_wc_graph):
        sampler = make_rr_sampler(small_wc_graph, "IC")
        kpt = estimate_kpt_by_kappa(small_wc_graph, 50, sampler, num_samples=2000, rng=9)
        assert kpt <= small_wc_graph.n
