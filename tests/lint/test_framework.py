"""Framework mechanics: parsing, scoping, suppression, rule selection."""

import pytest

from repro.lint.findings import Finding, LintUsageError
from repro.lint.framework import (
    PARSE_ERROR_CODE,
    ParsedModule,
    collect_files,
    find_project_root,
    lint_paths,
    lint_source,
    registered_rules,
    select_rules,
)

BAD_RNG = "import numpy as np\nVALUES = np.random.rand(3)\n"


def codes(findings):
    return [finding.code for finding in findings]


class TestRegistry:
    def test_all_ten_rules_registered(self):
        assert sorted(registered_rules()) == [
            "RL101", "RL201", "RL301", "RL401", "RL402", "RL501", "RL601",
            "RL701", "RL702", "RL703",
        ]

    def test_select_subset(self):
        rules = select_rules(select=["RL101", "RL301"])
        assert sorted(rule.code for rule in rules) == ["RL101", "RL301"]

    def test_ignore_subset(self):
        rules = select_rules(ignore=["RL501"])
        assert "RL501" not in [rule.code for rule in rules]

    def test_unknown_code_is_usage_error(self):
        with pytest.raises(LintUsageError, match="RL999"):
            select_rules(select=["RL999"])
        with pytest.raises(LintUsageError, match="RL000"):
            select_rules(ignore=["RL000"])


class TestLintSource:
    def test_clean_snippet_has_no_findings(self):
        assert lint_source("x = 1\n") == []

    def test_syntax_error_yields_rl000(self):
        findings = lint_source("def broken(:\n    pass\n")
        assert codes(findings) == [PARSE_ERROR_CODE]
        assert findings[0].line == 1

    def test_virtual_path_scopes_repo_rules(self):
        # The same snippet fires inside src/repro and stays silent outside.
        assert codes(lint_source(BAD_RNG)) == ["RL101"]
        assert lint_source(BAD_RNG, path="scripts/tool.py") == []

    def test_inline_suppression_comment(self):
        suppressed = (
            "import numpy as np\n"
            "VALUES = np.random.rand(3)  # repro-lint: disable=RL101\n"
        )
        assert lint_source(suppressed) == []

    def test_suppression_is_per_code(self):
        wrong_code = (
            "import numpy as np\n"
            "VALUES = np.random.rand(3)  # repro-lint: disable=RL201\n"
        )
        assert codes(lint_source(wrong_code)) == ["RL101"]

    def test_findings_sorted_by_location(self):
        source = (
            "import numpy as np\n"
            "B = np.random.rand(2)\n"
            "A = np.random.default_rng()\n"
        )
        findings = lint_source(source)
        assert [finding.line for finding in findings] == [2, 3]


class TestFindings:
    def test_fingerprint_ignores_line(self):
        a = Finding(path="src/repro/x.py", line=3, col=1, code="RL101", message="m")
        b = Finding(path="src/repro/x.py", line=30, col=9, code="RL101", message="m")
        assert a.fingerprint() == b.fingerprint()
        assert a != b

    def test_render_is_path_line_col_code(self):
        finding = Finding(path="src/repro/x.py", line=3, col=7,
                          code="RL101", message="boom")
        assert finding.render() == "src/repro/x.py:3:7: RL101 boom"


class TestPaths:
    def test_find_project_root_walks_to_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path

    def test_collect_skips_pycache(self, tmp_path):
        pkg = tmp_path / "src"
        (pkg / "__pycache__").mkdir(parents=True)
        (pkg / "mod.py").write_text("x = 1\n")
        (pkg / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = collect_files([pkg], tmp_path)
        assert [f.name for f in files] == ["mod.py"]

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError, match="no such file"):
            collect_files([tmp_path / "nope"], tmp_path)

    def test_lint_paths_relativizes_against_root(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(BAD_RNG)
        findings = lint_paths([pkg], root=tmp_path)
        assert codes(findings) == ["RL101"]
        assert findings[0].path == "src/repro/bad.py"
        assert findings[0].line == 2

    def test_lint_paths_reports_unparsable_file(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def broken(:\n")
        findings = lint_paths([pkg], root=tmp_path)
        assert codes(findings) == [PARSE_ERROR_CODE]

    def test_empty_paths_is_usage_error(self):
        with pytest.raises(LintUsageError, match="no paths"):
            lint_paths([])


class TestFingerprintStability:
    """The baseline ratchet must survive edits that don't touch the finding."""

    @staticmethod
    def fingerprints(root, select):
        return {f.fingerprint()
                for f in lint_paths([root / "src"], root=root, select=[select])}

    def test_moving_a_flagged_function_keeps_its_fingerprint(self, project):
        before_src = """\
            import numpy as np

            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr.tolist()
        """
        after_src = """\
            import numpy as np

            def helper():
                return 0


            def another():
                return 1


            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr.tolist()
        """
        root = project({"repro/reader.py": before_src})
        before = self.fingerprints(root, "RL703")
        root = project({"repro/reader.py": after_src})
        after = self.fingerprints(root, "RL703")
        assert before == after and before

    def test_renaming_an_unrelated_sibling_keeps_the_fingerprint(self, project):
        def source(sibling):
            return f"""\
                import numpy as np

                def {sibling}():
                    return 0

                def read(path):
                    arr = np.memmap(path, dtype="f4")
                    return arr.tolist()
            """

        root = project({"repro/reader.py": source("old_name")})
        before = self.fingerprints(root, "RL703")
        root = project({"repro/reader.py": source("completely_new_name")})
        after = self.fingerprints(root, "RL703")
        assert before == after and before

    def test_file_rule_fingerprints_survive_line_shifts_too(self, project):
        root = project({"repro/bad.py": BAD_RNG})
        before = self.fingerprints(root, "RL101")
        root = project({"repro/bad.py": "# a new leading comment\n" + BAD_RNG})
        after = self.fingerprints(root, "RL101")
        assert before == after and before

    def test_dataflow_messages_carry_no_line_numbers(self, project):
        root = project({"repro/reader.py": """\
            import numpy as np

            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr.tolist()
        """})
        [finding] = lint_paths([root / "src"], root=root, select=["RL703"])
        assert str(finding.line) not in finding.message


class TestShortCircuitParsing:
    """Files no selected rule applies to are never read or parsed."""

    def test_out_of_scope_files_are_skipped(self, project):
        from repro.lint.framework import run_lint

        root = project({"repro/mod.py": "x = 1\n"})
        scripts = root / "scripts"
        scripts.mkdir()
        (scripts / "tool.py").write_text("def broken(:\n")  # would be RL000
        run = run_lint([root / "src", scripts], root=root)
        assert run.findings == []
        assert run.stats.files_skipped == 1
        assert run.stats.files_analyzed == 1

    def test_select_narrowing_skips_files_the_rule_ignores(self, project):
        from repro.lint.framework import run_lint

        root = project({"repro/mod.py": "x = 1\n"})
        # RL501 is a project rule with no index needs: nothing gets parsed.
        run = run_lint([root / "src"], root=root, select=["RL501"])
        assert run.stats.files_skipped == 1
        assert run.stats.files_analyzed == 0


class TestParsedModule:
    def test_parent_and_ancestors(self):
        module = ParsedModule.from_source("def f():\n    return 1\n", "src/repro/m.py")
        ret = module.tree.body[0].body[0]
        assert module.parent(ret) is module.tree.body[0]
        assert list(module.ancestors(ret))[-1] is module.tree

    def test_in_repro_src(self):
        inside = ParsedModule.from_source("x = 1\n", "src/repro/m.py")
        outside = ParsedModule.from_source("x = 1\n", "benchmarks/m.py")
        assert inside.in_repro_src and not outside.in_repro_src
