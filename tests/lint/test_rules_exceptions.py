"""RL301 exception-policy: swallowing broad handlers fire; the rest don't."""

from repro.lint.framework import lint_source


def rl301(source, path="src/repro/_fixture.py"):
    return [f for f in lint_source(source, path=path) if f.code == "RL301"]


class TestSwallowing:
    def test_bare_except_pass(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        )
        findings = rl301(source)
        assert len(findings) == 1
        assert (findings[0].line, findings[0].code) == (4, "RL301")
        assert "bare except:" in findings[0].message

    def test_broad_exception_pass(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        findings = rl301(source)
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "except Exception:" in findings[0].message

    def test_base_exception_in_tuple(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, BaseException):\n"
            "        log()\n"
        )
        findings = rl301(source)
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_bound_name_never_used(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        cleanup()\n"
        )
        assert len(rl301(source)) == 1


class TestSanctionedHandlers:
    def test_narrow_handler_out_of_scope(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except OSError:\n"
            "        pass\n"
        )
        assert rl301(source) == []

    def test_broad_handler_that_reraises(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "        raise\n"
        )
        assert rl301(source) == []

    def test_translation_into_typed_error(self):
        source = (
            "def f(path):\n"
            "    try:\n"
            "        return load(path)\n"
            "    except Exception as exc:\n"
            "        raise SketchFileError(str(exc)) from exc\n"
        )
        assert rl301(source) == []

    def test_structured_error_payload_uses_exception(self):
        source = (
            "def f(request):\n"
            "    try:\n"
            "        return handle(request)\n"
            "    except Exception as exc:\n"
            "        return ErrorResponse.from_exception(exc)\n"
        )
        assert rl301(source) == []


class TestGenericTranslation:
    """Broad handlers must translate into the taxonomy, not Exception(...)."""

    def test_raise_runtime_error_in_broad_handler_fires(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError(f'failed: {exc}')\n"
        )
        findings = rl301(source)
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "generic exception" in findings[0].message

    def test_raise_bare_exception_constructor_fires(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise Exception(str(exc)) from exc\n"
        )
        assert len(rl301(source)) == 1

    def test_taxonomy_translation_is_clean(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise TransientError(f'wave failed: {exc}') from exc\n"
        )
        assert rl301(source) == []

    def test_faults_package_is_exempt(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError(f'injected: {exc}')\n"
        )
        assert rl301(source, path="src/repro/faults/injection.py") == []

    def test_narrow_handler_generic_raise_out_of_scope(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except OSError as exc:\n"
            "        raise RuntimeError(str(exc))\n"
        )
        assert rl301(source) == []
