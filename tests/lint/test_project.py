"""The project pass: module naming, import resolution, mini-IR, round-trips."""

import textwrap

from repro.lint.framework import ParsedModule
from repro.lint.project import (
    ModuleIndex,
    ProjectIndex,
    index_module,
    iter_calls,
    module_name_for,
)


def indexed(source, rel_path="src/repro/m.py"):
    return index_module(ParsedModule.from_source(textwrap.dedent(source), rel_path))


class TestModuleNames:
    def test_src_layout_paths(self):
        assert module_name_for("src/repro/sketch/index.py") == "repro.sketch.index"
        assert module_name_for("src/repro/sketch/__init__.py") == "repro.sketch"
        assert module_name_for("src/repro/m.py") == "repro.m"

    def test_outside_src_is_anonymous(self):
        assert module_name_for("tests/lint/test_x.py") == ""
        assert module_name_for("benchmarks/bench.py") == ""


class TestImports:
    def test_plain_and_aliased_imports(self):
        idx = indexed("import numpy as np\nimport json\n")
        assert idx.imports["np"] == "numpy"
        assert idx.imports["json"] == "json"

    def test_from_imports_resolve_to_dotted_names(self):
        idx = indexed("from numpy.random import default_rng as mk\n")
        assert idx.imports["mk"] == "numpy.random.default_rng"

    def test_relative_import_anchors_at_package(self):
        idx = indexed("from .store import open_pack\n",
                      rel_path="src/repro/sketchy/reader.py")
        assert idx.imports["open_pack"] == "repro.sketchy.store.open_pack"

    def test_relative_import_from_init_anchors_at_self(self):
        idx = indexed("from .store import open_pack\n",
                      rel_path="src/repro/sketchy/__init__.py")
        assert idx.imports["open_pack"] == "repro.sketchy.store.open_pack"

    def test_function_level_imports_are_seen(self):
        idx = indexed("def f():\n    import numpy as np\n    return np.zeros(1)\n")
        assert idx.imports["np"] == "numpy"


class TestSymbols:
    def test_functions_and_methods_get_qualnames(self):
        idx = indexed("""\
            def top():
                return 1

            class Box:
                def get(self):
                    return 2
        """)
        assert "repro.m.top" in idx.functions
        assert "repro.m.Box.get" in idx.functions
        assert idx.functions["repro.m.Box.get"].is_method
        assert idx.functions["repro.m.Box.get"].cls == "repro.m.Box"
        assert idx.classes["repro.m.Box"] == ["get"]

    def test_async_functions_are_marked(self):
        idx = indexed("async def handler():\n    return 1\n")
        assert idx.functions["repro.m.handler"].is_async

    def test_mutable_globals_catalogued(self):
        idx = indexed("""\
            CACHE = {}
            ITEMS = []
            FROZEN = frozenset({1})
            PAIR = (1, 2)
            LIMIT = 10
        """)
        assert set(idx.mutable_globals) == {"CACHE", "ITEMS"}


class TestLoweredIR:
    def test_global_subscript_write_is_gwrite(self):
        idx = indexed("""\
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
        """)
        ops = idx.functions["repro.m.remember"].ops
        gwrites = [op for op in ops if op["o"] == "gwrite"]
        assert [op["name"] for op in gwrites] == ["CACHE"]
        assert gwrites[0]["line"] == 4

    def test_mutator_method_on_global_is_gwrite(self):
        idx = indexed("""\
            ITEMS = []

            def push(value):
                ITEMS.append(value)
        """)
        gwrites = [op for op in idx.functions["repro.m.push"].ops
                   if op["o"] == "gwrite"]
        assert gwrites and gwrites[0]["how"] == "call:append"

    def test_local_shadow_is_not_a_global_write(self):
        idx = indexed("""\
            ITEMS = []

            def pure():
                ITEMS = []
                ITEMS.append(1)
                return ITEMS
        """)
        assert not [op for op in idx.functions["repro.m.pure"].ops
                    if op["o"] == "gwrite"]

    def test_calls_carry_resolved_quals_and_lines(self):
        idx = indexed("""\
            import numpy as np

            def f():
                return np.random.default_rng(7)
        """)
        [ret] = [op for op in idx.functions["repro.m.f"].ops if op["o"] == "ret"]
        [call] = list(iter_calls(ret["e"]))
        assert call["fn"] == {"k": "qual", "q": "numpy.random.default_rng"}
        assert call["line"] == 4

    def test_full_slice_is_distinguished(self):
        idx = indexed("""\
            def f(arr):
                a = arr[:]
                b = arr[0:10]
                return a, b
        """)
        subs = []

        def walk(expr):
            if expr.get("k") == "sub":
                subs.append(expr["full"])
                walk(expr["obj"])
            elif expr.get("k") == "multi":
                for item in expr["items"]:
                    walk(item)

        for op in idx.functions["repro.m.f"].ops:
            if op["o"] in ("assign", "ret", "expr"):
                walk(op["e"])
        assert sorted(subs) == [False, True]

    def test_suppressions_travel_in_the_index(self):
        idx = indexed("""\
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value  # repro-lint: disable=RL702
        """)
        assert idx.suppressed(4, "RL702")
        assert not idx.suppressed(4, "RL701")
        assert not idx.suppressed(3, "RL702")


class TestRoundTrip:
    def test_module_index_json_round_trip(self):
        idx = indexed("""\
            import numpy as np
            CACHE = {}

            class Box:
                def get(self, key):  # repro-lint: disable=RL701
                    return CACHE[key]

            def fill():
                CACHE["k"] = np.zeros(3)
        """)
        clone = ModuleIndex.from_dict(idx.as_dict())
        assert clone.as_dict() == idx.as_dict()
        assert clone.suppressed(5, "RL701")
        assert set(clone.functions) == set(idx.functions)

    def test_project_index_union(self):
        a = indexed("def f():\n    return 1\n", rel_path="src/repro/a.py")
        b = indexed("def g():\n    return 2\n", rel_path="src/repro/b.py")
        project = ProjectIndex()
        project.add(a)
        project.add(b)
        assert set(project.functions) == {"repro.a.f", "repro.b.g"}
        assert project.function_paths()["repro.a.f"] == "src/repro/a.py"
