"""SARIF 2.1.0 emission: required fields, locations, CLI integration."""

import json

from repro.lint.cli import EXIT_FINDINGS, main
from repro.lint.findings import Finding
from repro.lint.sarif import SARIF_VERSION, render_sarif, sarif_document

FINDING = Finding(path="src/repro/x.py", line=12, col=3,
                  code="RL703", message="materializes a memmap")


class TestDocumentShape:
    def test_required_top_level_fields(self):
        doc = sarif_document([FINDING])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "$schema" in doc
        assert len(doc["runs"]) == 1

    def test_tool_driver_has_name_and_rules(self):
        driver = sarif_document([FINDING])["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"RL101", "RL701", "RL702", "RL703"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]

    def test_result_carries_rule_message_and_location(self):
        [result] = sarif_document([FINDING])["runs"][0]["results"]
        assert result["ruleId"] == "RL703"
        assert result["level"] == "error"
        assert result["message"]["text"] == "materializes a memmap"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        assert location["region"] == {"startLine": 12, "startColumn": 3}

    def test_empty_findings_is_still_a_valid_run(self):
        doc = sarif_document([])
        assert doc["runs"][0]["results"] == []

    def test_render_is_json(self):
        assert json.loads(render_sarif([FINDING]))["version"] == "2.1.0"


class TestCliIntegration:
    def test_format_sarif_end_to_end(self, project, capsys):
        root = project({"repro/bad.py":
                        "import numpy as np\nVALUES = np.random.rand(3)\n"})
        assert main([str(root / "src"), "--format", "sarif",
                     "--no-cache"]) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        [result] = doc["runs"][0]["results"]
        assert result["ruleId"] == "RL101"
        assert (result["locations"][0]["physicalLocation"]["artifactLocation"]
                ["uri"]) == "src/repro/bad.py"
