"""The dataflow engine: fact creation, summaries, propagation, witnesses."""

import textwrap

from repro.lint.dataflow import (
    TAG_MEMMAP,
    TAG_SEED_ADHOC,
    TAG_SEED_OK,
    DataflowEngine,
)
from repro.lint.framework import ParsedModule
from repro.lint.project import ProjectIndex, index_module


def engine_for(files):
    project = ProjectIndex()
    for rel, source in files.items():
        module = ParsedModule.from_source(textwrap.dedent(source), rel)
        project.add(index_module(module))
    return DataflowEngine(project)


def concrete_args(engine, owner, *, callee_name):
    """Concrete facts reaching the named call inside ``owner``."""
    for record in engine.summaries[owner].calls:
        name = record.method_attr or (record.qual or "").split(".")[-1]
        if name == callee_name:
            return engine.concrete(owner, record.all_arg_facts() | record.obj_facts)
    raise AssertionError(f"no call to {callee_name} in {owner}")


class TestFactOrigins:
    def test_default_rng_is_adhoc(self):
        engine = engine_for({"src/repro/m.py": """\
            import numpy as np

            def make():
                return np.random.default_rng(7)
        """})
        assert TAG_SEED_ADHOC in engine.summaries["repro.m.make"].ret

    def test_sanctioned_derivation_is_ok(self):
        engine = engine_for({"src/repro/m.py": """\
            from repro.utils.rng import spawn_seed_streams

            def make():
                return spawn_seed_streams(42, 4)
        """})
        assert engine.summaries["repro.m.make"].ret == {TAG_SEED_OK}

    def test_adhoc_origin_fed_sanctioned_material_stays_ok(self):
        # default_rng(seed) where seed came from spawn_seed_streams is the
        # sanctioned pattern: derived, not ad-hoc.
        engine = engine_for({"src/repro/m.py": """\
            import numpy as np
            from repro.utils.rng import spawn_seed_streams

            def make():
                return np.random.default_rng(spawn_seed_streams(42, 1)[0])
        """})
        assert engine.summaries["repro.m.make"].ret == {TAG_SEED_OK}

    def test_memmap_origins(self):
        engine = engine_for({"src/repro/m.py": """\
            import numpy as np
            from repro.sketch.persistence import load_sketch

            def a(path):
                return np.memmap(path, dtype="f4")

            def b(path):
                return load_sketch(path)
        """})
        assert TAG_MEMMAP in engine.summaries["repro.m.a"].ret
        assert TAG_MEMMAP in engine.summaries["repro.m.b"].ret


class TestInterproceduralFlow:
    def test_facts_flow_through_return_chains_across_files(self):
        engine = engine_for({
            "src/repro/store.py": """\
                import numpy as np

                def open_pack(path):
                    return np.memmap(path, dtype="f4")
            """,
            "src/repro/reader.py": """\
                from repro.store import open_pack

                def read(path):
                    arr = open_pack(path)
                    return consume(arr)

                def consume(arr):
                    return arr
            """,
        })
        assert TAG_MEMMAP in engine.summaries["repro.reader.read"].ret
        facts = concrete_args(engine, "repro.reader.read", callee_name="consume")
        assert TAG_MEMMAP in facts

    def test_param_facts_propagate_topdown_with_witness(self):
        engine = engine_for({
            "src/repro/sink.py": """\
                def draw(sampler, gen):
                    return sampler.sample(gen)
            """,
            "src/repro/caller.py": """\
                import numpy as np
                from repro.sink import draw

                def run(sampler):
                    return draw(sampler, np.random.default_rng(7))
            """,
        })
        facts = concrete_args(engine, "repro.sink.draw", callee_name="sample")
        assert TAG_SEED_ADHOC in facts
        [record] = [r for r in engine.summaries["repro.sink.draw"].calls
                    if r.method_attr == "sample"]
        witness = engine.tag_witness("repro.sink.draw", record.all_arg_facts(),
                                     TAG_SEED_ADHOC)
        assert witness == "repro.caller.run"

    def test_method_calls_resolve_via_instance_tags(self):
        engine = engine_for({"src/repro/m.py": """\
            import numpy as np

            class Pack:
                def __init__(self, path):
                    self.path = path

                def load(self):
                    return np.memmap(self.path, dtype="f4")

            def use(path):
                pack = Pack(path)
                return pack.load()
        """})
        assert TAG_MEMMAP in engine.summaries["repro.m.use"].ret

    def test_constructor_arguments_reach_init_params(self):
        engine = engine_for({"src/repro/m.py": """\
            import numpy as np

            class Holder:
                def __init__(self, gen):
                    self.gen = gen

            def build():
                return Holder(np.random.default_rng(3))
        """})
        facts = engine.param_facts["repro.m.Holder.__init__"]
        assert TAG_SEED_ADHOC in facts.get(1, set())


class TestCallGraph:
    def test_reachability_records_entry_root(self):
        engine = engine_for({
            "src/repro/worker.py": """\
                from repro.helpers import step

                def run_shard(shard):
                    return step(shard)
            """,
            "src/repro/helpers.py": """\
                def step(shard):
                    return deeper(shard)

                def deeper(shard):
                    return shard
            """,
        })
        reached = engine.reachable_from(["repro.worker.run_shard"])
        assert reached["repro.helpers.deeper"] == "repro.worker.run_shard"
        assert "repro.helpers.step" in reached

    def test_unreached_functions_stay_out(self):
        engine = engine_for({"src/repro/m.py": """\
            def entry():
                return 1

            def island():
                return 2
        """})
        reached = engine.reachable_from(["repro.m.entry"])
        assert "repro.m.island" not in reached
