"""RL501 wire-schema sync: ops.py, goldens, and the surface snapshot agree."""

import json
from pathlib import Path

from repro.lint.framework import ProjectContext
from repro.lint.rules_schema import WireSchemaSyncRule

REPO_ROOT = Path(__file__).resolve().parents[2]

OPS_SOURCE = '''\
from dataclasses import dataclass, field
from typing import Any, ClassVar


@dataclass
class Request:
    id: Any = None
    _extra_keys: ClassVar[frozenset] = frozenset()


@dataclass
class SelectRequest(Request):
    op: ClassVar[str] = "select"
    _extra_keys: ClassVar[frozenset] = frozenset({"include", "exclude"})
    k: int = 10


@dataclass
class StatsRequest(Request):
    op: ClassVar[str] = "stats"


@dataclass
class Response:
    id: Any = None


@dataclass
class SelectResponse(Response):
    seeds: list = field(default_factory=list)
'''

SURFACE = """\
class repro.api.SelectRequest(k, id)
class repro.api.StatsRequest(id)
class repro.api.Response(id)
class repro.api.SelectResponse(seeds, id)
"""


def write_project(tmp_path, *, ops=OPS_SOURCE, goldens=None, surface=SURFACE):
    if goldens is None:
        goldens = [
            {"request": {"op": "select", "k": 3}, "wire": {"op": "select", "k": 3}},
            {"request": {"op": "stats"}, "wire": {"op": "stats", "id": 7}},
        ]
    ops_file = tmp_path / "src" / "repro" / "api" / "ops.py"
    ops_file.parent.mkdir(parents=True)
    ops_file.write_text(ops)
    fixtures = tmp_path / "tests" / "api"
    fixtures.mkdir(parents=True)
    if goldens is not False:
        (fixtures / "golden_requests.jsonl").write_text(
            "".join(json.dumps(entry) + "\n" for entry in goldens)
        )
    if surface is not False:
        (fixtures / "api_surface.txt").write_text(surface)
    return ProjectContext(root=tmp_path, modules=[])


def run_rule(project):
    return list(WireSchemaSyncRule().check_project(project))


class TestConsistentProject:
    def test_no_findings(self, tmp_path):
        assert run_rule(write_project(tmp_path)) == []

    def test_extra_keys_are_accepted(self, tmp_path):
        goldens = [
            {"request": {"op": "select", "k": 2, "include": [0]},
             "wire": {"op": "select", "k": 2, "exclude": [1], "schema_version": 1}},
            {"request": {"op": "stats"}, "wire": {"op": "stats"}},
        ]
        assert run_rule(write_project(tmp_path, goldens=goldens)) == []

    def test_real_repository_is_in_sync(self):
        # The live cross-check this rule exists for: the actual ops.py,
        # goldens, and surface snapshot must agree right now.
        project = ProjectContext(root=REPO_ROOT, modules=[])
        assert run_rule(project) == []


class TestDrift:
    def test_golden_key_the_dataclass_rejects(self, tmp_path):
        goldens = [
            {"request": {"op": "select", "k": 2, "budget": 5},
             "wire": {"op": "select", "k": 2}},
            {"request": {"op": "stats"}, "wire": {"op": "stats"}},
        ]
        findings = run_rule(write_project(tmp_path, goldens=goldens))
        assert len(findings) == 1
        assert findings[0].code == "RL501"
        assert findings[0].path == "tests/api/golden_requests.jsonl"
        assert findings[0].line == 1
        assert "budget" in findings[0].message

    def test_op_without_golden_fixture(self, tmp_path):
        goldens = [
            {"request": {"op": "select", "k": 2}, "wire": {"op": "select", "k": 2}},
        ]
        findings = run_rule(write_project(tmp_path, goldens=goldens))
        assert len(findings) == 1
        assert "'stats'" in findings[0].message
        assert findings[0].path == "src/repro/api/ops.py"

    def test_unknown_op_in_golden(self, tmp_path):
        goldens = [
            {"request": {"op": "select", "k": 2}, "wire": {"op": "select", "k": 2}},
            {"request": {"op": "stats"}, "wire": {"op": "stats"}},
            {"request": {"op": "explode"}, "wire": {"op": "explode"}},
        ]
        findings = run_rule(write_project(tmp_path, goldens=goldens))
        assert len(findings) == 2  # request + wire sections of line 3
        assert all("explode" in f.message for f in findings)
        assert {f.line for f in findings} == {3}

    def test_class_missing_from_surface(self, tmp_path):
        surface = SURFACE.replace("class repro.api.SelectResponse(seeds, id)\n", "")
        findings = run_rule(write_project(tmp_path, surface=surface))
        assert len(findings) == 1
        assert "SelectResponse" in findings[0].message

    def test_field_missing_from_surface_signature(self, tmp_path):
        surface = SURFACE.replace("SelectRequest(k, id)", "SelectRequest(id)")
        findings = run_rule(write_project(tmp_path, surface=surface))
        assert len(findings) == 1
        assert "SelectRequest.k" in findings[0].message

    def test_missing_fixture_files(self, tmp_path):
        findings = run_rule(write_project(tmp_path, goldens=False, surface=False))
        messages = " | ".join(f.message for f in findings)
        assert "golden_requests.jsonl is missing" in messages
        assert "api_surface.txt is missing" in messages

    def test_invalid_json_line(self, tmp_path):
        project = write_project(tmp_path)
        golden_file = tmp_path / "tests" / "api" / "golden_requests.jsonl"
        golden_file.write_text(golden_file.read_text() + "{not json\n")
        findings = run_rule(project)
        assert len(findings) == 1
        assert "not valid JSON" in findings[0].message
        assert findings[0].line == 3

    def test_foreign_layout_is_silent(self, tmp_path):
        # No ops.py at all: the rule has nothing to check and stays quiet.
        assert run_rule(ProjectContext(root=tmp_path, modules=[])) == []
