"""RL201 resource-lifecycle: leaked owners fire; visible ownership doesn't."""

from repro.lint.framework import lint_source


def rl201(source, path="src/repro/_fixture.py"):
    return [f for f in lint_source(source, path=path) if f.code == "RL201"]


class TestLeaks:
    def test_dropped_constructor_call(self):
        source = (
            "from repro.parallel import ParallelSampler\n"
            "\n"
            "def leak(sampler, jobs):\n"
            "    ParallelSampler(sampler, jobs)\n"
        )
        findings = rl201(source)
        assert len(findings) == 1
        assert (findings[0].line, findings[0].code) == (4, "RL201")
        assert "ParallelSampler" in findings[0].message

    def test_local_never_closed(self):
        source = (
            "def leak(graph, k):\n"
            "    index = SketchIndex.build(graph, k)\n"
            "    return index.select(k)\n"
        )
        findings = rl201(source)
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_method_call_on_name_is_not_ownership(self):
        # session.select() uses the instance; nobody ever closes it.
        source = (
            "def leak(graph):\n"
            "    session = InfluenceSession(graph)\n"
            "    return session.select(5)\n"
        )
        assert len(rl201(source)) == 1

    def test_self_attribute_in_closeless_class(self):
        source = (
            "class Holder:\n"
            "    def __init__(self, graph):\n"
            "        self._index = SketchIndex(graph)\n"
        )
        findings = rl201(source)
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_factory_method_construction_tracked(self):
        source = (
            "def leak(path):\n"
            "    pack = MemmapPack.load(path)\n"
            "    return pack.arrays[0]\n"
        )
        findings = rl201(source)
        assert len(findings) == 1
        assert findings[0].line == 2


class TestVisibleOwnership:
    def test_with_block(self):
        source = (
            "def ok(sampler, jobs):\n"
            "    with ParallelSampler(sampler, jobs) as pool:\n"
            "        return pool.sample(10)\n"
        )
        assert rl201(source) == []

    def test_returned_to_caller(self):
        source = (
            "def make(graph, k):\n"
            "    return SketchIndex.build(graph, k)\n"
        )
        assert rl201(source) == []

    def test_local_closed_in_finally(self):
        source = (
            "def ok(graph):\n"
            "    session = InfluenceSession(graph)\n"
            "    try:\n"
            "        return session.select(5)\n"
            "    finally:\n"
            "        session.close()\n"
        )
        assert rl201(source) == []

    def test_self_attribute_in_closing_class(self):
        source = (
            "class Owner:\n"
            "    def __init__(self, graph):\n"
            "        self._index = SketchIndex(graph)\n"
            "\n"
            "    def close(self):\n"
            "        self._index.close()\n"
        )
        assert rl201(source) == []

    def test_escape_as_call_argument(self):
        # Ownership transfer: the service's eviction path closes it.
        source = (
            "def ok(service, graph, k):\n"
            "    index = SketchIndex.build(graph, k)\n"
            "    service.add_index(index)\n"
        )
        assert rl201(source) == []

    def test_escape_into_container_slot(self):
        source = (
            "class Cache:\n"
            "    def add(self, key, graph):\n"
            "        index = SketchIndex(graph)\n"
            "        self._indexes[key] = index\n"
        )
        assert rl201(source) == []

    def test_untracked_class_ignored(self):
        assert rl201("def f():\n    Widget()\n") == []

    def test_inline_suppression(self):
        source = (
            "def special(graph):\n"
            "    InfluenceSession(graph)  # repro-lint: disable=RL201\n"
        )
        assert rl201(source) == []
