"""Shared fixtures for the lint test package."""

import textwrap

import pytest


@pytest.fixture
def project(tmp_path):
    """Factory for src-layout mini projects: ``project({"repro/m.py": src})``.

    Returns the project root; file keys are paths under ``src/`` and their
    sources are dedented before writing.
    """

    def build(files):
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
        for rel, source in files.items():
            target = tmp_path / "src" / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return tmp_path

    return build
