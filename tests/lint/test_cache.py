"""The result cache: warm runs re-analyze only changed files."""

import json

import pytest

from repro.lint import framework
from repro.lint.framework import run_lint

BAD_RNG = "import numpy as np\nVALUES = np.random.rand(3)\n"


@pytest.fixture
def cached_project(project):
    root = project({
        "repro/bad.py": BAD_RNG,
        "repro/good.py": "ANSWER = 42\n",
        "repro/store.py": """\
            import numpy as np

            def open_pack(path):
                return np.memmap(path, dtype="f4")
        """,
    })
    return root


def lint(root, **kwargs):
    return run_lint([root / "src"], root=root, cache=True, **kwargs)


class TestWarmRuns:
    def test_cold_then_fully_warm(self, cached_project):
        cold = lint(cached_project)
        assert cold.stats.files_analyzed == 3
        assert cold.stats.files_from_cache == 0
        warm = lint(cached_project)
        assert warm.stats.files_analyzed == 0
        assert warm.stats.files_from_cache == 3
        assert warm.stats.cache_hit_rate == 1.0
        assert warm.findings == cold.findings

    def test_only_the_changed_file_reanalyzes(self, cached_project):
        lint(cached_project)
        target = cached_project / "src" / "repro" / "good.py"
        target.write_text("ANSWER = 43\n")
        run = lint(cached_project)
        assert run.stats.files_analyzed == 1
        assert run.stats.files_from_cache == 2

    def test_hit_rate_at_least_ninety_percent_on_warm_run(self, cached_project):
        # The CI cache-effectiveness gate in spirit: warm ≥ 90% hits.
        lint(cached_project)
        assert lint(cached_project).stats.cache_hit_rate >= 0.9

    def test_interprocedural_findings_survive_warm_runs(self, project):
        # RL703's cross-module finding must reappear from cached indexes
        # without re-parsing either file.
        root = project({
            "repro/store.py": """\
                import numpy as np

                def open_pack(path):
                    return np.memmap(path, dtype="f4")
            """,
            "repro/reader.py": """\
                from repro.store import open_pack

                def read(path):
                    return open_pack(path).tolist()
            """,
        })
        cold = run_lint([root / "src"], root=root, cache=True, select=["RL703"])
        warm = run_lint([root / "src"], root=root, cache=True, select=["RL703"])
        assert warm.stats.files_from_cache == 2
        assert [f.code for f in warm.findings] == ["RL703"]
        assert warm.findings == cold.findings

    def test_select_narrowed_warm_run_still_hits(self, cached_project):
        lint(cached_project)
        narrowed = lint(cached_project, select=["RL101"])
        assert narrowed.stats.files_analyzed == 0
        assert [f.code for f in narrowed.findings] == ["RL101"]


class TestInvalidation:
    def test_ruleset_version_bump_invalidates(self, cached_project, monkeypatch):
        lint(cached_project)
        monkeypatch.setattr(framework, "RULESET_VERSION", "testbump")
        run = lint(cached_project)
        assert run.stats.files_from_cache == 0
        assert run.stats.files_analyzed == 3

    def test_corrupt_cache_entry_is_a_miss(self, cached_project):
        lint(cached_project)
        for entry in (cached_project / ".repro-lint-cache").glob("*.json"):
            entry.write_text("{ not json")
        run = lint(cached_project)
        assert run.stats.files_analyzed == 3

    def test_parse_failure_is_cached(self, project):
        root = project({"repro/broken.py": "def broken(:\n"})
        cold = run_lint([root / "src"], root=root, cache=True)
        warm = run_lint([root / "src"], root=root, cache=True)
        assert [f.code for f in cold.findings] == ["RL000"]
        assert warm.findings == cold.findings
        assert warm.stats.files_from_cache == 1

    def test_no_cache_mode_writes_nothing(self, cached_project):
        run_lint([cached_project / "src"], root=cached_project, cache=False)
        assert not (cached_project / ".repro-lint-cache").exists()


class TestJobs:
    def test_parallel_run_matches_serial(self, cached_project):
        serial = run_lint([cached_project / "src"], root=cached_project)
        parallel = run_lint([cached_project / "src"], root=cached_project, jobs=2)
        assert parallel.findings == serial.findings

    def test_parallel_cold_run_populates_the_cache(self, cached_project):
        lint(cached_project, jobs=2)
        warm = lint(cached_project)
        assert warm.stats.files_from_cache == 3


class TestEntryShape:
    def test_entries_record_sha_and_ruleset(self, cached_project):
        lint(cached_project)
        entries = list((cached_project / ".repro-lint-cache").glob("*.json"))
        assert len(entries) == 3
        payload = json.loads(entries[0].read_text())
        assert set(payload) >= {"ruleset", "rel_path", "sha", "codes",
                                "findings", "index"}
        assert payload["ruleset"] == framework.RULESET_VERSION
