"""RL401 policy-kwarg drift and RL402 deprecation hygiene."""

from repro.lint.framework import lint_source


def rl(source, code, path="src/repro/core/_fixture.py"):
    return [f for f in lint_source(source, path=path) if f.code == code]


class TestPolicyKwargDrift:
    def test_bare_engine_keyword_on_public_function(self):
        source = (
            "def run(graph, k, engine='vectorized'):\n"
            "    return graph, k, engine\n"
        )
        findings = rl(source, "RL401")
        assert len(findings) == 1
        assert (findings[0].line, findings[0].code) == (1, "RL401")
        assert "engine=" in findings[0].message

    def test_bare_kwonly_jobs_keyword(self):
        source = (
            "def run(graph, *, jobs=None):\n"
            "    return graph, jobs\n"
        )
        findings = rl(source, "RL401")
        assert len(findings) == 1
        assert "jobs=" in findings[0].message

    def test_deprecated_sentinel_shim_is_the_blessed_shape(self):
        source = (
            "from repro.api.policy import DEPRECATED, resolve_call_policy\n"
            "\n"
            "def run(graph, k, engine=DEPRECATED, *, policy=None):\n"
            "    resolved, _ = resolve_call_policy('run()', policy, engine=engine)\n"
            "    return resolved\n"
        )
        assert rl(source, "RL401") == []
        assert rl(source, "RL402") == []

    def test_required_positional_param_exempt(self):
        source = (
            "def shard(sampler, jobs):\n"
            "    return sampler, jobs\n"
        )
        assert rl(source, "RL401") == []

    def test_private_helper_exempt(self):
        source = (
            "def _inner(graph, engine='vectorized'):\n"
            "    return graph, engine\n"
        )
        assert rl(source, "RL401") == []

    def test_method_exempt(self):
        source = (
            "class Runner:\n"
            "    def run(self, engine='vectorized'):\n"
            "        return engine\n"
        )
        assert rl(source, "RL401") == []

    def test_implementation_layers_exempt(self):
        source = (
            "def make_rr_sampler(graph, model, trace_edges=False):\n"
            "    return graph, model, trace_edges\n"
        )
        assert rl(source, "RL401", path="src/repro/rrset/base.py") == []
        assert rl(source, "RL401", path="src/repro/parallel/engine.py") == []
        assert len(rl(source, "RL401", path="src/repro/core/base.py")) == 1


class TestDeprecationHygiene:
    def test_silent_shim_fires(self):
        source = (
            "from repro.api.policy import DEPRECATED\n"
            "\n"
            "\n"
            "def run(graph, engine=DEPRECATED):\n"
            "    return graph\n"
        )
        findings = rl(source, "RL402")
        assert len(findings) == 1
        assert (findings[0].line, findings[0].code) == (4, "RL402")
        assert "engine=" in findings[0].message

    def test_shim_fires_on_methods_too(self):
        source = (
            "class Service:\n"
            "    def query(self, request, sketch_index=DEPRECATED):\n"
            "        return request\n"
        )
        findings = rl(source, "RL402")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_resolve_call_policy_counts_as_warning(self):
        source = (
            "def run(graph, engine=DEPRECATED, *, policy=None):\n"
            "    resolved, _ = resolve_call_policy('run()', policy, engine=engine)\n"
            "    return resolved\n"
        )
        assert rl(source, "RL402") == []

    def test_warn_legacy_kwargs_counts_as_warning(self):
        source = (
            "def run(graph, jobs=DEPRECATED):\n"
            "    if jobs is not DEPRECATED:\n"
            "        warn_legacy_kwargs('run()', ['jobs'])\n"
            "    return graph\n"
        )
        assert rl(source, "RL402") == []

    def test_direct_warnings_warn_counts(self):
        source = (
            "import warnings\n"
            "\n"
            "def run(graph, engine=DEPRECATED):\n"
            "    warnings.warn('engine= is deprecated', DeprecationWarning, stacklevel=2)\n"
            "    return graph\n"
        )
        assert rl(source, "RL402") == []

    def test_non_deprecation_warn_does_not_count(self):
        source = (
            "import warnings\n"
            "\n"
            "def run(graph, engine=DEPRECATED):\n"
            "    warnings.warn('heads up', UserWarning, stacklevel=2)\n"
            "    return graph\n"
        )
        assert len(rl(source, "RL402")) == 1
