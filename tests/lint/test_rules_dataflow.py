"""RL701/RL702/RL703 — good/bad fixtures, lines, interprocedural cases.

Each rule has at least one *true interprocedural* bad fixture: the tainted
fact is created in one module and the violation sits in another, so a
per-file analysis of the flagged file alone could never see the fact (the
flagged file never mentions numpy.random / np.memmap / a worker entry
point).
"""

from repro.lint.framework import lint_paths


def run(root, select):
    return lint_paths([root / "src"], root=root, select=[select])


def locations(findings):
    return [(f.path, f.line, f.code) for f in findings]


class TestRL701SeedProvenance:
    def test_bad_adhoc_generator_at_sampler_same_file(self, project):
        root = project({"repro/run.py": """\
            import numpy as np

            def run(sampler):
                gen = np.random.default_rng(1234)
                return sampler.sample(gen)
        """})
        assert locations(run(root, "RL701")) == [("src/repro/run.py", 5, "RL701")]

    def test_bad_interprocedural_adhoc_built_in_another_module(self, project):
        # The flagged file never imports numpy: the ad-hoc generator is
        # manufactured in seeds.py and only its *value* crosses the module
        # boundary.  Per-file analysis of run.py cannot catch this.
        root = project({
            "repro/seeds.py": """\
                import numpy as np

                def make_gen():
                    return np.random.default_rng(1234)
            """,
            "repro/run.py": """\
                from repro.seeds import make_gen

                def run(sampler):
                    gen = make_gen()
                    return sampler.sample(gen)
            """,
        })
        assert locations(run(root, "RL701")) == [("src/repro/run.py", 5, "RL701")]

    def test_bad_interprocedural_param_flow_names_the_witness(self, project):
        root = project({
            "repro/sink.py": """\
                def draw(sampler, gen):
                    return sampler.sample(gen)
            """,
            "repro/caller.py": """\
                import numpy as np
                from repro.sink import draw

                def run(sampler):
                    return draw(sampler, np.random.default_rng(7))
            """,
        })
        [finding] = run(root, "RL701")
        assert (finding.path, finding.line) == ("src/repro/sink.py", 2)
        assert "repro.caller.run" in finding.message

    def test_good_sanctioned_seed_material(self, project):
        root = project({"repro/run.py": """\
            from repro.utils.rng import RandomSource, spawn_seed_streams

            def run(sampler):
                source = RandomSource(spawn_seed_streams(42, 1)[0])
                return sampler.sample(source)
        """})
        assert run(root, "RL701") == []

    def test_good_generator_never_reaches_a_sampler(self, project):
        root = project({"repro/stats.py": """\
            import numpy as np

            def jitter():
                gen = np.random.default_rng(0)
                return gen.normal()
        """})
        assert run(root, "RL701") == []

    def test_inline_suppression(self, project):
        root = project({"repro/run.py": """\
            import numpy as np

            def run(sampler):
                gen = np.random.default_rng(1234)
                return sampler.sample(gen)  # repro-lint: disable=RL701
        """})
        assert run(root, "RL701") == []


class TestRL702SharedStateRaces:
    def test_bad_interprocedural_write_reachable_from_worker(self, project):
        # state.py itself has no concurrency marker at all — only the call
        # graph connects it to the worker entry point in worker.py.
        root = project({
            "repro/parallel/state.py": """\
                _CACHE = {}

                def remember(key, value):
                    _CACHE[key] = value
            """,
            "repro/parallel/worker.py": """\
                from repro.parallel.state import remember

                def run_shard(shard):
                    remember(shard.key, shard)
                    return shard
            """,
        })
        [finding] = run(root, "RL702")
        assert (finding.path, finding.line) == ("src/repro/parallel/state.py", 4)
        assert "repro.parallel.worker.run_shard" in finding.message

    def test_bad_async_entry_point_counts(self, project):
        root = project({"repro/server.py": """\
            _SESSIONS = {}

            async def handle(request):
                _SESSIONS[request.id] = request
        """})
        [finding] = run(root, "RL702")
        assert (finding.path, finding.line) == ("src/repro/server.py", 4)

    def test_bad_mutator_method_write(self, project):
        root = project({"repro/parallel/worker.py": """\
            _LOG = []

            def run_shard(shard):
                _LOG.append(shard)
                return shard
        """})
        [finding] = run(root, "RL702")
        assert finding.line == 4

    def test_good_write_not_reachable_from_concurrent_entry(self, project):
        root = project({"repro/setup.py": """\
            _CONFIG = {}

            def configure(key, value):
                _CONFIG[key] = value
        """})
        assert run(root, "RL702") == []

    def test_good_sanctioned_installer_module_is_exempt(self, project):
        root = project({
            "repro/obs/runtime.py": """\
                _METRICS = {}

                def install(name, value):
                    _METRICS[name] = value
            """,
            "repro/parallel/worker.py": """\
                from repro.obs.runtime import install

                def run_shard(shard):
                    install("shards", shard)
                    return shard
            """,
        })
        assert run(root, "RL702") == []

    def test_good_module_level_initialization_is_not_a_write(self, project):
        root = project({"repro/parallel/worker.py": """\
            _STATE = {}
            _STATE["ready"] = False

            def run_shard(shard):
                return _STATE.get("ready")
        """})
        assert run(root, "RL702") == []


class TestRL703MemmapMaterialization:
    def test_bad_tolist_same_file(self, project):
        root = project({"repro/reader.py": """\
            import numpy as np

            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr.tolist()
        """})
        assert locations(run(root, "RL703")) == [("src/repro/reader.py", 5, "RL703")]

    def test_bad_full_slice(self, project):
        root = project({"repro/reader.py": """\
            import numpy as np

            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr[:]
        """})
        assert locations(run(root, "RL703")) == [("src/repro/reader.py", 5, "RL703")]

    def test_bad_interprocedural_memmap_loaded_in_another_module(self, project):
        # reader.py never touches np.memmap/load_sketch; the provenance
        # arrives purely through store.open_pack's return value.
        root = project({
            "repro/store.py": """\
                import numpy as np

                def open_pack(path):
                    return np.memmap(path, dtype="f4")
            """,
            "repro/reader.py": """\
                from repro.store import open_pack

                def read(path):
                    arr = open_pack(path)
                    return arr.tolist()
            """,
        })
        assert locations(run(root, "RL703")) == [("src/repro/reader.py", 5, "RL703")]

    def test_bad_param_flow_asarray_names_the_witness(self, project):
        root = project({
            "repro/compute.py": """\
                import numpy as np

                def densify(arr):
                    return np.asarray(arr)
            """,
            "repro/driver.py": """\
                import numpy as np
                from repro.compute import densify

                def load(path):
                    return densify(np.memmap(path, dtype="f4"))
            """,
        })
        [finding] = run(root, "RL703")
        assert (finding.path, finding.line) == ("src/repro/compute.py", 4)
        assert "repro.driver.load" in finding.message

    def test_good_windowed_access(self, project):
        root = project({"repro/reader.py": """\
            import numpy as np

            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr[0:64]
        """})
        assert run(root, "RL703") == []

    def test_good_copy_of_ordinary_array(self, project):
        root = project({"repro/reader.py": """\
            import numpy as np

            def read(n):
                arr = np.zeros(n)
                return arr.copy()
        """})
        assert run(root, "RL703") == []

    def test_inline_suppression(self, project):
        root = project({"repro/reader.py": """\
            import numpy as np

            def read(path):
                arr = np.memmap(path, dtype="f4")
                return arr.tolist()  # repro-lint: disable=RL703
        """})
        assert run(root, "RL703") == []
