"""RL601 timing-discipline: raw clocks fire; obs and non-library code don't."""

from repro.lint.framework import lint_source


def rl601(source, path="src/repro/_fixture.py"):
    return [f for f in lint_source(source, path=path) if f.code == "RL601"]


class TestBadShapes:
    def test_time_perf_counter_call(self):
        findings = rl601("import time\nstart = time.perf_counter()\n")
        assert len(findings) == 1
        assert (findings[0].line, findings[0].code) == (2, "RL601")
        assert "raw time.perf_counter()" in findings[0].message
        assert "repro.obs" in findings[0].message

    def test_time_perf_counter_ns_call(self):
        findings = rl601("import time\nstart = time.perf_counter_ns()\n")
        assert len(findings) == 1
        assert "perf_counter_ns" in findings[0].message

    def test_time_monotonic_call(self):
        findings = rl601("import time\nstart = time.monotonic()\n")
        assert len(findings) == 1

    def test_aliased_time_module(self):
        findings = rl601("import time as t\nstart = t.perf_counter()\n")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_from_import_flags_binding_and_call(self):
        source = (
            "from time import perf_counter\n"
            "\n"
            "start = perf_counter()\n"
        )
        findings = rl601(source)
        assert [f.line for f in findings] == [1, 3]
        assert "binds a raw clock" in findings[0].message

    def test_aliased_from_import(self):
        findings = rl601("from time import perf_counter as clock\nt = clock()\n")
        assert [f.line for f in findings] == [1, 2]


class TestSanctionedShapes:
    def test_wall_clock_and_sleep_are_fine(self):
        source = (
            "import time\n"
            "stamp = time.time()\n"
            "time.sleep(0.1)\n"
        )
        assert rl601(source) == []

    def test_obs_now_is_fine(self):
        source = (
            "from repro.obs import runtime as obs\n"
            "start = obs.now()\n"
            "elapsed = obs.now() - start\n"
        )
        assert rl601(source) == []

    def test_obs_package_is_exempt(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert rl601(source, path="src/repro/obs/runtime.py") == []

    def test_outside_library_tree_is_exempt(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert rl601(source, path="benchmarks/bench.py") == []

    def test_unrelated_perf_counter_attribute(self):
        # Only the stdlib time module is policed, not look-alike attributes.
        source = "import mylib.time as time2\nstart = time2.perf_counter()\n"
        assert rl601(source) == []

    def test_inline_suppression(self):
        source = (
            "import time\n"
            "start = time.perf_counter()  # repro-lint: disable=RL601\n"
        )
        assert rl601(source) == []
