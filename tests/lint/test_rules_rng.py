"""RL101 rng-discipline: every bad shape fires; the sanctioned shapes don't."""

from repro.lint.framework import lint_source


def rl101(source, path="src/repro/_fixture.py"):
    return [f for f in lint_source(source, path=path) if f.code == "RL101"]


class TestBadShapes:
    def test_unseeded_default_rng(self):
        source = (
            "import numpy as np\n"
            "\n"
            "rng = np.random.default_rng()\n"
        )
        findings = rl101(source)
        assert len(findings) == 1
        assert (findings[0].line, findings[0].code) == (3, "RL101")
        assert "unseeded" in findings[0].message

    def test_unseeded_default_rng_via_from_import(self):
        source = (
            "from numpy.random import default_rng\n"
            "\n"
            "rng = default_rng()\n"
        )
        findings = rl101(source)
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_numpy_global_draw(self):
        findings = rl101("import numpy as np\nv = np.random.rand(3)\n")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "np.random.rand" in findings[0].message

    def test_numpy_global_seed_mutation(self):
        findings = rl101("import numpy\nnumpy.random.seed(0)\n")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_numpy_random_submodule_alias(self):
        findings = rl101("import numpy.random as npr\nv = npr.shuffle([1])\n")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_stdlib_global_draw(self):
        findings = rl101("import random\nv = random.random()\n")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "module-level global stream" in findings[0].message

    def test_stdlib_from_import_of_global_draw(self):
        findings = rl101("from random import randint\n")
        assert len(findings) == 1
        assert findings[0].line == 1

    def test_aliased_stdlib_module(self):
        findings = rl101("import random as rnd\nv = rnd.choice([1, 2])\n")
        assert len(findings) == 1
        assert findings[0].line == 2


class TestSanctionedShapes:
    def test_seeded_default_rng_ok(self):
        assert rl101("import numpy as np\nrng = np.random.default_rng(42)\n") == []

    def test_seed_sequence_ok(self):
        assert rl101("import numpy as np\nss = np.random.SeedSequence(7)\n") == []

    def test_random_instance_ok(self):
        assert rl101("import random\nr = random.Random(3)\nv = r.random()\n") == []

    def test_system_random_ok(self):
        assert rl101("import random\nr = random.SystemRandom()\n") == []

    def test_resolve_rng_helper_ok(self):
        source = (
            "from repro.utils.rng import resolve_rng\n"
            "\n"
            "def f(rng=None):\n"
            "    return resolve_rng(rng).random()\n"
        )
        assert rl101(source) == []

    def test_rule_skips_the_sanctioned_module_itself(self):
        # repro/utils/rng.py legitimately touches SystemRandom etc.
        source = "import random\nseed = random.getrandbits(63)\n"
        assert rl101(source, path="src/repro/utils/rng.py") == []
        assert len(rl101(source)) == 1

    def test_out_of_scope_path_ok(self):
        assert rl101("import random\nv = random.random()\n",
                     path="benchmarks/bench.py") == []
