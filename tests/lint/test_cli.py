"""The ``python -m repro.lint`` front end: exit codes, formats, baselines.

Ends with the self-check the CI gate runs: the linter over the real
``src/`` tree (and this test package) must come back clean.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.lint.findings import Baseline, Finding

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def mini_project(tmp_path):
    """A tiny repo with one RL101 violation and one clean module."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import numpy as np\nVALUES = np.random.rand(3)\n")
    (pkg / "good.py").write_text("ANSWER = 42\n")
    return tmp_path


def run_cli(*argv):
    return main([str(part) for part in argv])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, mini_project, capsys):
        (mini_project / "src" / "repro" / "bad.py").unlink()
        assert run_cli(mini_project / "src") == EXIT_CLEAN
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, mini_project, capsys):
        assert run_cli(mini_project / "src") == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "src/repro/bad.py:2:" in out
        assert "RL101" in out
        assert "1 finding(s)" in out

    def test_unknown_path_exits_two(self, mini_project, capsys):
        assert run_cli(mini_project / "nowhere") == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_code_exits_two(self, mini_project, capsys):
        assert run_cli(mini_project / "src", "--select", "RL999") == EXIT_USAGE
        assert "RL999" in capsys.readouterr().err


class TestSelection:
    def test_select_other_rule_sees_nothing(self, mini_project):
        assert run_cli(mini_project / "src", "--select", "RL301") == EXIT_CLEAN

    def test_ignore_suppresses_the_finding(self, mini_project):
        assert run_cli(mini_project / "src", "--ignore", "RL101") == EXIT_CLEAN

    def test_list_rules(self, mini_project, capsys):
        assert run_cli("--list-rules") == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RL101", "RL201", "RL301", "RL401", "RL402", "RL501"):
            assert code in out


class TestJsonFormat:
    def test_findings_as_json(self, mini_project, capsys):
        assert run_cli(mini_project / "src", "--format", "json") == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        [finding] = payload["findings"]
        assert finding["code"] == "RL101"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 2


class TestBaseline:
    def test_write_then_apply_round_trip(self, mini_project, capsys):
        baseline = mini_project / "lint-baseline.json"
        assert run_cli(mini_project / "src", "--write-baseline", baseline) == EXIT_CLEAN
        assert "1 fingerprint(s)" in capsys.readouterr().out
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_CLEAN

    def test_new_violation_still_fails_under_baseline(self, mini_project):
        baseline = mini_project / "lint-baseline.json"
        run_cli(mini_project / "src", "--write-baseline", baseline)
        extra = mini_project / "src" / "repro" / "worse.py"
        extra.write_text("import random\nV = random.random()\n")
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_FINDINGS

    def test_malformed_baseline_exits_two(self, mini_project, capsys):
        baseline = mini_project / "broken.json"
        baseline.write_text("not json at all")
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_USAGE
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_version_exits_two(self, mini_project):
        baseline = mini_project / "old.json"
        baseline.write_text(json.dumps({"version": 99, "fingerprints": []}))
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_USAGE

    def test_baseline_survives_line_shifts(self, tmp_path):
        a = Finding(path="src/repro/x.py", line=3, col=1, code="RL101", message="m")
        moved = Finding(path="src/repro/x.py", line=99, col=5, code="RL101", message="m")
        baseline = Baseline.from_findings([a])
        path = tmp_path / "b.json"
        baseline.save(path)
        assert moved in Baseline.load(path)


class TestPruneBaseline:
    def test_prune_drops_stale_fingerprints(self, mini_project, capsys):
        baseline = mini_project / "lint-baseline.json"
        run_cli(mini_project / "src", "--write-baseline", baseline)
        capsys.readouterr()
        # The recorded violation is fixed: its fingerprint is now stale.
        (mini_project / "src" / "repro" / "bad.py").write_text("ANSWER = 1\n")
        assert run_cli(mini_project / "src", "--baseline", baseline,
                       "--prune-baseline") == EXIT_CLEAN
        assert "pruned 1 stale fingerprint(s)" in capsys.readouterr().err
        assert Baseline.load(baseline).fingerprints == frozenset()

    def test_prune_keeps_fingerprints_still_found(self, mini_project, capsys):
        baseline = mini_project / "lint-baseline.json"
        run_cli(mini_project / "src", "--write-baseline", baseline)
        capsys.readouterr()
        assert run_cli(mini_project / "src", "--baseline", baseline,
                       "--prune-baseline") == EXIT_CLEAN
        assert "pruned 0 stale fingerprint(s)" in capsys.readouterr().err
        assert len(Baseline.load(baseline)) == 1

    def test_prune_without_baseline_is_usage_error(self, mini_project, capsys):
        assert run_cli(mini_project / "src", "--prune-baseline") == EXIT_USAGE
        assert "--prune-baseline requires --baseline" in capsys.readouterr().err


class TestStatsAndJobs:
    def test_stats_go_to_stderr(self, mini_project, capsys):
        run_cli(mini_project / "src", "--stats", "--no-cache")
        err = capsys.readouterr().err
        assert "lint stats:" in err and "from cache" in err

    def test_json_format_includes_stats(self, mini_project, capsys):
        run_cli(mini_project / "src", "--format", "json", "--no-cache")
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["files_analyzed"] >= 1
        assert payload["stats"]["files_from_cache"] == 0

    def test_warm_cli_run_reports_full_cache_hits(self, mini_project, capsys):
        run_cli(mini_project / "src")
        capsys.readouterr()
        run_cli(mini_project / "src", "--format", "json")
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["files_from_cache"] == 2
        assert payload["stats"]["files_analyzed"] == 0

    def test_jobs_flag_matches_serial_output(self, mini_project, capsys):
        run_cli(mini_project / "src", "--no-cache", "--format", "json")
        serial = json.loads(capsys.readouterr().out)
        run_cli(mini_project / "src", "--no-cache", "--format", "json",
                "--jobs", "2")
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["findings"] == serial["findings"]


class TestSelfCheck:
    def test_library_and_test_tree_are_clean(self):
        """The CI gate: `python -m repro.lint src tests --baseline
        lint_baseline.json` exits 0 against an *empty* baseline."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests",
             "--baseline", "lint_baseline.json", "--no-cache"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == EXIT_CLEAN, result.stdout + result.stderr

    def test_baseline_is_empty(self):
        """The ratchet carries no debt: the RL601 legacy sites were migrated
        onto repro.obs and nothing new was grandfathered in."""
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        assert baseline.fingerprints == frozenset()
