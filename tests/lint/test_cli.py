"""The ``python -m repro.lint`` front end: exit codes, formats, baselines.

Ends with the self-check the CI gate runs: the linter over the real
``src/`` tree (and this test package) must come back clean.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.lint.findings import Baseline, Finding

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def mini_project(tmp_path):
    """A tiny repo with one RL101 violation and one clean module."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import numpy as np\nVALUES = np.random.rand(3)\n")
    (pkg / "good.py").write_text("ANSWER = 42\n")
    return tmp_path


def run_cli(*argv):
    return main([str(part) for part in argv])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, mini_project, capsys):
        (mini_project / "src" / "repro" / "bad.py").unlink()
        assert run_cli(mini_project / "src") == EXIT_CLEAN
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, mini_project, capsys):
        assert run_cli(mini_project / "src") == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "src/repro/bad.py:2:" in out
        assert "RL101" in out
        assert "1 finding(s)" in out

    def test_unknown_path_exits_two(self, mini_project, capsys):
        assert run_cli(mini_project / "nowhere") == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_code_exits_two(self, mini_project, capsys):
        assert run_cli(mini_project / "src", "--select", "RL999") == EXIT_USAGE
        assert "RL999" in capsys.readouterr().err


class TestSelection:
    def test_select_other_rule_sees_nothing(self, mini_project):
        assert run_cli(mini_project / "src", "--select", "RL301") == EXIT_CLEAN

    def test_ignore_suppresses_the_finding(self, mini_project):
        assert run_cli(mini_project / "src", "--ignore", "RL101") == EXIT_CLEAN

    def test_list_rules(self, mini_project, capsys):
        assert run_cli("--list-rules") == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RL101", "RL201", "RL301", "RL401", "RL402", "RL501"):
            assert code in out


class TestJsonFormat:
    def test_findings_as_json(self, mini_project, capsys):
        assert run_cli(mini_project / "src", "--format", "json") == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        [finding] = payload["findings"]
        assert finding["code"] == "RL101"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 2


class TestBaseline:
    def test_write_then_apply_round_trip(self, mini_project, capsys):
        baseline = mini_project / "lint-baseline.json"
        assert run_cli(mini_project / "src", "--write-baseline", baseline) == EXIT_CLEAN
        assert "1 fingerprint(s)" in capsys.readouterr().out
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_CLEAN

    def test_new_violation_still_fails_under_baseline(self, mini_project):
        baseline = mini_project / "lint-baseline.json"
        run_cli(mini_project / "src", "--write-baseline", baseline)
        extra = mini_project / "src" / "repro" / "worse.py"
        extra.write_text("import random\nV = random.random()\n")
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_FINDINGS

    def test_malformed_baseline_exits_two(self, mini_project, capsys):
        baseline = mini_project / "broken.json"
        baseline.write_text("not json at all")
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_USAGE
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_version_exits_two(self, mini_project):
        baseline = mini_project / "old.json"
        baseline.write_text(json.dumps({"version": 99, "fingerprints": []}))
        assert run_cli(mini_project / "src", "--baseline", baseline) == EXIT_USAGE

    def test_baseline_survives_line_shifts(self, tmp_path):
        a = Finding(path="src/repro/x.py", line=3, col=1, code="RL101", message="m")
        moved = Finding(path="src/repro/x.py", line=99, col=5, code="RL101", message="m")
        baseline = Baseline.from_findings([a])
        path = tmp_path / "b.json"
        baseline.save(path)
        assert moved in Baseline.load(path)


class TestSelfCheck:
    def test_library_and_lint_tests_are_clean(self):
        """The CI gate: `python -m repro.lint src tests/lint --baseline
        lint_baseline.json` exits 0 — new findings only."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests/lint",
             "--baseline", "lint_baseline.json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == EXIT_CLEAN, result.stdout + result.stderr

    def test_baseline_only_carries_timing_debt(self):
        """The ratchet file exists and every recorded finding is RL601 —
        the other rules stay at zero with no grandfathered entries."""
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        assert baseline.fingerprints, "lint_baseline.json should not be empty"
        assert all("::RL601::" in fp for fp in sorted(baseline.fingerprints))
