"""Tests for repro.utils.rng."""

import random

import numpy as np
import pytest

from repro.utils.rng import RandomSource, resolve_rng, spawn_children


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_numpy_stream_deterministic(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert np.array_equal(a.np.random(5), b.np.random(5))

    def test_unseeded_sources_are_independent(self):
        a = RandomSource()
        b = RandomSource()
        assert a.seed != b.seed

    def test_randrange_in_bounds(self):
        source = RandomSource(3)
        draws = [source.randrange(10) for _ in range(200)]
        assert all(0 <= d < 10 for d in draws)
        assert len(set(draws)) > 1

    def test_binomial_bounds(self):
        source = RandomSource(3)
        draws = [source.binomial(20, 0.5) for _ in range(100)]
        assert all(0 <= d <= 20 for d in draws)

    def test_sample_indices_distinct(self):
        source = RandomSource(3)
        picked = source.sample_indices(50, 10)
        assert len(picked) == 10
        assert len(set(picked)) == 10
        assert all(0 <= p < 50 for p in picked)

    def test_spawn_deterministic(self):
        assert RandomSource(5).spawn().seed == RandomSource(5).spawn().seed

    def test_spawn_decorrelated_from_parent(self):
        parent = RandomSource(5)
        child = parent.spawn()
        assert child.seed != parent.seed


class TestResolveRng:
    def test_none_gives_fresh_source(self):
        assert isinstance(resolve_rng(None), RandomSource)

    def test_int_seed(self):
        assert resolve_rng(9).seed == 9

    def test_numpy_integer_seed(self):
        assert resolve_rng(np.int64(9)).seed == 9

    def test_passthrough(self):
        source = RandomSource(1)
        assert resolve_rng(source) is source

    def test_python_random(self):
        a = resolve_rng(random.Random(4))
        b = resolve_rng(random.Random(4))
        assert a.seed == b.seed

    def test_numpy_generator(self):
        a = resolve_rng(np.random.default_rng(4))
        b = resolve_rng(np.random.default_rng(4))
        assert a.seed == b.seed

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError, match="rng must be"):
            resolve_rng("not-an-rng")


def test_spawn_children_count_and_determinism():
    first = spawn_children(11, 3)
    second = spawn_children(11, 3)
    assert len(first) == 3
    assert [c.seed for c in first] == [c.seed for c in second]
    assert len({c.seed for c in first}) == 3
