"""Tests for memory accounting."""

from repro.utils.memory import deep_size_of_rr_sets, track_peak


class TestDeepSize:
    def test_empty(self):
        assert deep_size_of_rr_sets([]) > 0  # container itself

    def test_grows_with_content(self):
        small = deep_size_of_rr_sets([(1, 2)])
        large = deep_size_of_rr_sets([(1, 2), (3, 4, 5), (6,)])
        assert large > small

    def test_shared_ints_counted_once(self):
        shared = deep_size_of_rr_sets([(1,), (1,)])
        distinct = deep_size_of_rr_sets([(1,), (2,)])
        assert shared <= distinct


class TestTrackPeak:
    def test_captures_allocation(self):
        with track_peak() as tracker:
            buffer = bytearray(4 * 1024 * 1024)
            del buffer
        assert tracker.peak_bytes >= 3 * 1024 * 1024
        assert tracker.peak_mib >= 3.0

    def test_nested_tracking(self):
        with track_peak() as outer:
            with track_peak() as inner:
                data = list(range(50_000))
                del data
        assert inner.peak_bytes > 0
        assert outer.peak_bytes >= 0

    def test_no_allocation_near_zero(self):
        with track_peak() as tracker:
            pass
        assert tracker.peak_bytes < 100_000
