"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_ell,
    check_epsilon,
    check_k,
    check_node,
    check_positive_int,
    check_probability,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value)

    def test_coerces_int(self):
        assert check_probability(1) == 1.0


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, "x")

    @pytest.mark.parametrize("value", [1.5, "3", True])
    def test_rejects_non_int(self, value):
        with pytest.raises(TypeError):
            check_positive_int(value, "x")


class TestCheckK:
    def test_accepts(self):
        assert check_k(3, 10) == 3

    def test_rejects_k_above_n(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_k(11, 10)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_k(0, 10)


class TestCheckEpsilon:
    @pytest.mark.parametrize("value", [0.01, 0.5, 1.0])
    def test_accepts(self, value):
        assert check_epsilon(value) == value

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_epsilon(value)


class TestCheckEll:
    def test_accepts_small_positive(self):
        assert check_ell(0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_ell(0.0)


class TestCheckNode:
    def test_accepts(self):
        assert check_node(0, 5) == 0
        assert check_node(4, 5) == 4

    @pytest.mark.parametrize("node", [-1, 5])
    def test_rejects_out_of_range(self, node):
        with pytest.raises(ValueError):
            check_node(node, 5)
