"""Tests for the lazy max-heap and generic lazy greedy."""


from repro.utils.lazy_heap import LazyMaxHeap, lazy_greedy_maximize


class TestLazyMaxHeap:
    def test_pop_order_is_max_first(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0, 0)
        heap.push("b", 3.0, 0)
        heap.push("c", 2.0, 0)
        assert heap.pop()[0] == "b"
        assert heap.pop()[0] == "c"
        assert heap.pop()[0] == "a"

    def test_ties_break_by_insertion_order(self):
        heap = LazyMaxHeap()
        heap.push("first", 1.0, 0)
        heap.push("second", 1.0, 0)
        assert heap.pop()[0] == "first"

    def test_peek_does_not_remove(self):
        heap = LazyMaxHeap()
        heap.push("x", 5.0, 2)
        assert heap.peek() == ("x", 5.0, 2)
        assert len(heap) == 1

    def test_round_tag_round_trips(self):
        heap = LazyMaxHeap()
        heap.push("x", 5.0, 7)
        assert heap.pop() == ("x", 5.0, 7)

    def test_len(self):
        heap = LazyMaxHeap()
        assert len(heap) == 0
        heap.push("x", 1.0, 0)
        assert len(heap) == 1


class TestLazyGreedyMaximize:
    def test_matches_eager_greedy_on_modular_function(self):
        values = {"a": 5.0, "b": 3.0, "c": 8.0, "d": 1.0}
        selected, total, _ = lazy_greedy_maximize(
            list(values), 2, lambda item, sel: values[item]
        )
        assert selected == ["c", "a"]
        assert total == 13.0

    def test_submodular_coverage_instance(self):
        sets = {"a": {1, 2, 3}, "b": {3, 4}, "c": {5}}

        def gain(item, selected):
            covered = set().union(*(sets[s] for s in selected)) if selected else set()
            return len(sets[item] - covered)

        selected, total, evaluations = lazy_greedy_maximize(list(sets), 2, gain)
        assert selected == ["a", "b"]
        assert total == 4.0  # a covers {1,2,3}; b then adds only {4}
        assert evaluations >= 3

    def test_on_select_callback_fires_in_order(self):
        picked = []
        lazy_greedy_maximize(
            ["x", "y"], 2, lambda item, sel: 1.0, on_select=picked.append
        )
        assert picked == ["x", "y"]

    def test_lazy_saves_evaluations_when_gains_separate(self):
        # Gains are static; after the initial scan no re-evaluation is needed
        # beyond one per selection round.
        values = {i: float(100 - i) for i in range(100)}
        _, _, evaluations = lazy_greedy_maximize(
            list(values), 5, lambda item, sel: values[item]
        )
        # initial scan = 100; each round's top is stale (tag mismatch) so one
        # re-evaluation per pick.
        assert evaluations <= 100 + 2 * 5
