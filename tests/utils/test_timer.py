"""Tests for timers."""

import time

import pytest

from repro.utils.timer import PhaseTimer, Timer, timed


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        timer.start()
        time.sleep(0.01)
        elapsed = timer.stop()
        assert elapsed >= 0.009
        timer.start()
        timer.stop()
        assert timer.elapsed >= elapsed

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        timer.start()
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running


class TestPhaseTimer:
    def test_records_named_phases(self):
        timer = PhaseTimer()
        with timer.phase("one"):
            time.sleep(0.005)
        with timer.phase("two"):
            pass
        assert set(timer.phases) == {"one", "two"}
        assert timer.phases["one"] >= 0.004
        assert timer.total == pytest.approx(sum(timer.phases.values()))

    def test_same_phase_accumulates(self):
        timer = PhaseTimer()
        for _ in range(2):
            with timer.phase("x"):
                time.sleep(0.002)
        assert timer.phases["x"] >= 0.003

    def test_records_even_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError()
        assert "boom" in timer.phases

    def test_as_dict_is_copy(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        snapshot = timer.as_dict()
        snapshot["x"] = 999.0
        assert timer.phases["x"] != 999.0


def test_timed_context_manager():
    with timed() as timer:
        time.sleep(0.005)
    assert timer.elapsed >= 0.004
    assert not timer.running
