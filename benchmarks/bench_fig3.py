"""Figure 3 — runtime vs k on NetHEPT: TIM, TIM+, RIS, CELF++ (IC and LT).

Paper shape: TIM+ < TIM, both orders of magnitude below CELF++ and RIS at
moderate k; TIM/TIM+ runtimes *decrease* with k while RIS/CELF++ grow.
"""

import pytest
from conftest import run_once

from repro.experiments import figure3


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_figure3(benchmark, record_experiment, model):
    result = run_once(benchmark, figure3, model=model)
    record_experiment(result)

    tim_times = result.column("TIM")
    timp_times = result.column("TIM+")
    ris_times = result.column("RIS")
    celf_times = result.column("CELF++")

    # TIM+ no slower than TIM overall (the headline optimisation).
    assert sum(timp_times) < sum(tim_times)
    # At k = 50 the guaranteed baselines are far slower than TIM+.
    assert ris_times[-1] > 2 * timp_times[-1]
    assert celf_times[-1] > 2 * timp_times[-1]
    # RIS and CELF++ grow with k; TIM's cost does not explode with k.
    assert ris_times[-1] > ris_times[0]
    assert celf_times[-1] > celf_times[0]
