"""IMM vs TIM+ at equal ε: fewer RR sets, same seed quality (ISSUE 9 bar).

IMM's martingale stopping rule prices θ off a certified lower bound on OPT
and **reuses every RR set** its search samples, so at equal ε it should
need far fewer sets than TIM+'s estimate-then-refine pipeline — without
giving up the ``(1 - 1/e - ε)`` guarantee or measurable seed quality.

On the n=20k / m=200k weighted-cascade graph the sampler and dynamic
benchmarks use, for each probed seed the script runs both engines at the
same ε and checks three acceptance bars:

* **RR-set reduction** — IMM's total sampled sets (lower-bound search +
  node selection) must be at least ``--min-rr-reduction`` (30%) below
  TIM+'s total (estimation + refinement + selection), per trial;
* **spread parity** — IMM's seeds must score within ``--max-spread-drift``
  (1%) of TIM+'s on one shared, larger independent *evaluation sketch*
  (``--eval-factor`` × TIM+'s θ, fresh seed).  As in ``bench_dynamic``,
  the paired evaluator cancels the per-sketch Monte-Carlo noise that any
  raw comparison of two estimators would bake in, and the bar is enforced
  on the **median** across trials (single-trial greedy tie-flips are a
  property of near-tied candidates, not of the engine).  The default
  ε=0.1 is the library default; at looser ε (0.3) both engines still hold
  the theoretical floor but TIM+'s 7× oversampling buys it ~2% of
  empirical spread, so the parity bar is an ε≤0.15 statement;
* **byte-identity** — ``imm`` under ``jobs=1`` and ``jobs=2`` must return
  identical seeds, θ and LB (the sharded sampler contract extends to the
  new engine).

Wall-clock for both engines is measured and reported (IMM's reduction is
the paper's headline; the ``--min-speedup`` bar defaults to 1.0 — IMM must
not be *slower* — since wall-clock on small graphs is dominated by phase
constants, not asymptotics).

Run ``python benchmarks/bench_imm.py`` (full size) or ``--smoke``
(CI-sized); ``--json-out`` records the summary (the repo keeps one under
``benchmarks/results/``).  Exits non-zero when a bar is missed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

from repro.api import ExecutionPolicy
from repro.core import imm, tim_plus
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.sketch import SketchIndex


def bench_trial(graph, k: int, epsilon: float, seed: int, eval_factor: int) -> dict:
    imm_result = imm(graph, k, epsilon=epsilon, rng=seed)
    plus_result = tim_plus(graph, k, epsilon=epsilon, rng=seed)

    rr_imm = imm_result.total_rr_sets
    rr_plus = sum(plus_result.rr_sets_per_phase.values())

    # Paired evaluation on one independent, larger sketch (see module
    # docstring): same evaluator, both seed sets, fresh seed.
    evaluator = SketchIndex.build(graph, "IC", theta=eval_factor * plus_result.theta,
                                  rng=seed + 1_000_003)
    spread_imm = evaluator.spread(imm_result.seeds)
    spread_plus = evaluator.spread(plus_result.seeds)
    evaluator.close()
    # Signed: positive when IMM's seeds score *below* TIM+'s.
    drift = (spread_plus - spread_imm) / max(spread_plus, 1e-12)

    return {
        "seed": seed,
        "epsilon": epsilon,
        "k": k,
        "imm_rr_sets": rr_imm,
        "imm_theta": imm_result.theta,
        "imm_lb_iterations": imm_result.lb_iterations,
        "imm_opt_lower_bound": imm_result.opt_lower_bound,
        "imm_seconds": imm_result.runtime_seconds,
        "tim_plus_rr_sets": rr_plus,
        "tim_plus_theta": plus_result.theta,
        "tim_plus_seconds": plus_result.runtime_seconds,
        "rr_reduction": 1.0 - rr_imm / max(rr_plus, 1),
        "speedup": plus_result.runtime_seconds / max(imm_result.runtime_seconds, 1e-12),
        "spread_imm": spread_imm,
        "spread_tim_plus": spread_plus,
        "spread_drift": drift,
        "common_seeds": len(set(imm_result.seeds) & set(plus_result.seeds)),
    }


def check_byte_identity(graph, k: int, epsilon: float, seed: int) -> dict:
    one = imm(graph, k, epsilon=epsilon, rng=seed, policy=ExecutionPolicy(jobs=1))
    two = imm(graph, k, epsilon=epsilon, rng=seed, policy=ExecutionPolicy(jobs=2))
    return {
        "jobs_identical": (one.seeds == two.seeds and one.theta == two.theta
                           and one.opt_lower_bound == two.opt_lower_bound),
        "seeds_jobs1": one.seeds,
        "seeds_jobs2": two.seeds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--edges", type=int, default=200_000)
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--trials", type=int, default=3, help="probed seeds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-rr-reduction", type=float, default=0.3,
                        help="fail when IMM saves less than this fraction of "
                             "TIM+'s RR sets in any trial")
    parser.add_argument("--max-spread-drift", type=float, default=0.01,
                        help="fail when IMM's seeds score more than this "
                             "fraction below TIM+'s on the shared evaluation "
                             "sketch (median across trials)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail when IMM's median wall-clock exceeds "
                             "TIM+'s by more than this factor's inverse")
    parser.add_argument("--eval-factor", type=int, default=2,
                        help="evaluation sketch size as a multiple of TIM+'s θ")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller graph, same bars)")
    parser.add_argument("--json-out", default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes, args.edges = 5_000, 50_000
        args.trials = 2

    graph = weighted_cascade(gnm_random_digraph(args.nodes, args.edges, rng=args.seed))
    print(f"graph: n={graph.n} m={graph.m} (weighted cascade), "
          f"k={args.k}, epsilon={args.epsilon}, trials={args.trials}")

    rows = [bench_trial(graph, args.k, args.epsilon, args.seed + trial,
                        args.eval_factor)
            for trial in range(args.trials)]
    for row in rows:
        print(
            f"seed {row['seed']}: imm {row['imm_rr_sets']:>9d} RR sets "
            f"({row['imm_seconds']:6.2f}s, LB iters {row['imm_lb_iterations']}) | "
            f"tim+ {row['tim_plus_rr_sets']:>9d} RR sets "
            f"({row['tim_plus_seconds']:6.2f}s) | "
            f"reduction {100 * row['rr_reduction']:5.1f}% | "
            f"speedup {row['speedup']:5.2f}x | "
            f"spread drift {100 * row['spread_drift']:+.3f}% | "
            f"{row['common_seeds']}/{row['k']} seeds shared"
        )

    identity = check_byte_identity(graph, args.k, args.epsilon, args.seed)
    print(f"jobs=1 vs jobs=2 byte-identity: "
          f"{'OK' if identity['jobs_identical'] else 'MISMATCH'}")

    reductions = [row["rr_reduction"] for row in rows]
    drifts = [row["spread_drift"] for row in rows]
    speedups = [row["speedup"] for row in rows]
    summary = {
        "nodes": graph.n,
        "edges": graph.m,
        "k": args.k,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "trials": args.trials,
        "min_rr_reduction_bar": args.min_rr_reduction,
        "max_spread_drift_bar": args.max_spread_drift,
        "min_speedup_bar": args.min_speedup,
        "min_rr_reduction": min(reductions),
        "median_rr_reduction": statistics.median(reductions),
        "median_spread_drift": statistics.median(drifts),
        "max_spread_drift": max(drifts),
        "median_speedup": statistics.median(speedups),
        "jobs_identical": identity["jobs_identical"],
        "rows": rows,
    }
    print(
        f"median RR-set reduction {100 * summary['median_rr_reduction']:.1f}% "
        f"(min {100 * summary['min_rr_reduction']:.1f}%, "
        f"bar {100 * args.min_rr_reduction:.0f}%) | "
        f"median spread drift {100 * summary['median_spread_drift']:+.3f}% "
        f"(bar {100 * args.max_spread_drift:.0f}%, "
        f"max {100 * summary['max_spread_drift']:+.3f}%) | "
        f"median speedup {summary['median_speedup']:.2f}x"
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json_out}")

    failed = False
    if summary["min_rr_reduction"] < args.min_rr_reduction:
        print(f"FAIL: RR-set reduction {100 * summary['min_rr_reduction']:.1f}% "
              f"below the {100 * args.min_rr_reduction:.0f}% bar", file=sys.stderr)
        failed = True
    if summary["median_spread_drift"] > args.max_spread_drift:
        print(f"FAIL: median spread drift "
              f"{100 * summary['median_spread_drift']:.2f}% above the "
              f"{100 * args.max_spread_drift:.0f}% bar", file=sys.stderr)
        failed = True
    if summary["median_speedup"] < args.min_speedup:
        print(f"FAIL: median speedup {summary['median_speedup']:.2f}x below "
              f"the {args.min_speedup:.1f}x bar", file=sys.stderr)
        failed = True
    if not identity["jobs_identical"]:
        print("FAIL: imm results differ between jobs=1 and jobs=2",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
