"""Figure 6 — runtime vs k on the four large stand-ins (IC and LT).

Paper shape: TIM+ outperforms TIM everywhere (up to ~2 orders); TIM is
omitted on Twitter for excessive cost; both run faster under LT than IC.
"""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure6


def test_figure6(benchmark, record_experiment):
    result = run_once(benchmark, figure6)
    record_experiment(result)

    per_dataset: dict[str, list] = defaultdict(list)
    for row in result.rows:
        per_dataset[row[0]].append(row)

    for dataset, rows in per_dataset.items():
        tim_ic = [r[2] for r in rows]
        timp_ic = [r[3] for r in rows]
        tim_lt = [r[4] for r in rows]
        timp_lt = [r[5] for r in rows]
        if dataset == "twitter":
            assert all(v is None for v in tim_ic + tim_lt)
        else:
            # TIM+ beats TIM in aggregate under both models.
            assert sum(timp_ic) < sum(tim_ic), dataset
            assert sum(timp_lt) < sum(tim_lt), dataset
        # LT cheaper than IC for TIM+ (one random number per node, not edge).
        assert sum(timp_lt) < sum(timp_ic) * 1.1, dataset
