"""Shared benchmark fixtures.

Every figure-level bench renders its reproduction table, prints it (visible
with ``pytest -s``) and writes it under ``benchmarks/results/<name>.txt`` so
the regenerated evaluation survives the run (EXPERIMENTS.md is built from
these files).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import render

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_experiment():
    """Persist and print an ExperimentResult; returns the rendered text."""

    def _record(result):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = render(result)
        path = os.path.join(RESULTS_DIR, f"{result.name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print("\n" + text)
        return text

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run a figure generator exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
