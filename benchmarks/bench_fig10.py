"""Figure 10 — TIM+ (ε = ℓ = 1) vs SIMPATH runtime under LT.

Paper shape: TIM+ consistently faster, by orders of magnitude at k = 50 on
the largest dataset.
"""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure10


def test_figure10(benchmark, record_experiment):
    result = run_once(benchmark, figure10)
    record_experiment(result)

    per_dataset: dict[str, list] = defaultdict(list)
    for row in result.rows:
        per_dataset[row[0]].append(row)

    for dataset, rows in per_dataset.items():
        by_k = {row[1]: row for row in rows}
        # At k = 50 TIM+ beats SIMPATH on every dataset.
        assert by_k[50][2] < by_k[50][3], dataset
        # SIMPATH cost grows with k.
        assert by_k[50][3] > by_k[1][3], dataset
