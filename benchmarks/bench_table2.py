"""Table 2 — dataset characteristics (paper vs stand-ins)."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, record_experiment):
    result = run_once(benchmark, table2, scale=1.0)
    record_experiment(result)

    # Types must match the paper exactly.
    assert result.column("type") == [
        "undirected",
        "directed",
        "undirected",
        "directed",
        "directed",
    ]
    # Average degrees within 15% of Table 2's values.
    for paper, ours in zip(result.column("paper_avg_deg"), result.column("ours_avg_deg")):
        assert abs(ours - paper) / paper < 0.15
    # Relative size ordering preserved.
    sizes = result.column("ours_n")
    assert sizes == sorted(sizes)
