"""Single-edge-update repair vs cold rebuild (the repro.dynamic claim).

The dynamic subsystem's reason to exist, measured on the n=20k / m=200k
weighted-cascade graph the sampler benchmarks use:

* **rebuild** — ``SketchIndex.build`` from scratch on the post-update graph
  at the same θ (what a static system pays per edge update);
* **repair**  — ``SketchIndex.apply_update``: trace-aware invalidation plus
  resampling of only the affected RR sets.

For each probed update (a delete, an insert, and a reweight on sampled
edges) the script measures both paths and checks two acceptance bars:

* repair must be at least ``--min-speedup`` times faster than the rebuild
  (ISSUE 4 bar: 10x), and
* the warm ``select(k)`` spread of the repaired index's seeds must sit
  within ``--max-spread-drift`` (1%) of the rebuilt index's seeds, with
  both seed sets scored by one independent, larger *evaluation sketch*
  (``--eval-factor`` × θ, fresh seed) built on the post-update graph.

The paired evaluator and the median are the honest way to read the 1% bar:

* Each index's *own* spread estimate carries ~1/√θ Monte-Carlo noise
  (≈1.5–2% at θ = 50k on this graph), so any raw comparison of two
  estimators bakes in noise no repair strategy could beat; scoring both
  seed sets on one shared independent sketch cancels it and isolates
  selection quality.
* Even then, greedy over 20k near-tied candidates occasionally flips to a
  set whose true spread differs by a few percent — *between two cold
  rebuilds* the same paired measurement shows 2–4% gaps (the script
  measures this null in-run and reports it).  Those tail flips are a
  property of TIM at practical θ, not of repair, so the drift bar is
  enforced on the **median across the probed updates** and the per-probe
  maximum is reported alongside the cold-rebuild null for context.

Run ``python benchmarks/bench_dynamic.py`` (full size) or ``--smoke``
(CI-sized); ``--json-out`` records the summary (the repo keeps one under
``benchmarks/results/``).  Exits non-zero when a bar is missed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.dynamic import DynamicDiGraph
from repro.graphs import gnm_random_digraph, weighted_cascade
from repro.sketch import SketchIndex


def _time(fn) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def probe_updates(graph, rng: np.random.Generator, count: int) -> list[tuple]:
    """A mix of update kinds over edges sampled from the graph."""
    updates = []
    kinds = ["delete", "reweight", "insert"]
    for i in range(count):
        kind = kinds[i % len(kinds)]
        edge = int(rng.integers(0, graph.m))
        u, v = int(graph.src[edge]), int(graph.dst[edge])
        if kind == "delete":
            updates.append(("delete", u, v, None))
        elif kind == "reweight":
            updates.append(("reweight", u, v, min(1.0, float(graph.prob[edge]) * 2.0)))
        else:
            a, b = (int(x) for x in rng.integers(0, graph.n, size=2))
            updates.append(("insert", a, b if b != a else (b + 1) % graph.n, 0.1))
    return updates


def bench_updates(graph, theta: int, seed: int, k: int, updates,
                  eval_factor: int) -> list[dict]:
    rows = []
    for kind, u, v, p in updates:
        # Fresh index per probe so every repair starts from the same state.
        index = SketchIndex.build(graph, "IC", theta=theta, rng=seed, trace_edges=True)
        index.select(k)  # postings + selection state warm, as in serving
        dynamic = DynamicDiGraph(graph)
        if kind == "delete":
            delta = dynamic.delete_edge(u, v)
        elif kind == "reweight":
            delta = dynamic.reweight_edge(u, v, p)
        else:
            delta = dynamic.insert_edge(u, v, p)

        repair_seconds, report = _time(lambda: index.apply_update(delta, rng=seed + 1))
        repaired_select_seconds, repaired_result = _time(lambda: index.select(k))

        rebuild_seconds, rebuilt = _time(
            lambda: SketchIndex.build(dynamic.graph, "IC", theta=theta,
                                      rng=seed, trace_edges=True)
        )
        rebuilt_result = rebuilt.select(k)

        # Paired evaluation on one independent, larger sketch (see module
        # docstring): same evaluator, both seed sets, fresh seed.  The
        # cold-rebuild null — a second rebuild under a different seed,
        # scored the same way — calibrates how much drift selection noise
        # alone produces.
        evaluator = SketchIndex.build(dynamic.graph, "IC", theta=eval_factor * theta,
                                      rng=seed + 1_000_003)
        spread_repaired = evaluator.spread(repaired_result.seeds)
        spread_rebuilt = evaluator.spread(rebuilt_result.seeds)
        drift = abs(spread_repaired - spread_rebuilt) / max(spread_rebuilt, 1e-12)
        null_index = SketchIndex.build(dynamic.graph, "IC", theta=theta, rng=seed + 17)
        spread_null = evaluator.spread(null_index.select(k).seeds)
        null_drift = abs(spread_null - spread_rebuilt) / max(spread_rebuilt, 1e-12)
        null_index.close()
        evaluator.close()
        rows.append({
            "op": kind,
            "u": u,
            "v": v,
            "theta": theta,
            "affected": report.num_affected,
            "affected_fraction": report.affected_fraction,
            "repair_seconds": repair_seconds,
            "repaired_select_seconds": repaired_select_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": rebuild_seconds / max(repair_seconds, 1e-12),
            "spread_repaired": spread_repaired,
            "spread_rebuilt": spread_rebuilt,
            "spread_drift": drift,
            "null_drift": null_drift,
        })
        index.close()
        rebuilt.close()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--edges", type=int, default=200_000)
    parser.add_argument("--theta", type=int, default=50_000)
    parser.add_argument("--updates", type=int, default=6, help="probed edge updates")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail below this repair-vs-rebuild speedup")
    parser.add_argument("--max-spread-drift", type=float, default=0.01,
                        help="fail when |spread_repaired - spread_rebuilt| "
                             "exceeds this fraction of the rebuilt spread "
                             "(both scored by the shared evaluation sketch)")
    parser.add_argument("--eval-factor", type=int, default=4,
                        help="evaluation sketch size as a multiple of theta")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller graph and theta, same bars)")
    parser.add_argument("--json-out", default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes, args.edges = 5_000, 50_000
        args.theta = 20_000
        args.updates = 3

    graph = weighted_cascade(gnm_random_digraph(args.nodes, args.edges, rng=args.seed))
    rng = np.random.default_rng(args.seed)
    updates = probe_updates(graph, rng, args.updates)

    print(f"graph: n={graph.n} m={graph.m} (weighted cascade), theta={args.theta}, "
          f"evaluator theta={args.eval_factor * args.theta}")
    rows = bench_updates(graph, args.theta, args.seed, args.k, updates,
                         args.eval_factor)
    for row in rows:
        print(
            f"{row['op']:8s} {row['u']}->{row['v']}: "
            f"repair {1000 * row['repair_seconds']:8.1f}ms "
            f"({row['affected']}/{args.theta} sets, "
            f"{100 * row['affected_fraction']:.2f}%) | "
            f"rebuild {1000 * row['rebuild_seconds']:8.1f}ms | "
            f"speedup {row['speedup']:6.1f}x | "
            f"spread drift {100 * row['spread_drift']:.3f}% "
            f"(cold-rebuild null {100 * row['null_drift']:.3f}%)"
        )

    speedups = [row["speedup"] for row in rows]
    drifts = [row["spread_drift"] for row in rows]
    nulls = [row["null_drift"] for row in rows]
    summary = {
        "nodes": graph.n,
        "edges": graph.m,
        "theta": args.theta,
        "k": args.k,
        "seed": args.seed,
        "min_speedup_bar": args.min_speedup,
        "max_spread_drift_bar": args.max_spread_drift,
        "median_speedup": statistics.median(speedups),
        "min_speedup": min(speedups),
        "median_spread_drift": statistics.median(drifts),
        "max_spread_drift": max(drifts),
        "median_null_drift": statistics.median(nulls),
        "max_null_drift": max(nulls),
        "rows": rows,
    }
    print(
        f"median speedup {summary['median_speedup']:.1f}x "
        f"(min {summary['min_speedup']:.1f}x, bar {args.min_speedup:.0f}x) | "
        f"median spread drift {100 * summary['median_spread_drift']:.3f}% "
        f"(bar {100 * args.max_spread_drift:.0f}%, "
        f"max {100 * summary['max_spread_drift']:.3f}%, "
        f"cold-rebuild null median {100 * summary['median_null_drift']:.3f}%)"
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json_out}")

    failed = False
    if summary["min_speedup"] < args.min_speedup:
        print(f"FAIL: repair speedup {summary['min_speedup']:.1f}x "
              f"below the {args.min_speedup:.0f}x bar", file=sys.stderr)
        failed = True
    if summary["median_spread_drift"] > args.max_spread_drift:
        print(f"FAIL: median spread drift {100 * summary['median_spread_drift']:.2f}% "
              f"above the {100 * args.max_spread_drift:.0f}% bar", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
