"""Figure 5 — expected spreads and the KPT* / KPT⁺ bounds on NetHEPT.

Paper shape: all guaranteed methods' spreads are statistically
indistinguishable; KPT⁺ exceeds KPT* by ~3x or more at moderate k,
explaining TIM+'s speed-up.
"""

import pytest
from conftest import run_once

from repro.experiments import figure5


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_figure5(benchmark, record_experiment, model):
    result = run_once(benchmark, figure5, model=model)
    record_experiment(result)

    for row in result.rows:
        k, tim_s, timp_s, ris_s, celf_s, kpt_star, kpt_plus = row
        # KPT+ is a tighter (never worse) lower bound than KPT*.
        assert kpt_plus >= kpt_star
        # Both bounds sit below the achievable spread (they lower-bound OPT).
        assert kpt_plus <= max(tim_s, timp_s, ris_s, celf_s) * 1.05
        # Methods' spreads agree within 25% at k >= 10 (paper: no visible
        # difference; our MC scoring and small scale add noise).
        if k >= 10:
            spreads = [tim_s, timp_s, ris_s, celf_s]
            assert min(spreads) > 0.75 * max(spreads)

    # The refinement is substantial at large k (paper: >= 3x on NetHEPT).
    last = result.rows[-1]
    assert last[6] >= 1.5 * last[5]
