"""Cold-build vs warm-query benchmark for the `repro.sketch` service layer.

The amortization claim behind the subsystem, measured:

* **cold** — a full ``tim(graph, k, ε)`` run: Algorithm 2, θ-set sampling,
  greedy selection; everything from scratch.
* **warm** — ``SketchIndex.select(k)`` against the *same* RR collection the
  cold run produced (captured by routing the cold call through an index),
  i.e. equal θ and bit-identical seed sets, paying only the greedy.

The script verifies seed-set identity at every probed k, enforces a minimum
warm speedup (default 10x, the ISSUE 2 acceptance bar), and then reports
warm-query throughput — fresh and incremental ``select`` sweeps across
k ∈ {1..kmax} plus a ``spread`` probe — on the nethept stand-in.

Run ``python benchmarks/bench_service.py`` (full) or ``--smoke`` (CI-sized);
``--json-out`` writes the summary for artifact upload.  Exits non-zero on a
seed mismatch or a missed speedup bar.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.core.tim import tim
from repro.datasets import build_dataset
from repro.obs import runtime as obs
from repro.sketch import SketchIndex


def collect_obs_metrics() -> dict:
    """The per-phase rollup + RR throughput the tracer saw during the run."""
    phases = obs.phase_breakdown()
    rr_counter = obs.registry().get("rr.sets")
    rr_total = int(rr_counter.value) if rr_counter is not None else 0
    sampling_seconds = float(phases.get("sampling", {}).get("seconds", 0.0))
    return {
        "phases": phases,
        "rr_sets_total": rr_total,
        "rr_sets_per_sec": rr_total / sampling_seconds if sampling_seconds else 0.0,
    }


def _time(fn) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def bench_cold_vs_warm(graph, identity_ks, epsilon: float, seed: int) -> list[dict]:
    """Per-k cold `tim` vs warm `select` at equal theta, identical seeds."""
    rows = []
    for k in identity_ks:
        cold_seconds, cold = _time(lambda: tim(graph, k, epsilon=epsilon, rng=seed))
        # Re-run the identical call through a fresh index: same RNG seed ⇒
        # the index captures exactly the cold run's RR collection and seeds.
        index = SketchIndex(graph=graph, model="IC")
        captured = tim(graph, k, epsilon=epsilon, rng=seed, index=index)
        if captured.seeds != cold.seeds:
            raise SystemExit(f"k={k}: capture run diverged from cold run (rng plumbing bug)")
        index.select(1)  # warm the postings once; build cost is amortized
        warm_seconds, warm = _time(lambda: index.select(k, incremental=False))
        if warm.seeds != cold.seeds:
            raise SystemExit(
                f"k={k}: warm select {warm.seeds[:5]}... != cold tim {cold.seeds[:5]}..."
            )
        rows.append({
            "k": k,
            "theta": cold.theta,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / max(warm_seconds, 1e-12),
            "seeds_identical": True,
        })
    return rows


def bench_warm_throughput(graph, kmax: int, epsilon: float, seed: int) -> dict:
    """Queries/second across k ∈ {1..kmax} against one warm index."""
    index = SketchIndex.build(graph, "IC", k=max(10, kmax // 2), epsilon=epsilon, rng=seed)
    index.select(1)  # build postings outside the timed region

    fresh_seconds, _ = _time(
        lambda: [index.select(k, incremental=False) for k in range(1, kmax + 1)]
    )
    index.invalidate()
    index.select(1)
    incremental_seconds, _ = _time(
        lambda: [index.select(k) for k in range(1, kmax + 1)]
    )
    seeds = index.select(kmax).seeds
    spread_seconds, _ = _time(lambda: [index.spread(seeds[: k or 1]) for k in range(1, kmax + 1)])
    return {
        "theta": index.num_sets,
        "kmax": kmax,
        "select_fresh_qps": kmax / max(fresh_seconds, 1e-12),
        "select_incremental_qps": kmax / max(incremental_seconds, 1e-12),
        "spread_qps": kmax / max(spread_seconds, 1e-12),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="nethept")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--kmax", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument("--json-out", default=None, help="write the summary as JSON")
    args = parser.parse_args(argv)

    scale = 0.25 if args.smoke else args.scale
    kmax = min(args.kmax, 20) if args.smoke else args.kmax
    identity_ks = sorted({1, 5, kmax // 2, kmax})

    # Instrument the whole run: the summary's "metrics" section carries the
    # per-phase wall-clock rollup and RR throughput the tracer recorded.
    obs.configure(enabled=True)
    obs.reset()

    graph = build_dataset(args.dataset, scale).weighted_for("IC")
    print(f"graph: {args.dataset} stand-in @ scale {scale} (n={graph.n}, m={graph.m})")
    print(f"epsilon={args.epsilon}  identity checks at k={identity_ks}  kmax={kmax}")

    rows = bench_cold_vs_warm(graph, identity_ks, args.epsilon, args.seed)
    print(f"\n{'k':>4} {'theta':>9} {'cold tim':>10} {'warm select':>12} {'speedup':>9}")
    for row in rows:
        print(
            f"{row['k']:>4} {row['theta']:>9} {row['cold_seconds']:>9.4f}s "
            f"{row['warm_seconds']:>11.6f}s {row['speedup']:>8.1f}x"
        )
    median_speedup = statistics.median(row["speedup"] for row in rows)

    throughput = bench_warm_throughput(graph, kmax, args.epsilon, args.seed)
    print(
        f"\nwarm throughput over k in 1..{kmax} (theta={throughput['theta']}): "
        f"select {throughput['select_fresh_qps']:.0f} q/s fresh, "
        f"{throughput['select_incremental_qps']:.0f} q/s incremental, "
        f"spread {throughput['spread_qps']:.0f} q/s"
    )

    summary = {
        "dataset": args.dataset,
        "scale": scale,
        "epsilon": args.epsilon,
        "graph": {"n": graph.n, "m": graph.m},
        "cold_vs_warm": rows,
        "median_speedup": median_speedup,
        "min_speedup_required": args.min_speedup,
        "warm_throughput": throughput,
        "metrics": collect_obs_metrics(),
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json_out}")

    if median_speedup < args.min_speedup:
        print(
            f"FAIL: median warm speedup {median_speedup:.1f}x "
            f"below the {args.min_speedup:.0f}x bar",
            file=sys.stderr,
        )
        return 1
    print(f"OK: median warm speedup {median_speedup:.1f}x (bar: {args.min_speedup:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
