"""Ablations of this implementation's design choices (DESIGN.md §4).

Not paper figures: these justify (a) the Binomial fast path in the IC RR
sampler and (b) offering both exact and lazy max-coverage greedy variants.
Each ablation embeds its own semantics check so a speed-up can never hide a
behaviour change.
"""

from conftest import run_once

from repro.experiments import ablation_coverage, ablation_engine, ablation_ic_fast_path


def test_ic_sampler_fast_path(benchmark, record_experiment):
    result = run_once(benchmark, ablation_ic_fast_path)
    record_experiment(result)

    for row in result.rows:
        dataset, slow_s, fast_s, speedup, mean_w_slow, mean_w_fast = row
        # Semantics: mean widths agree within MC noise.
        assert abs(mean_w_fast - mean_w_slow) / max(mean_w_slow, 1.0) < 0.1, dataset
    # The fast path pays off on the high-degree stand-in (twitter, avg ~70).
    by_dataset = {row[0]: row for row in result.rows}
    assert by_dataset["twitter"][3] > 1.0


def test_engine_vectorized_vs_python(benchmark, record_experiment):
    result = run_once(benchmark, ablation_engine)
    record_experiment(result)

    for row in result.rows:
        dataset, python_s, vectorized_s, speedup, mean_w_py, mean_w_vec = row
        # Semantics: both engines sample the same distribution.
        assert abs(mean_w_vec - mean_w_py) / max(mean_w_py, 1.0) < 0.1, dataset
        # The vectorized engine must win on every stand-in dataset.
        assert speedup > 1.0, dataset


def test_coverage_greedy_variants(benchmark, record_experiment):
    result = run_once(benchmark, ablation_coverage)
    record_experiment(result)

    for row in result.rows:
        k, exact_s, lazy_s, exact_covered, lazy_covered = row
        # Both are exact greedy: achieved coverage must be identical.
        assert exact_covered == lazy_covered, f"k={k}"
