"""Figure 9 — TIM+ (ε = ℓ = 1) vs IRIE expected spread under IC.

Paper shape: TIM+'s spreads are no worse anywhere and noticeably higher on
some datasets — the guaranteed method does not trade quality for its speed.
"""

from conftest import run_once

from repro.experiments import figure9


def test_figure9(benchmark, record_experiment):
    result = run_once(benchmark, figure9)
    record_experiment(result)

    worse = 0
    for row in result.rows:
        _, k, tim_spread, irie_spread = row
        # Allow 10% MC slack per point; count real losses.
        if tim_spread < 0.9 * irie_spread:
            worse += 1
    assert worse == 0, f"TIM+ lost clearly on {worse} configurations"

    # Aggregate: TIM+ at least matches IRIE overall.
    total_tim = sum(row[2] for row in result.rows)
    total_irie = sum(row[3] for row in result.rows)
    assert total_tim >= 0.95 * total_irie
