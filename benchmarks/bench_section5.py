"""Section 5 — theoretical comparisons at the paper's dataset sizes.

No scaling here: the asymptotic cost models are evaluated at the *original*
Table 2 sizes, reproducing the orders-of-magnitude argument directly.
"""

from conftest import run_once

from repro.experiments import section5_table


def test_section5(benchmark, record_experiment):
    result = run_once(benchmark, section5_table)
    record_experiment(result)

    for row in result.rows:
        dataset, tim, ris, greedy, ris_ratio, greedy_ratio = row
        assert tim < ris < greedy, dataset
    # The RIS/TIM gap is ~ k l^2 log n / ((k+l) eps): tens at these settings.
    assert all(row[4] > 10 for row in result.rows)
    # Greedy is computationally out of reach at every paper-scale size.
    assert all(row[5] > 1e4 for row in result.rows)
