"""Figure 4 — per-phase breakdown of TIM (4a) and TIM+ (4b) on NetHEPT.

Paper shape: Algorithm 1 (node selection) dominates the total; Algorithm 3
costs almost nothing yet cuts TIM+'s node-selection bill to <= 1/3 of TIM's.
"""

import pytest
from conftest import run_once

from repro.experiments import figure4


@pytest.mark.parametrize("refine", [False, True], ids=["fig4a-TIM", "fig4b-TIM+"])
def test_figure4(benchmark, record_experiment, refine):
    result = run_once(benchmark, figure4, refine=refine)
    record_experiment(result)

    node_selection = result.column("alg1_node_sel")
    totals = result.column("total")
    refinement = result.column("alg3_refine")

    # Node selection dominates the overall cost.
    assert sum(node_selection) > 0.5 * sum(totals)
    if refine:
        # Refinement is cheap relative to the whole pipeline.
        assert sum(refinement) < 0.25 * sum(totals)
    else:
        assert sum(refinement) == 0.0


def test_figure4_refinement_pays_for_itself(benchmark, record_experiment):
    """TIM+ total should beat TIM total on the same configurations."""

    def both():
        return figure4(refine=False), figure4(refine=True)

    tim_result, timp_result = benchmark.pedantic(both, rounds=1, iterations=1)
    assert sum(timp_result.column("total")) < sum(tim_result.column("total"))
