"""Figure 7 — runtime vs ε on the large stand-ins.

Paper shape: cost falls steeply as ε grows (θ ∝ ε⁻²); at the loosest ε even
the largest stand-in finishes quickly.
"""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure7


def test_figure7(benchmark, record_experiment):
    result = run_once(benchmark, figure7)
    record_experiment(result)

    per_dataset: dict[str, list] = defaultdict(list)
    for row in result.rows:
        per_dataset[row[0]].append(row)

    for dataset, rows in per_dataset.items():
        ordered = sorted(rows, key=lambda r: r[1])  # by epsilon
        tightest = ordered[0]
        loosest = ordered[-1]
        # TIM+ at the tightest epsilon costs more than at the loosest,
        # under both models (theta ~ 1/eps^2 => ~4x between 0.25 and 0.5).
        assert tightest[3] > loosest[3], dataset  # TIM+(IC)
        assert tightest[5] > loosest[5], dataset  # TIM+(LT)
        if tightest[2] is not None:
            assert tightest[2] > loosest[2], dataset  # TIM(IC)
