"""Figure 11 — TIM+ (ε = ℓ = 1) vs SIMPATH expected spread under LT.

Paper shape: TIM+ no worse anywhere, clearly higher on LiveJournal.
"""

from conftest import run_once

from repro.experiments import figure11


def test_figure11(benchmark, record_experiment):
    result = run_once(benchmark, figure11)
    record_experiment(result)

    worse = 0
    for row in result.rows:
        _, _, tim_spread, simpath_spread = row
        if tim_spread < 0.9 * simpath_spread:
            worse += 1
    assert worse == 0, f"TIM+ lost clearly on {worse} configurations"

    total_tim = sum(row[2] for row in result.rows)
    total_simpath = sum(row[3] for row in result.rows)
    assert total_tim >= 0.95 * total_simpath
