"""Figure 8 — TIM+ (ε = ℓ = 1) vs IRIE runtime under IC.

Paper shape: IRIE wins at small k; TIM+ overtakes for k > 20 because its
cost *falls* with k while IRIE's grows linearly.
"""

from collections import defaultdict

from conftest import run_once

from repro.experiments import figure8


def test_figure8(benchmark, record_experiment):
    result = run_once(benchmark, figure8)
    record_experiment(result)

    per_dataset: dict[str, list] = defaultdict(list)
    for row in result.rows:
        per_dataset[row[0]].append(row)

    winners_at_50 = 0
    for dataset, rows in per_dataset.items():
        by_k = {row[1]: row for row in rows}
        # IRIE's cost grows with k.
        assert by_k[50][3] > by_k[1][3], dataset
        if by_k[50][2] <= by_k[50][3]:
            winners_at_50 += 1
    # TIM+ wins at k=50 on at least half the datasets (the paper's crossover).
    assert winners_at_50 >= len(per_dataset) / 2
