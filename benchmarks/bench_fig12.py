"""Figure 12 — TIM+ memory consumption vs k (IC and LT, all five stand-ins).

Paper shape: the footprint is the RR collection |R| = λ/KPT⁺; IC costs more
than LT per dataset (LT's KPT⁺ is larger); footprints are modest and grow
with dataset size — with the NetHEPT-vs-Epinions inversion the paper
highlights (smaller KPT⁺ on NetHEPT inflates |R|).
"""

from conftest import run_once

from repro.experiments import figure12


def test_figure12(benchmark, record_experiment):
    result = run_once(benchmark, figure12)
    record_experiment(result)

    ic_beats_lt = 0
    for row in result.rows:
        _, _, ic_mib, lt_mib, ic_theta, lt_theta = row
        assert ic_mib > 0 and lt_mib > 0
        assert ic_theta > 0 and lt_theta > 0
        if ic_mib >= lt_mib:
            ic_beats_lt += 1
    # IC >= LT memory on the clear majority of configurations.
    assert ic_beats_lt >= 0.7 * len(result.rows)
