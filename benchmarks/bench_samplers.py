"""Micro-benchmarks: raw RR-set generation throughput (IC vs LT).

These are the per-operation numbers behind every figure: Section 7.2's
observation that LT sampling is cheaper than IC (one random number per node
versus per edge) shows up directly here.
"""

import pytest

from repro.datasets import build_dataset
from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def livejournal_ic():
    return build_dataset("livejournal", scale=0.5).weighted_for("IC")


@pytest.fixture(scope="module")
def livejournal_lt():
    return build_dataset("livejournal", scale=0.5).weighted_for("LT")


def test_ic_rr_generation(benchmark, livejournal_ic):
    sampler = make_rr_sampler(livejournal_ic, "IC")
    rng = RandomSource(1)
    benchmark(sampler.sample_many, 2000, rng)


def test_lt_rr_generation(benchmark, livejournal_lt):
    sampler = make_rr_sampler(livejournal_lt, "LT")
    rng = RandomSource(2)
    benchmark(sampler.sample_many, 2000, rng)


def test_ic_forward_simulation(benchmark, livejournal_ic):
    from repro.diffusion import simulate_ic

    rng = RandomSource(3)

    def run_batch():
        for seed_node in range(0, 200):
            simulate_ic(livejournal_ic, [seed_node], rng)

    benchmark(run_batch)


def test_greedy_coverage_throughput(benchmark, livejournal_ic):
    from repro.rrset import greedy_max_coverage

    sampler = make_rr_sampler(livejournal_ic, "IC")
    rr_sets = [rr.nodes for rr in sampler.sample_many(30_000, RandomSource(4))]
    benchmark(greedy_max_coverage, rr_sets, livejournal_ic.n, 50)
