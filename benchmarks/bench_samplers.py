"""Micro-benchmarks: raw RR-set generation throughput and engine comparison.

Two halves:

* A runnable script (``python benchmarks/bench_samplers.py``) that reports
  the vectorized vs Python RR engines side by side on a weighted-cascade
  Erdős–Rényi graph — RR generation throughput, end-to-end ``tim`` wall
  clock, and the relative spread difference between engines.  Defaults to
  the paper-scale n=20k / m=200k instance; ``--smoke`` shrinks it for CI.
  Exits non-zero if the vectorized engine is not at least ``--min-speedup``
  times faster or the spreads diverge by more than ``--max-spread-diff``.

* pytest-benchmark cases (the per-operation numbers behind every figure:
  Section 7.2's observation that LT sampling is cheaper than IC shows up
  directly here).
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


# ----------------------------------------------------------------------
# Engine comparison script
# ----------------------------------------------------------------------
def build_wc_graph(n: int, m: int, seed: int = 2014):
    from repro.graphs import gnm_random_digraph, weighted_cascade

    return weighted_cascade(gnm_random_digraph(n, m, rng=seed))


def bench_generation(graph, num_sets: int, seed: int = 1) -> dict[str, float]:
    """Seconds to generate ``num_sets`` random RR sets per engine."""
    sampler = make_rr_sampler(graph, "IC")
    # Warm both paths once (adjacency/degree caches, allocator) so the
    # timed sections measure steady-state throughput.
    sampler.sample(RandomSource(0))
    sampler.sample_random_batch(min(num_sets, 500), RandomSource(0))

    rng = RandomSource(seed)
    started = time.perf_counter()
    total_python = 0
    for _ in range(num_sets):
        total_python += len(sampler.sample(rng))
    python_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch = sampler.sample_random_batch(num_sets, RandomSource(seed + 1))
    vectorized_seconds = time.perf_counter() - started
    return {
        "python_seconds": python_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": python_seconds / max(vectorized_seconds, 1e-12),
        "python_mean_size": total_python / num_sets,
        "vectorized_mean_size": float(batch.set_sizes().mean()),
    }


def bench_tim(graph, k: int, epsilon: float, seed: int = 3) -> dict[str, float]:
    """End-to-end ``tim`` wall clock and estimated spread per engine."""
    from repro.core import tim

    results = {}
    for engine in ("python", "vectorized"):
        started = time.perf_counter()
        result = tim(graph, k, epsilon=epsilon, rng=seed, engine=engine)
        results[engine] = {
            "seconds": time.perf_counter() - started,
            "spread": result.estimated_spread,
            "theta": result.theta,
        }
    py, vec = results["python"], results["vectorized"]
    results["speedup"] = py["seconds"] / max(vec["seconds"], 1e-12)
    results["spread_rel_diff"] = abs(vec["spread"] - py["spread"]) / max(py["spread"], 1e-12)
    return results


def run_comparison(args) -> int:
    print(f"graph: weighted-cascade G(n={args.n}, m={args.m})  [seed {args.seed}]")
    graph = build_wc_graph(args.n, args.m, seed=args.seed)

    gen = bench_generation(graph, args.num_sets, seed=args.seed)
    print(f"\nRR generation ({args.num_sets} random RR sets):")
    print(
        f"  python     {gen['python_seconds']*1e3:9.1f} ms   "
        f"(mean |R| = {gen['python_mean_size']:.2f})"
    )
    print(
        f"  vectorized {gen['vectorized_seconds']*1e3:9.1f} ms   "
        f"(mean |R| = {gen['vectorized_mean_size']:.2f})"
    )
    print(f"  speedup    {gen['speedup']:9.2f}x")

    timres = bench_tim(graph, args.k, args.epsilon, seed=args.seed)
    print(f"\ntim(k={args.k}, eps={args.epsilon}) end to end:")
    for engine in ("python", "vectorized"):
        row = timres[engine]
        print(
            f"  {engine:<10} {row['seconds']*1e3:9.1f} ms   "
            f"spread = {row['spread']:10.2f}   theta = {row['theta']}"
        )
    print(f"  speedup    {timres['speedup']:9.2f}x")
    print(f"  spread rel diff: {timres['spread_rel_diff']*100:.3f}%")

    failed = False
    if gen["speedup"] < args.min_speedup:
        print(
            f"FAIL: RR-generation speedup {gen['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if timres["spread_rel_diff"] > args.max_spread_diff:
        print(
            f"FAIL: spread divergence {timres['spread_rel_diff']*100:.3f}% "
            f"> allowed {args.max_spread_diff*100:.1f}%",
            file=sys.stderr,
        )
        failed = True
    if not failed:
        print("\nOK: vectorized engine meets speedup and parity targets")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--m", type=int, default=200_000)
    parser.add_argument("--num-sets", type=int, default=20_000)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument("--max-spread-diff", type=float, default=0.02)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration: n=2000, m=10000, fewer RR sets, "
        "relaxed speedup bar (shared CI runners are noisy)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.m, args.num_sets, args.k = 2_000, 10_000, 5_000, 10
    if args.min_speedup is None:
        args.min_speedup = 1.5 if args.smoke else 3.0
    return run_comparison(args)


# ----------------------------------------------------------------------
# pytest-benchmark cases
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def livejournal_ic():
    from repro.datasets import build_dataset

    return build_dataset("livejournal", scale=0.5).weighted_for("IC")


@pytest.fixture(scope="module")
def livejournal_lt():
    from repro.datasets import build_dataset

    return build_dataset("livejournal", scale=0.5).weighted_for("LT")


def test_ic_rr_generation(benchmark, livejournal_ic):
    sampler = make_rr_sampler(livejournal_ic, "IC")
    rng = RandomSource(1)
    benchmark(sampler.sample_many, 2000, rng)


def test_ic_rr_generation_vectorized(benchmark, livejournal_ic):
    sampler = make_rr_sampler(livejournal_ic, "IC")
    benchmark(lambda: sampler.sample_random_batch(2000, RandomSource(1)))


def test_lt_rr_generation(benchmark, livejournal_lt):
    sampler = make_rr_sampler(livejournal_lt, "LT")
    rng = RandomSource(2)
    benchmark(sampler.sample_many, 2000, rng)


def test_ic_forward_simulation(benchmark, livejournal_ic):
    from repro.diffusion import simulate_ic

    rng = RandomSource(3)

    def run_batch():
        for seed_node in range(0, 200):
            simulate_ic(livejournal_ic, [seed_node], rng)

    benchmark(run_batch)


def test_greedy_coverage_throughput(benchmark, livejournal_ic):
    from repro.rrset import greedy_max_coverage

    sampler = make_rr_sampler(livejournal_ic, "IC")
    rr_sets = sampler.sample_random_batch(30_000, RandomSource(4))
    benchmark(greedy_max_coverage, rr_sets, livejournal_ic.n, 50)


if __name__ == "__main__":
    raise SystemExit(main())
