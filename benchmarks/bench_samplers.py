"""Micro-benchmarks: raw RR-set generation throughput and engine comparison.

Three halves:

* A runnable script (``python benchmarks/bench_samplers.py``) that reports
  the vectorized vs Python RR engines side by side on a weighted-cascade
  Erdős–Rényi graph — RR generation throughput, end-to-end ``tim`` wall
  clock, and the relative spread difference between engines.  Defaults to
  the paper-scale n=20k / m=200k instance; ``--smoke`` shrinks it for CI.
  Exits non-zero if the vectorized engine is not at least ``--min-speedup``
  times faster or the spreads diverge by more than ``--max-spread-diff``.

* A multicore sweep (``--jobs 1,2,0``; 0 = all cores) over the sharded
  worker-pool engine: RR-sets/sec and speedup per worker count, plus a
  hard byte-identity check — every jobs value must produce the exact same
  ``FlatRRCollection`` arrays and the exact same ``tim()`` seed set as the
  first one.  ``--min-jobs-speedup`` turns the speedup into a pass/fail
  bar (only enforced when more than one core is actually available);
  ``--json-out`` records the summary for CI artifacts.

* pytest-benchmark cases (the per-operation numbers behind every figure:
  Section 7.2's observation that LT sampling is cheaper than IC shows up
  directly here).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.api import ExecutionPolicy
from repro.obs import runtime as obs
from repro.rrset import make_rr_sampler
from repro.utils.rng import RandomSource


def collect_obs_metrics(rr_sets_per_sec: dict[str, float]) -> dict:
    """The per-phase rollup the tracer recorded, plus measured throughput.

    ``rr_sets_per_sec`` carries the externally timed RR throughput per
    configuration (worker pools count their RR sets in the workers, so the
    parent-side counter alone would undercount there).
    """
    return {
        "rr_sets_per_sec": rr_sets_per_sec,
        "phases": obs.phase_breakdown(),
    }


# ----------------------------------------------------------------------
# Engine comparison script
# ----------------------------------------------------------------------
def build_wc_graph(n: int, m: int, seed: int = 2014):
    from repro.graphs import gnm_random_digraph, weighted_cascade

    return weighted_cascade(gnm_random_digraph(n, m, rng=seed))


def bench_generation(graph, num_sets: int, seed: int = 1) -> dict[str, float]:
    """Seconds to generate ``num_sets`` random RR sets per engine."""
    sampler = make_rr_sampler(graph, "IC")
    # Warm both paths once (adjacency/degree caches, allocator) so the
    # timed sections measure steady-state throughput.
    sampler.sample(RandomSource(0))
    sampler.sample_random_batch(min(num_sets, 500), RandomSource(0))

    rng = RandomSource(seed)
    started = time.perf_counter()
    total_python = 0
    for _ in range(num_sets):
        total_python += len(sampler.sample(rng))
    python_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch = sampler.sample_random_batch(num_sets, RandomSource(seed + 1))
    vectorized_seconds = time.perf_counter() - started
    return {
        "python_seconds": python_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": python_seconds / max(vectorized_seconds, 1e-12),
        "python_mean_size": total_python / num_sets,
        "vectorized_mean_size": float(batch.set_sizes().mean()),
    }


def bench_tim(graph, k: int, epsilon: float, seed: int = 3) -> dict[str, float]:
    """End-to-end ``tim`` wall clock and estimated spread per engine."""
    from repro.core import tim

    results = {}
    for engine in ("python", "vectorized"):
        started = time.perf_counter()
        result = tim(graph, k, epsilon=epsilon, rng=seed,
                 policy=ExecutionPolicy(engine=engine))
        results[engine] = {
            "seconds": time.perf_counter() - started,
            "spread": result.estimated_spread,
            "theta": result.theta,
        }
    py, vec = results["python"], results["vectorized"]
    results["speedup"] = py["seconds"] / max(vec["seconds"], 1e-12)
    results["spread_rel_diff"] = abs(vec["spread"] - py["spread"]) / max(py["spread"], 1e-12)
    return results


def run_comparison(args) -> int:
    print(f"graph: weighted-cascade G(n={args.n}, m={args.m})  [seed {args.seed}]")
    graph = build_wc_graph(args.n, args.m, seed=args.seed)

    gen = bench_generation(graph, args.num_sets, seed=args.seed)
    print(f"\nRR generation ({args.num_sets} random RR sets):")
    print(
        f"  python     {gen['python_seconds']*1e3:9.1f} ms   "
        f"(mean |R| = {gen['python_mean_size']:.2f})"
    )
    print(
        f"  vectorized {gen['vectorized_seconds']*1e3:9.1f} ms   "
        f"(mean |R| = {gen['vectorized_mean_size']:.2f})"
    )
    print(f"  speedup    {gen['speedup']:9.2f}x")

    timres = bench_tim(graph, args.k, args.epsilon, seed=args.seed)
    print(f"\ntim(k={args.k}, eps={args.epsilon}) end to end:")
    for engine in ("python", "vectorized"):
        row = timres[engine]
        print(
            f"  {engine:<10} {row['seconds']*1e3:9.1f} ms   "
            f"spread = {row['spread']:10.2f}   theta = {row['theta']}"
        )
    print(f"  speedup    {timres['speedup']:9.2f}x")
    print(f"  spread rel diff: {timres['spread_rel_diff']*100:.3f}%")

    failed = False
    if args.json_out:
        summary = {
            "graph": {"n": args.n, "m": args.m, "seed": args.seed, "model": "IC/WC"},
            "num_sets": args.num_sets,
            "generation": gen,
            "tim": timres,
            "metrics": collect_obs_metrics({
                "python": args.num_sets / max(gen["python_seconds"], 1e-12),
                "vectorized": args.num_sets / max(gen["vectorized_seconds"], 1e-12),
            }),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"\nwrote {args.json_out}")

    if gen["speedup"] < args.min_speedup:
        print(
            f"FAIL: RR-generation speedup {gen['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if timres["spread_rel_diff"] > args.max_spread_diff:
        print(
            f"FAIL: spread divergence {timres['spread_rel_diff']*100:.3f}% "
            f"> allowed {args.max_spread_diff*100:.1f}%",
            file=sys.stderr,
        )
        failed = True
    if not failed:
        print("\nOK: vectorized engine meets speedup and parity targets")
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Multicore jobs sweep
# ----------------------------------------------------------------------
def run_jobs_sweep(args) -> int:
    """Time the sharded worker-pool engine at each requested worker count.

    Every row is checked for byte-identity against the first: identical
    packed RR arrays and identical ``tim()`` seeds, the determinism contract
    of :class:`repro.parallel.ParallelSampler`.
    """
    import numpy as np

    from repro.core import tim
    from repro.parallel import ParallelSampler, resolve_jobs

    jobs_values = [int(part) for part in args.jobs.split(",") if part.strip()]
    cpu_count = os.cpu_count() or 1
    print(f"graph: weighted-cascade G(n={args.n}, m={args.m})  [seed {args.seed}]")
    print(f"host : {cpu_count} cpu(s); sweep jobs={jobs_values}")
    graph = build_wc_graph(args.n, args.m, seed=args.seed)

    rows = []
    reference = None
    reference_seeds = None
    failed = False
    for jobs in jobs_values:
        sampler = ParallelSampler(make_rr_sampler(graph, "IC"), jobs=jobs)
        # Warm-up spawns the pool, broadcasts the graph, and builds the
        # per-worker adjacency caches so the timed section measures
        # steady-state generation throughput (the persistent-pool shape).
        sampler.sample_random_batch(min(args.num_sets, 2000), RandomSource(0))
        started = time.perf_counter()
        batch = sampler.sample_random_batch(args.num_sets, RandomSource(args.seed + 1))
        seconds = time.perf_counter() - started
        sampler.close()
        tim_result = tim(graph, args.k, epsilon=args.epsilon, rng=args.seed,
                         policy=ExecutionPolicy(jobs=jobs))

        arrays = (
            batch.ptr_array, batch.nodes_array, batch.roots_array,
            batch.widths_array, batch.costs_array,
        )
        if reference is None:
            reference, reference_seeds = arrays, tim_result.seeds
            identical = True
        else:
            identical = all(np.array_equal(a, b) for a, b in zip(reference, arrays))
            identical = identical and tim_result.seeds == reference_seeds
        rows.append({
            "jobs": jobs,
            "resolved_jobs": resolve_jobs(jobs),
            "seconds": seconds,
            "rr_sets_per_sec": args.num_sets / max(seconds, 1e-12),
            "speedup": rows[0]["seconds"] / max(seconds, 1e-12) if rows else 1.0,
            "identical_to_baseline": identical,
            "tim_seeds": tim_result.seeds,
        })
        if not identical:
            failed = True

    print(f"\nsharded RR generation ({args.num_sets} random RR sets):")
    print(f"  {'jobs':>5} {'workers':>8} {'ms':>9} {'RR/s':>10} {'speedup':>8}  identical")
    for row in rows:
        print(
            f"  {row['jobs']:>5} {row['resolved_jobs']:>8} {row['seconds']*1e3:>9.1f} "
            f"{row['rr_sets_per_sec']:>10.0f} {row['speedup']:>7.2f}x  "
            f"{'yes' if row['identical_to_baseline'] else 'NO'}"
        )
    if failed:
        print("FAIL: results are not byte-identical across worker counts", file=sys.stderr)

    best = max(rows, key=lambda row: row["speedup"])
    multicore_rows = [row for row in rows if row["resolved_jobs"] > 1]
    if args.min_jobs_speedup is not None and multicore_rows:
        if cpu_count <= 1:
            print(
                f"note: single-cpu host, speedup bar ({args.min_jobs_speedup:.2f}x) "
                "not enforced (no parallel hardware to measure)",
            )
        elif best["speedup"] < args.min_jobs_speedup:
            print(
                f"FAIL: best multicore speedup {best['speedup']:.2f}x "
                f"(jobs={best['jobs']}) < required {args.min_jobs_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True

    if args.json_out:
        summary = {
            "graph": {"n": args.n, "m": args.m, "seed": args.seed, "model": "IC/WC"},
            "num_sets": args.num_sets,
            "cpu_count": cpu_count,
            "rows": rows,
            "ok": not failed,
            "metrics": collect_obs_metrics({
                str(row["jobs"]): row["rr_sets_per_sec"] for row in rows
            }),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"\nwrote {args.json_out}")
    if not failed:
        print("\nOK: identical results at every worker count" + (
            f"; best speedup {best['speedup']:.2f}x at jobs={best['jobs']}"
            if len(rows) > 1 else ""
        ))
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--m", type=int, default=200_000)
    parser.add_argument(
        "--num-sets", type=int, default=None,
        help="RR sets per timed run (default 20000, or 5000 with --smoke)",
    )
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--epsilon", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument("--max-spread-diff", type=float, default=0.02)
    parser.add_argument(
        "--jobs",
        default=None,
        help="comma-separated worker counts (e.g. '1,2,0'; 0 = all cores): "
        "run the multicore sharding sweep instead of the engine comparison",
    )
    parser.add_argument(
        "--min-jobs-speedup",
        type=float,
        default=None,
        help="fail the --jobs sweep when the best multicore speedup over the "
        "first entry falls below this (skipped on single-cpu hosts)",
    )
    parser.add_argument("--json-out", default=None, help="write a JSON summary here")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration: n=2000, m=10000, fewer RR sets, "
        "relaxed speedup bar (shared CI runners are noisy)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.m, args.k = 2_000, 10_000, 10
    if args.num_sets is None:
        args.num_sets = 5_000 if args.smoke else 20_000
    if args.min_speedup is None:
        args.min_speedup = 1.5 if args.smoke else 3.0
    # Instrument the whole run so --json-out can report per-phase seconds
    # alongside the externally timed throughput numbers.
    obs.configure(enabled=True)
    obs.reset()
    if args.jobs is not None:
        return run_jobs_sweep(args)
    return run_comparison(args)


# ----------------------------------------------------------------------
# pytest-benchmark cases
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def livejournal_ic():
    from repro.datasets import build_dataset

    return build_dataset("livejournal", scale=0.5).weighted_for("IC")


@pytest.fixture(scope="module")
def livejournal_lt():
    from repro.datasets import build_dataset

    return build_dataset("livejournal", scale=0.5).weighted_for("LT")


def test_ic_rr_generation(benchmark, livejournal_ic):
    sampler = make_rr_sampler(livejournal_ic, "IC")
    rng = RandomSource(1)
    benchmark(sampler.sample_many, 2000, rng)


def test_ic_rr_generation_vectorized(benchmark, livejournal_ic):
    sampler = make_rr_sampler(livejournal_ic, "IC")
    benchmark(lambda: sampler.sample_random_batch(2000, RandomSource(1)))


def test_lt_rr_generation(benchmark, livejournal_lt):
    sampler = make_rr_sampler(livejournal_lt, "LT")
    rng = RandomSource(2)
    benchmark(sampler.sample_many, 2000, rng)


def test_ic_forward_simulation(benchmark, livejournal_ic):
    from repro.diffusion import simulate_ic

    rng = RandomSource(3)

    def run_batch():
        for seed_node in range(0, 200):
            simulate_ic(livejournal_ic, [seed_node], rng)

    benchmark(run_batch)


def test_greedy_coverage_throughput(benchmark, livejournal_ic):
    from repro.rrset import greedy_max_coverage

    sampler = make_rr_sampler(livejournal_ic, "IC")
    rr_sets = sampler.sample_random_batch(30_000, RandomSource(4))
    benchmark(greedy_max_coverage, rr_sets, livejournal_ic.n, 50)


if __name__ == "__main__":
    raise SystemExit(main())
