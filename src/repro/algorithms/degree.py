"""Degree-based heuristics: max-degree and DegreeDiscount (Chen et al. [6]).

Classic cheap baselines.  Max-degree ignores overlap between seeds;
DegreeDiscount corrects for it under IC with a uniform propagation
probability ``p`` using Chen et al.'s discount
``dd(v) = d(v) − 2 t(v) − (d(v) − t(v)) t(v) p``, where ``t(v)`` counts
``v``'s already-selected in-neighbours.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.base import register_algorithm
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.validation import check_k, check_probability

__all__ = ["max_degree", "degree_discount"]


def max_degree(graph: DiGraph, k: int, model="IC", rng=None) -> InfluenceMaxResult:
    """Top-k nodes by out-degree (ties toward smaller id)."""
    check_k(k, graph.n)
    resolved = resolve_model(model)
    started = obs.now()
    degrees = graph.out_degrees()
    order = np.lexsort((np.arange(graph.n), -degrees))
    seeds = [int(v) for v in order[:k]]
    return InfluenceMaxResult(
        algorithm="MaxDegree",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
    )


def degree_discount(
    graph: DiGraph, k: int, model="IC", rng=None, p: float = 0.01
) -> InfluenceMaxResult:
    """DegreeDiscountIC with a lazy heap over discounted degrees."""
    check_k(k, graph.n)
    check_probability(p, "p")
    resolved = resolve_model(model)
    started = obs.now()
    degrees = graph.out_degrees().astype(np.float64)
    selected_in_neighbors = np.zeros(graph.n, dtype=np.float64)
    discounted = degrees.copy()
    # Max-heap with lazy invalidation: stored value may be stale; re-check.
    heap = [(-discounted[v], v) for v in range(graph.n)]
    heapq.heapify(heap)
    seeds: list[int] = []
    chosen: set[int] = set()
    while len(seeds) < k:
        negative_value, node = heapq.heappop(heap)
        if node in chosen:
            continue
        if -negative_value != discounted[node]:
            heapq.heappush(heap, (-discounted[node], node))
            continue
        seeds.append(int(node))
        chosen.add(node)
        for neighbor in graph.out_neighbors(node):
            if neighbor in chosen:
                continue
            selected_in_neighbors[neighbor] += 1.0
            t = selected_in_neighbors[neighbor]
            d = degrees[neighbor]
            discounted[neighbor] = d - 2.0 * t - (d - t) * t * p
            heapq.heappush(heap, (-discounted[neighbor], int(neighbor)))
    return InfluenceMaxResult(
        algorithm="DegreeDiscount",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        extras={"p": p},
    )


register_algorithm("degree", max_degree)
register_algorithm("degree-discount", degree_discount)
