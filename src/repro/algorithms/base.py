"""Algorithm registry and the uniform :func:`maximize_influence` front door.

Every influence-maximization algorithm in the library is a callable
``fn(graph, k, *, model, rng, **kwargs) -> InfluenceMaxResult`` registered
under one or more names.  The registry powers the CLI, the experiment
harness, and keeps the comparison benches honest (same call shape for every
contender).
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.core.results import InfluenceMaxResult
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs

__all__ = [
    "register_algorithm",
    "algorithm_names",
    "get_algorithm",
    "maximize_influence",
    "supports_policy",
]

_REGISTRY: dict[str, Callable] = {}


def _same_identity(a: Callable, b: Callable) -> bool:
    """Two callables that are (re)definitions of the same function.

    A module re-import (interactive reload, importlib.reload, a second
    ``import repro.algorithms`` under a fresh module object) re-executes the
    registration calls with *new* function objects for the *same* source
    definitions; matching on module + qualname recognises that case.
    """
    if a is b:
        return True
    return (
        getattr(a, "__module__", None) is not None
        and getattr(a, "__module__", None) == getattr(b, "__module__", None)
        and getattr(a, "__qualname__", None) == getattr(b, "__qualname__", None)
    )


def register_algorithm(name: str, fn: Callable, *, replace: bool = False) -> None:
    """Register ``fn`` under ``name`` (case-insensitive).

    Re-registering the *same* definition (same module and qualified name —
    the module-reimport / interactive-reload case) is idempotent and never
    raises.  Registering a genuinely different callable under a taken name
    raises unless ``replace=True`` — silent clobbering hides typos, but an
    explicit replacement (a benchmark shimming ``tim`` with an
    instrumented wrapper, say) is a legitimate move.
    """
    key = name.lower()
    existing = _REGISTRY.get(key)
    if existing is not None and not replace and not _same_identity(existing, fn):
        raise ValueError(
            f"algorithm {name!r} already registered (to "
            f"{getattr(existing, '__qualname__', existing)!r}); pass "
            f"replace=True to override it"
        )
    _REGISTRY[key] = fn


def algorithm_names() -> list[str]:
    """Sorted registered algorithm names."""
    return sorted(_REGISTRY)


def get_algorithm(name: str) -> Callable:
    """Look up a registered algorithm by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown algorithm {name!r}; known: {algorithm_names()}")
    return _REGISTRY[key]


def supports_policy(algorithm: str) -> bool:
    """Whether the registered algorithm accepts ``policy=ExecutionPolicy``."""
    try:
        parameters = inspect.signature(get_algorithm(algorithm)).parameters
    except (TypeError, ValueError):  # pragma: no cover - C callables etc.
        return False
    return "policy" in parameters


def maximize_influence(
    graph: DiGraph, k: int, algorithm: str = "tim+", model="IC", rng=None,
    policy=None, **kwargs
) -> InfluenceMaxResult:
    """Run any registered algorithm; wall-clock is measured if it doesn't.

    ``kwargs`` are forwarded verbatim (ε, ℓ, r, heuristic tunables, ...).
    ``policy`` — an :class:`~repro.api.policy.ExecutionPolicy` — forwards
    to algorithms that understand execution policies (the TIM family and
    RIS); passing one to a heuristic that cannot honour it raises
    immediately rather than silently ignoring the request.
    """
    fn = get_algorithm(algorithm)
    if policy is not None:
        if not supports_policy(algorithm):
            raise ValueError(
                f"algorithm {algorithm!r} does not accept an execution "
                f"policy; drop policy= or pick one of the RR-set algorithms"
            )
        kwargs["policy"] = policy
    started = obs.now()
    result = fn(graph, k, model=model, rng=rng, **kwargs)
    if result.runtime_seconds == 0.0:
        result.runtime_seconds = obs.now() - started
    return result
