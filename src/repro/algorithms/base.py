"""Algorithm registry and the uniform :func:`maximize_influence` front door.

Every influence-maximization algorithm in the library is a callable
``fn(graph, k, *, model, rng, **kwargs) -> InfluenceMaxResult`` registered
under one or more names.  The registry powers the CLI, the experiment
harness, and keeps the comparison benches honest (same call shape for every
contender).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.results import InfluenceMaxResult
from repro.graphs.digraph import DiGraph

__all__ = ["register_algorithm", "algorithm_names", "get_algorithm", "maximize_influence"]

_REGISTRY: dict[str, Callable] = {}


def register_algorithm(name: str, fn: Callable) -> None:
    """Register ``fn`` under ``name`` (case-insensitive, unique)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[key] = fn


def algorithm_names() -> list[str]:
    """Sorted registered algorithm names."""
    return sorted(_REGISTRY)


def get_algorithm(name: str) -> Callable:
    """Look up a registered algorithm by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown algorithm {name!r}; known: {algorithm_names()}")
    return _REGISTRY[key]


def maximize_influence(
    graph: DiGraph, k: int, algorithm: str = "tim+", model="IC", rng=None, **kwargs
) -> InfluenceMaxResult:
    """Run any registered algorithm; wall-clock is measured if it doesn't.

    ``kwargs`` are forwarded verbatim (ε, ℓ, r, heuristic tunables, ...).
    """
    fn = get_algorithm(algorithm)
    started = time.perf_counter()
    result = fn(graph, k, model=model, rng=rng, **kwargs)
    if result.runtime_seconds == 0.0:
        result.runtime_seconds = time.perf_counter() - started
    return result
