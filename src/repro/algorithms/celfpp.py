"""CELF++ (Goyal, Lu & Lakshmanan [11]) — the paper's Greedy-family SOTA.

CELF++ extends CELF's lazy queue: alongside the marginal gain ``mg1`` w.r.t.
the current seed set ``S``, each entry carries ``mg2``, its gain w.r.t.
``S ∪ {prev_best}`` where ``prev_best`` is the best candidate seen in the
same scan.  If ``prev_best`` is indeed the node picked next, ``mg1`` can be
refreshed to ``mg2`` *without* any new Monte-Carlo work.  The paper uses
CELF++ with r = 10000 as its guaranteed-quality baseline (Section 7.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.algorithms.base import register_algorithm
from repro.algorithms.greedy import monte_carlo_spread
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_k, check_positive_int, require

__all__ = ["celf_plus_plus"]


@dataclass(order=True)
class _Entry:
    sort_key: tuple[float, int] = field(compare=True)
    node: int = field(compare=False)
    mg1: float = field(compare=False)
    mg2: float = field(compare=False)
    prev_best: int | None = field(compare=False)
    flag: int = field(compare=False)


def celf_plus_plus(
    graph: DiGraph,
    k: int,
    model="IC",
    rng=None,
    num_runs: int = 10000,
    candidates=None,
) -> InfluenceMaxResult:
    """CELF++ lazy greedy; identical guarantees, fewer MC evaluations."""
    check_k(k, graph.n)
    check_positive_int(num_runs, "num_runs")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    pool = list(range(graph.n)) if candidates is None else [int(c) for c in candidates]
    require(len(pool) >= k, "candidate pool smaller than k")

    started = obs.now()
    evaluations = 0
    saved_by_mg2 = 0

    def spread(seed_list: list[int]) -> float:
        nonlocal evaluations
        evaluations += 1
        return monte_carlo_spread(graph, seed_list, resolved, num_runs, source)

    # Initial scan: mg1 = sigma({u}); prev_best = best node seen so far in
    # the scan; mg2 = sigma({prev_best, u}) - sigma({prev_best}).
    heap: list[_Entry] = []
    best_so_far: int | None = None
    best_gain = -1.0
    best_singleton: dict[int, float] = {}
    for node in pool:
        mg1 = spread([node])
        best_singleton[node] = mg1
        if best_so_far is None:
            mg2 = mg1
            prev_best = None
        else:
            mg2 = spread([best_so_far, node]) - best_singleton[best_so_far]
            prev_best = best_so_far
        heapq.heappush(heap, _Entry((-mg1, node), node, mg1, mg2, prev_best, 0))
        if mg1 > best_gain:
            best_gain = mg1
            best_so_far = node

    seeds: list[int] = []
    time_at_k: list[float] = []  # cumulative seconds when each seed commits
    current_spread = 0.0
    last_seed: int | None = None
    # Per-iteration best candidate for the mg2 bookkeeping.
    scan_best: int | None = None
    scan_best_gain = -1.0
    spread_with_scan_best: float | None = None

    while len(seeds) < k and heap:
        entry = heapq.heappop(heap)
        if entry.flag == len(seeds):
            seeds.append(entry.node)
            current_spread += entry.mg1
            time_at_k.append(obs.now() - started)
            last_seed = entry.node
            scan_best = None
            scan_best_gain = -1.0
            spread_with_scan_best = None
            continue
        if entry.prev_best == last_seed and entry.flag == len(seeds) - 1:
            # The CELF++ shortcut: mg(u | S) == mg2 computed last round.
            entry.mg1 = entry.mg2
            saved_by_mg2 += 1
        else:
            entry.mg1 = spread(seeds + [entry.node]) - current_spread
            if scan_best is not None:
                if spread_with_scan_best is None:
                    spread_with_scan_best = spread(seeds + [scan_best])
                entry.mg2 = (
                    spread(seeds + [scan_best, entry.node]) - spread_with_scan_best
                )
                entry.prev_best = scan_best
            else:
                entry.mg2 = entry.mg1
                entry.prev_best = None
        entry.flag = len(seeds)
        if entry.mg1 > scan_best_gain:
            scan_best_gain = entry.mg1
            if scan_best != entry.node:
                scan_best = entry.node
                spread_with_scan_best = None
        entry.sort_key = (-entry.mg1, entry.node)
        heapq.heappush(heap, entry)

    return InfluenceMaxResult(
        algorithm="CELF++",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        estimated_spread=current_spread,
        extras={
            "num_runs": num_runs,
            "spread_evaluations": evaluations,
            "mg2_shortcuts": saved_by_mg2,
            "time_at_k": time_at_k,
        },
    )


register_algorithm("celf++", celf_plus_plus)
register_algorithm("celfpp", celf_plus_plus)
