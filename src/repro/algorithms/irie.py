"""IRIE — Influence Ranking + Influence Estimation (Jung, Heo & Chen [16]).

The paper's state-of-the-art *heuristic* under IC (Figures 8–9).  Two
ingredients:

* **IR** (influence ranking): a PageRank-like fixed point
  ``r(u) = (1 − AP(u, S)) · (1 + α · Σ_{(u,v)∈E} p(u, v) · r(v))``
  whose solution ranks each node's residual influence given the already
  selected seeds ``S``.
* **IE** (influence estimation): ``AP(u, S)``, the probability that ``u`` is
  already activated by ``S``; the original uses a MIA-style local-tree
  estimate truncated at path probability θ.

Substitution note (DESIGN.md §3): the authors' C++ IE implementation is not
available, so ``AP`` is estimated by Monte-Carlo simulation of ``S``
(``ap_runs`` runs, default 200).  This preserves IE's role — damping ranks
of nodes the current seeds already reach — and keeps the heuristic's
characteristic behaviour: fast, good on some graphs, no approximation
guarantee.  The rank recursion and its tunables (α = 0.7 as recommended,
fixed-point iteration with convergence cutoff) follow the IRIE paper.
"""

from __future__ import annotations


import numpy as np

from repro.algorithms.base import register_algorithm
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_k, check_positive_int, require

__all__ = ["irie", "influence_rank"]


def influence_rank(
    graph: DiGraph,
    alpha: float = 0.7,
    activation_prob: np.ndarray | None = None,
    max_iterations: int = 20,
    tolerance: float = 1e-4,
) -> np.ndarray:
    """Solve the IR fixed point by damped iteration.

    ``activation_prob[u]`` is AP(u, S) (zeros for the first round).  Returns
    the rank vector r.
    """
    require(0.0 < alpha < 1.0, "alpha must be in (0, 1)")
    if activation_prob is None:
        activation_prob = np.zeros(graph.n, dtype=np.float64)
    damp = 1.0 - activation_prob
    rank = np.ones(graph.n, dtype=np.float64)
    src, dst, prob = graph.src, graph.dst, graph.prob
    for _ in range(max_iterations):
        contribution = np.zeros(graph.n, dtype=np.float64)
        np.add.at(contribution, src, prob * rank[dst])
        updated = damp * (1.0 + alpha * contribution)
        if float(np.abs(updated - rank).max(initial=0.0)) < tolerance:
            rank = updated
            break
        rank = updated
    return rank


def _estimate_activation_probability(graph, model, seeds, num_runs, rng) -> np.ndarray:
    """AP(·, S) via Monte-Carlo: fraction of runs each node is activated."""
    counts = np.zeros(graph.n, dtype=np.float64)
    for _ in range(num_runs):
        for node in model.simulate(graph, seeds, rng):
            counts[node] += 1.0
    return counts / num_runs


def irie(
    graph: DiGraph,
    k: int,
    model="IC",
    rng=None,
    alpha: float = 0.7,
    ap_runs: int = 200,
    max_iterations: int = 20,
) -> InfluenceMaxResult:
    """IRIE seed selection: iterate (rank, pick argmax, re-estimate AP)."""
    check_k(k, graph.n)
    check_positive_int(ap_runs, "ap_runs")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)

    started = obs.now()
    seeds: list[int] = []
    time_at_k: list[float] = []  # cumulative seconds when each seed commits
    activation_prob = np.zeros(graph.n, dtype=np.float64)
    for _ in range(k):
        rank = influence_rank(
            graph, alpha=alpha, activation_prob=activation_prob, max_iterations=max_iterations
        )
        rank[seeds] = -np.inf  # already chosen
        seeds.append(int(np.argmax(rank)))
        activation_prob = _estimate_activation_probability(
            graph, resolved, seeds, ap_runs, source
        )
        activation_prob[seeds] = 1.0
        time_at_k.append(obs.now() - started)
    return InfluenceMaxResult(
        algorithm="IRIE",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        estimated_spread=None,  # heuristic: no internal unbiased estimate
        extras={"alpha": alpha, "ap_runs": ap_runs, "time_at_k": time_at_k},
    )


register_algorithm("irie", irie)
