"""PageRank-based seed heuristic.

Influence flows along out-edges, so we rank nodes by PageRank on the
*transpose* (a node pointed at by influential followers of followers scores
high in reverse PageRank — the standard trick in the IM literature).  Power
iteration on the CSR arrays, no external dependencies.
"""

from __future__ import annotations


import numpy as np

from repro.algorithms.base import register_algorithm
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.validation import check_k, require

__all__ = ["pagerank_scores", "pagerank_seeds"]


def pagerank_scores(
    graph: DiGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    reverse: bool = True,
) -> np.ndarray:
    """PageRank by power iteration; ``reverse=True`` ranks on ``G^T``."""
    require(0.0 < damping < 1.0, "damping must be in (0, 1)")
    n = graph.n
    if n == 0:
        return np.zeros(0)
    # Walking G^T's out-edges == walking G's in-edges.
    if reverse:
        walk_src, walk_dst = graph.dst, graph.src
        walk_out_degree = graph.in_degrees().astype(np.float64)
    else:
        walk_src, walk_dst = graph.src, graph.dst
        walk_out_degree = graph.out_degrees().astype(np.float64)
    scores = np.full(n, 1.0 / n)
    safe_degree = np.where(walk_out_degree == 0.0, 1.0, walk_out_degree)
    for _ in range(max_iterations):
        share = scores / safe_degree
        incoming = np.zeros(n)
        np.add.at(incoming, walk_dst, share[walk_src])
        dangling_mass = scores[walk_out_degree == 0.0].sum()
        updated = (1.0 - damping) / n + damping * (incoming + dangling_mass / n)
        if float(np.abs(updated - scores).sum()) < tolerance:
            scores = updated
            break
        scores = updated
    return scores


def pagerank_seeds(
    graph: DiGraph, k: int, model="IC", rng=None, damping: float = 0.85
) -> InfluenceMaxResult:
    """Top-k nodes by reverse PageRank."""
    check_k(k, graph.n)
    resolved = resolve_model(model)
    started = obs.now()
    scores = pagerank_scores(graph, damping=damping)
    order = np.lexsort((np.arange(graph.n), -scores))
    seeds = [int(v) for v in order[:k]]
    return InfluenceMaxResult(
        algorithm="PageRank",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        extras={"damping": damping},
    )


register_algorithm("pagerank", pagerank_seeds)
