"""SIMPATH (Goyal, Lu & Lakshmanan [12]) — the paper's LT-model heuristic.

Under LT the spread of a seed set has a closed form over *simple paths*:

    σ(S) = Σ_{u ∈ S} σ^{V−S+u}(u),
    σ^W(u) = Σ_{simple paths P from u inside W} Π_{e ∈ P} w(e),

where the empty path contributes 1 (u counts itself).  SIMPATH evaluates
these sums by depth-first path enumeration, *pruned* at paths whose weight
falls below η — the accuracy/cost tunable.  Seed selection is a CELF queue
exploiting the identity  σ(S + x) = σ^{V−x}(S) + σ^{V−S}(x), with two
further optimisations from the original:

* **vertex cover** — in the first round, spreads of nodes outside a vertex
  cover C are derived from their out-neighbours' enumerations via
  σ(v) = 1 + Σ_u w(v,u)·σ^{V−v}(u) rather than enumerated from scratch;
* **look-ahead ℓ** — the top-ℓ stale queue entries are refreshed per round.

Defaults follow the paper's recommended settings: η = 10⁻³, ℓ = 4
(Section 7.3).
"""

from __future__ import annotations


from repro.algorithms.base import register_algorithm
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.diffusion.linear_threshold import LinearThreshold
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.lazy_heap import LazyMaxHeap
from repro.utils.validation import check_k, check_positive_int, require

__all__ = ["simpath", "simpath_spread", "sigma_within", "greedy_vertex_cover"]


def sigma_within(graph: DiGraph, start: int, allowed, eta: float) -> float:
    """σ^W(start): pruned simple-path weight sum from ``start`` inside ``allowed``.

    ``allowed`` is a set of node ids that must contain ``start``.  Iterative
    DFS with explicit backtracking (paths can be long when weights are 1.0,
    so recursion is avoided).
    """
    require(start in allowed, "start must be a member of allowed")
    out_adj, out_w = graph.out_adjacency()
    total = 1.0
    on_path = {start}
    # Stack frames: (node, weight product so far, next out-edge index).
    stack: list[list] = [[start, 1.0, 0]]
    while stack:
        frame = stack[-1]
        node, weight, index = frame
        neighbors = out_adj[node]
        advanced = False
        while index < len(neighbors):
            target = neighbors[index]
            edge_weight = out_w[node][index]
            index += 1
            if target in allowed and target not in on_path:
                extended = weight * edge_weight
                if extended >= eta:
                    total += extended
                    frame[2] = index
                    on_path.add(target)
                    stack.append([target, extended, 0])
                    advanced = True
                    break
        if not advanced:
            stack.pop()
            on_path.discard(node)
    return total


def simpath_spread(graph: DiGraph, seeds, eta: float) -> float:
    """σ(S) = Σ_{u∈S} σ^{V−S+u}(u) via per-seed enumerations."""
    seed_set = set(int(s) for s in seeds)
    everyone = set(range(graph.n))
    total = 0.0
    for u in seed_set:
        allowed = (everyone - seed_set) | {u}
        total += sigma_within(graph, u, allowed, eta)
    return total


def greedy_vertex_cover(graph: DiGraph) -> set[int]:
    """2-approximate vertex cover of the undirected skeleton (edge matching)."""
    covered: set[int] = set()
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u not in covered and v not in covered:
            covered.add(u)
            covered.add(v)
    return covered


def simpath(
    graph: DiGraph,
    k: int,
    model="LT",
    rng=None,
    eta: float = 1e-3,
    lookahead: int = 4,
    use_vertex_cover: bool = True,
) -> InfluenceMaxResult:
    """SIMPATH seed selection.  LT only; ``rng`` accepted but unused
    (the algorithm is deterministic given the graph)."""
    check_k(k, graph.n)
    check_positive_int(lookahead, "lookahead")
    require(eta > 0.0, "eta must be positive")
    resolved = resolve_model(model)
    if not isinstance(resolved, LinearThreshold):
        raise ValueError("SIMPATH is defined for the LT model only")
    resolved.validate_graph(graph)

    started = obs.now()
    everyone = set(range(graph.n))
    enumerations = 0

    def sigma(start: int, allowed) -> float:
        nonlocal enumerations
        enumerations += 1
        return sigma_within(graph, start, allowed, eta)

    # ------------------------------------------------------------------
    # Round 1: singleton spreads, optionally via the vertex-cover identity.
    # ------------------------------------------------------------------
    singleton: dict[int, float] = {}
    if use_vertex_cover:
        cover = greedy_vertex_cover(graph)
        for node in cover:
            singleton[node] = sigma(node, everyone)
        out_adj, out_w = graph.out_adjacency()
        for node in range(graph.n):
            if node in cover:
                continue
            allowed = everyone - {node}
            spread = 1.0
            for index, target in enumerate(out_adj[node]):
                spread += out_w[node][index] * sigma(target, allowed | {target})
            singleton[node] = spread
    else:
        for node in range(graph.n):
            singleton[node] = sigma(node, everyone)

    heap = LazyMaxHeap()
    for node, spread in singleton.items():
        heap.push(node, spread, 0)

    # ------------------------------------------------------------------
    # CELF loop with look-ahead batches.
    # ------------------------------------------------------------------
    seeds: list[int] = []
    time_at_k: list[float] = []  # cumulative seconds when each seed commits
    seed_set: set[int] = set()
    current_spread = 0.0
    current_round = 1
    while len(seeds) < k:
        batch: list[tuple[int, float, int]] = []
        committed = False
        for _ in range(min(lookahead, len(heap))):
            node, gain, round_tag = heap.pop()
            if round_tag == current_round:
                # Fresh top entry: commit immediately.
                seeds.append(node)
                time_at_k.append(obs.now() - started)
                seed_set.add(node)
                current_spread += gain
                current_round += 1
                committed = True
                break
            batch.append((node, gain, round_tag))
        if committed:
            # Return un-refreshed pops untouched: their old gains are still
            # valid upper bounds (submodularity), preserving CELF soundness.
            for node, gain, round_tag in batch:
                heap.push(node, gain, round_tag)
            continue
        for node, _, _ in batch:
            # mg(x | S) = sigma^{V-x}(S) + sigma^{V-S}(x) - sigma(S).
            spread_without_x = 0.0
            for u in seed_set:
                allowed = (everyone - seed_set - {node}) | {u}
                spread_without_x += sigma(u, allowed)
            spread_of_x = sigma(node, everyone - seed_set)
            gain = spread_without_x + spread_of_x - current_spread
            heap.push(node, gain, current_round)

    return InfluenceMaxResult(
        algorithm="SIMPATH",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        estimated_spread=current_spread,
        extras={
            "eta": eta,
            "lookahead": lookahead,
            "path_enumerations": enumerations,
            "time_at_k": time_at_k,
        },
    )


register_algorithm("simpath", simpath)
