"""Influence-maximization algorithms: TIM-family plus every paper baseline.

Importing this package populates the algorithm registry; use
:func:`maximize_influence` (or the CLI) to run any of them by name:

``tim``, ``tim+``, ``imm``, ``greedy``, ``celf``, ``celf++``, ``ris``,
``irie``, ``simpath``, ``degree``, ``degree-discount``, ``pagerank``,
``random``.
"""

from repro.algorithms.base import (
    algorithm_names,
    get_algorithm,
    maximize_influence,
    register_algorithm,
    supports_policy,
)
from repro.algorithms.celf import celf
from repro.algorithms.celfpp import celf_plus_plus
from repro.algorithms.degree import degree_discount, max_degree
from repro.algorithms.greedy import greedy, monte_carlo_spread, recommended_monte_carlo_runs
from repro.algorithms.irie import influence_rank, irie
from repro.algorithms.pagerank import pagerank_scores, pagerank_seeds
from repro.algorithms.random_seed import random_seeds
from repro.algorithms.ris import ris, ris_threshold
from repro.algorithms.simpath import greedy_vertex_cover, sigma_within, simpath, simpath_spread
from repro.core.imm import imm
from repro.core.tim import tim, tim_plus

# TIM and TIM+ live in repro.core (they are the paper's contribution, not a
# baseline) but register here so the uniform front door can dispatch to them.
# IMM (the 2015 martingale successor) rides the same registry slot.
register_algorithm("tim", tim)
register_algorithm("tim+", tim_plus)
register_algorithm("timplus", tim_plus)
register_algorithm("imm", imm)

__all__ = [
    "algorithm_names",
    "get_algorithm",
    "maximize_influence",
    "register_algorithm",
    "supports_policy",
    "celf",
    "celf_plus_plus",
    "degree_discount",
    "max_degree",
    "greedy",
    "monte_carlo_spread",
    "recommended_monte_carlo_runs",
    "influence_rank",
    "irie",
    "pagerank_scores",
    "pagerank_seeds",
    "random_seeds",
    "ris",
    "ris_threshold",
    "greedy_vertex_cover",
    "sigma_within",
    "simpath",
    "simpath_spread",
    "imm",
    "tim",
    "tim_plus",
]
