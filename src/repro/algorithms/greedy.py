"""Kempe et al.'s Greedy (Section 2.2) and the Lemma 10 sample-size bound.

Greedy adds, k times, the node with the largest Monte-Carlo-estimated
marginal gain.  Its ``O(kmnr)`` cost is the paper's motivating pain point;
we implement it faithfully (every candidate re-estimated every iteration)
so the Figure 3 bench shows the gap honestly — use CELF/CELF++ for the
runtime-optimised equivalents.
"""

from __future__ import annotations

import math

from repro.algorithms.base import register_algorithm
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_ell, check_epsilon, check_k, check_positive_int, require

__all__ = ["greedy", "recommended_monte_carlo_runs", "monte_carlo_spread"]


def recommended_monte_carlo_runs(n: int, k: int, epsilon: float, ell: float, opt: float) -> int:
    """Lemma 10's lower bound on ``r`` for a (1−1/e−ε) guarantee.

    ``r ≥ (8k² + 2kε) n (ℓ+1) ln n + ln k over ε² OPT``.  Needs OPT (or a
    lower bound of it; plugging a lower bound only increases r, keeping the
    guarantee).  The paper notes this always exceeds the folklore r = 10000
    in their settings.
    """
    require(n >= 2, "need n >= 2")
    check_k(k, n)
    check_epsilon(epsilon)
    check_ell(ell)
    require(opt > 0, "opt must be positive")
    numerator = (8.0 * k * k + 2.0 * k * epsilon) * n * ((ell + 1.0) * math.log(n) + math.log(k))
    return max(1, math.ceil(numerator / (epsilon * epsilon * opt)))


def monte_carlo_spread(graph: DiGraph, seeds, model, num_runs: int, rng) -> float:
    """Mean activation count over ``num_runs`` simulations (internal helper)."""
    total = 0
    seed_list = [int(s) for s in seeds]
    for _ in range(num_runs):
        total += len(model.simulate(graph, seed_list, rng))
    return total / num_runs


def greedy(
    graph: DiGraph,
    k: int,
    model="IC",
    rng=None,
    num_runs: int = 10000,
    candidates=None,
) -> InfluenceMaxResult:
    """Kempe et al.'s greedy hill climbing with MC spread estimates.

    Parameters
    ----------
    num_runs:
        Monte-Carlo runs per spread estimate (the paper's ``r``; default is
        the folklore 10000 — see :func:`recommended_monte_carlo_runs` for
        what the guarantee actually needs).
    candidates:
        Optional candidate pool (defaults to all nodes); the experiment
        harness shrinks it to keep the honest-but-slow baseline feasible.
    """
    check_k(k, graph.n)
    check_positive_int(num_runs, "num_runs")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    pool = list(range(graph.n)) if candidates is None else [int(c) for c in candidates]
    require(len(pool) >= k, "candidate pool smaller than k")

    started = obs.now()
    seeds: list[int] = []
    time_at_k: list[float] = []  # cumulative seconds when each seed commits
    current_spread = 0.0
    evaluations = 0
    for _ in range(k):
        best_node = -1
        best_spread = -1.0
        for candidate in pool:
            if candidate in seeds:
                continue
            estimate = monte_carlo_spread(graph, seeds + [candidate], resolved, num_runs, source)
            evaluations += 1
            if estimate > best_spread:
                best_spread = estimate
                best_node = candidate
        seeds.append(best_node)
        time_at_k.append(obs.now() - started)
        current_spread = best_spread
    return InfluenceMaxResult(
        algorithm="Greedy",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        estimated_spread=current_spread,
        extras={
            "num_runs": num_runs,
            "spread_evaluations": evaluations,
            "time_at_k": time_at_k,
        },
    )


register_algorithm("greedy", greedy)
