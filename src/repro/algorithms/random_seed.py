"""Uniform-random seed selection — the sanity-check floor every real
algorithm must clear."""

from __future__ import annotations


from repro.algorithms.base import register_algorithm
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_k

__all__ = ["random_seeds"]


def random_seeds(graph: DiGraph, k: int, model="IC", rng=None) -> InfluenceMaxResult:
    """k distinct nodes chosen uniformly at random."""
    check_k(k, graph.n)
    resolved = resolve_model(model)
    source = resolve_rng(rng)
    started = obs.now()
    seeds = source.sample_indices(graph.n, k)
    return InfluenceMaxResult(
        algorithm="Random",
        model=resolved.name,
        seeds=[int(s) for s in seeds],
        k=k,
        runtime_seconds=obs.now() - started,
    )


register_algorithm("random", random_seeds)
