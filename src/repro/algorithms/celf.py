"""CELF — Cost-Effective Lazy Forward selection (Leskovec et al. [21]).

Same output quality as Greedy (it is Greedy, with stale marginal gains
re-evaluated lazily); submodularity of the spread guarantees a fresh top
entry of the queue is the true argmax.  The paper credits CELF with up to
700× fewer spread evaluations, which our ``spread_evaluations`` counter
makes visible.
"""

from __future__ import annotations


from repro.algorithms.base import register_algorithm
from repro.algorithms.greedy import monte_carlo_spread
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.utils.lazy_heap import LazyMaxHeap
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_k, check_positive_int, require

__all__ = ["celf"]


def celf(
    graph: DiGraph,
    k: int,
    model="IC",
    rng=None,
    num_runs: int = 10000,
    candidates=None,
) -> InfluenceMaxResult:
    """CELF lazy-forward greedy with Monte-Carlo spread estimates."""
    check_k(k, graph.n)
    check_positive_int(num_runs, "num_runs")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    pool = list(range(graph.n)) if candidates is None else [int(c) for c in candidates]
    require(len(pool) >= k, "candidate pool smaller than k")

    started = obs.now()
    heap = LazyMaxHeap()
    evaluations = 0
    for candidate in pool:
        gain = monte_carlo_spread(graph, [candidate], resolved, num_runs, source)
        evaluations += 1
        heap.push(candidate, gain, 0)

    seeds: list[int] = []
    time_at_k: list[float] = []  # cumulative seconds when each seed commits
    current_spread = 0.0
    current_round = 1
    while len(seeds) < k:
        candidate, gain, round_tag = heap.pop()
        if round_tag == current_round:
            seeds.append(candidate)
            time_at_k.append(obs.now() - started)
            current_spread += gain
            current_round += 1
        else:
            fresh_total = monte_carlo_spread(graph, seeds + [candidate], resolved, num_runs, source)
            evaluations += 1
            heap.push(candidate, fresh_total - current_spread, current_round)
    return InfluenceMaxResult(
        algorithm="CELF",
        model=resolved.name,
        seeds=seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        estimated_spread=current_spread,
        extras={
            "num_runs": num_runs,
            "spread_evaluations": evaluations,
            "time_at_k": time_at_k,
        },
    )


register_algorithm("celf", celf)
