"""RIS — Borgs et al.'s threshold-based reverse influence sampling [3].

RIS keeps generating random RR sets until the *total work* (nodes plus edges
examined) reaches a threshold τ = Θ(k (m + n) log n / ε³), then solves
maximum coverage over whatever was collected (Section 2.3).  Coupling the
sample count to accumulated cost is precisely what correlates the samples —
the paper's Bernoulli-stopping footnote — and why RIS needs both the ε⁻³
budget and a large hidden constant.  TIM's Section 3 exists to remove that
coupling; this implementation is the paper's experimental strawman, faithful
including the flaw.

``tau_constant`` scales the hidden constant.  Borgs et al. leave it
unspecified (and huge); the default of 1.0 is deliberately charitable so the
bench comparison is conservative — RIS already loses at that setting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import register_algorithm
from repro.api.policy import DEPRECATED, ExecutionPolicy, resolve_call_policy
from repro.obs import runtime as obs
from repro.parallel import jobs_for_engine, maybe_parallel
from repro.core.results import InfluenceMaxResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.rrset.base import make_rr_sampler
from repro.rrset.collection import RRCollection
from repro.rrset.coverage import greedy_max_coverage
from repro.rrset.flat_collection import FlatRRCollection
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_ell, check_epsilon, check_k, require

__all__ = ["ris", "ris_threshold"]


def ris_threshold(
    n: int, m: int, k: int, epsilon: float, ell: float, tau_constant: float = 1.0
) -> float:
    """τ = c · k ℓ (m + n) log n / ε³, the Step-1 stopping budget."""
    require(n >= 2, "need n >= 2")
    check_epsilon(epsilon)
    check_ell(ell)
    require(tau_constant > 0, "tau_constant must be positive")
    return tau_constant * k * ell * (m + n) * math.log(n) / (epsilon**3)


def ris(
    graph: DiGraph,
    k: int,
    model="IC",
    rng=None,
    epsilon: float | None = None,
    ell: float | None = None,
    tau_constant: float = 1.0,
    max_rr_sets: int | None = None,
    engine=DEPRECATED,
    sketch_index=DEPRECATED,
    jobs=DEPRECATED,
    *,
    policy: ExecutionPolicy | None = None,
    index=None,
) -> InfluenceMaxResult:
    """Borgs et al.'s RIS with a cost-threshold stopping rule.

    ``max_rr_sets`` is a safety valve for pathological inputs (e.g. an
    edgeless graph where per-set cost is 1 and τ is large); it is never hit
    in the benches.

    ``engine="vectorized"`` (default) streams numpy-batched RR sets into a
    flat collection, truncating the final batch at the first set whose
    cumulative cost crosses τ — the same stopping rule as the scalar loop,
    faithful to Borgs et al.'s coupled sampling (including the flaw).
    ``engine="python"`` keeps the original one-set-at-a-time loop.

    ``sketch_index`` (service mode, implies the vectorized path) makes the
    call run *through* a :class:`~repro.sketch.index.SketchIndex`: cost
    already accumulated by the sketch counts toward τ, any shortfall is
    sampled and appended warm-start style, and max coverage runs on the
    index's prebuilt postings.  Note this departs from Borgs et al.'s
    strictly coupled sampling exactly as much as reusing a sketch does.

    ``policy=`` (an :class:`~repro.api.policy.ExecutionPolicy`) is the
    modern way to set engine/jobs — and, like every policy-aware entry
    point, a passed policy's ``epsilon``/``ell`` govern the τ budget.
    Without a policy, ``epsilon`` keeps RIS's historical ``0.2`` default
    (coarser than the library-wide ``0.1``: RIS pays ε⁻³).  The legacy
    ``engine=`` / ``jobs=`` / ``sketch_index=`` keywords still work behind
    a :class:`DeprecationWarning` with identical results.
    """
    resolved_policy, index = resolve_call_policy(
        "ris()", policy, engine=engine, jobs=jobs, sketch_index=sketch_index,
        index=index,
    )
    sketch_index = index
    if epsilon is None:
        epsilon = resolved_policy.epsilon if policy is not None else 0.2
    ell = resolved_policy.ell if ell is None else ell
    engine = resolved_policy.engine
    jobs = resolved_policy.jobs
    check_k(k, graph.n)
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    if sketch_index is None:
        # With a sketch index, sampling always takes the flat batch path,
        # so jobs stays useful even under engine="python".
        jobs = jobs_for_engine(engine, jobs, stacklevel=2)
    sampler, owned_pool = maybe_parallel(make_rr_sampler(graph, resolved), jobs)
    tau = ris_threshold(graph.n, graph.m, k, epsilon, ell, tau_constant)

    started = obs.now()
    sketch_sets_reused = 0
    try:
        if sketch_index is not None or engine == "vectorized":
            if sketch_index is not None:
                collection = sketch_index.collection
                sketch_sets_reused = len(collection)
                commit = sketch_index.extend_flat  # keeps the index's caches honest
            else:
                collection = FlatRRCollection(graph.n, graph.m)
                commit = collection.extend_flat
            batch_size = 64
            while collection.total_cost < tau:
                if max_rr_sets is not None and len(collection) >= max_rr_sets:
                    break
                batch = sampler.sample_random_batch(batch_size, source)
                # Keep the prefix up to and including the set that crosses the
                # remaining budget — identical stopping rule to the scalar loop.
                cumulative = np.cumsum(batch.costs_array) + collection.total_cost
                crossing = int(np.searchsorted(cumulative, tau, side="left"))
                take = len(batch) if crossing >= len(batch) else crossing + 1
                if max_rr_sets is not None:
                    take = min(take, max_rr_sets - len(collection))
                if take < len(batch):
                    batch.truncate(take)
                commit(batch)
                batch_size = min(batch_size * 2, 8192)
            if sketch_index is not None:
                coverage = sketch_index.select(k)
            else:
                coverage = greedy_max_coverage(collection, graph.n, k)
        else:
            collection = RRCollection(graph.n, graph.m)
            randrange = source.py.randrange
            while collection.total_cost < tau:
                collection.append(sampler.sample_rooted(randrange(graph.n), source))
                if max_rr_sets is not None and len(collection) >= max_rr_sets:
                    break
            coverage = greedy_max_coverage(collection.sets, graph.n, k)
    finally:
        if owned_pool:
            sampler.close()
    return InfluenceMaxResult(
        algorithm="RIS",
        model=resolved.name,
        seeds=coverage.seeds,
        k=k,
        runtime_seconds=obs.now() - started,
        estimated_spread=graph.n * coverage.fraction,
        extras={
            "tau": tau,
            "num_rr_sets": len(collection),
            "total_cost": collection.total_cost,
            "sketch_sets_reused": sketch_sets_reused,
        },
    )


register_algorithm("ris", ris)
