"""Memory accounting for the Figure 12 reproduction.

The paper attributes TIM+'s memory footprint to the RR-set collection
(|R| = λ/KPT+, Section 7.4).  We therefore report two complementary numbers:

* :func:`deep_size_of_rr_sets` — the bytes held by the Python objects storing
  the sampled RR sets (the algorithmically meaningful quantity), and
* :class:`PeakTracker` — ``tracemalloc`` peak over a code region (the
  process-level quantity, closest to the paper's resident-set measurements).
"""

from __future__ import annotations

import sys
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["deep_size_of_rr_sets", "PeakTracker", "track_peak"]


def deep_size_of_rr_sets(rr_sets) -> int:
    """Total bytes held by a sequence of RR sets (tuples/lists of ints).

    Counts the outer container, each inner container, and — once per distinct
    object — the integer payloads.  Small ints are interned by CPython, so we
    deduplicate by id to avoid double counting.
    """
    seen: set[int] = set()
    total = sys.getsizeof(rr_sets)
    for rr in rr_sets:
        total += sys.getsizeof(rr)
        for node in rr:
            if id(node) not in seen:
                seen.add(id(node))
                total += sys.getsizeof(node)
    return total


@dataclass
class PeakTracker:
    """Result of :func:`track_peak`: peak incremental bytes over the region."""

    peak_bytes: int = 0

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


@contextmanager
def track_peak():
    """Track the tracemalloc peak over a ``with`` block.

    Nesting is supported: if tracemalloc is already tracing we snapshot and
    restore rather than stopping the outer trace.
    """
    tracker = PeakTracker()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    baseline, _ = tracemalloc.get_traced_memory()
    try:
        yield tracker
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracker.peak_bytes = max(0, peak - baseline)
        if not was_tracing:
            tracemalloc.stop()
