"""Random-number management.

Every stochastic routine in :mod:`repro` accepts a ``rng`` argument that may
be ``None`` (fresh entropy), an ``int`` seed, an already-built
:class:`RandomSource`, a :class:`random.Random`, or a
:class:`numpy.random.Generator`.  :func:`resolve_rng` normalises all of those
into a :class:`RandomSource`, which carries *both* a ``random.Random`` (fast
for scalar draws in tight Python loops) and a ``numpy.random.Generator``
(fast for bulk vectorised draws), seeded consistently so experiments are
reproducible end to end.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["RandomSource", "resolve_rng", "spawn_children", "spawn_seed_streams"]

# Large odd constant used to decorrelate the two underlying generators while
# keeping them a pure function of the user-supplied seed.
_NUMPY_SEED_OFFSET = 0x9E3779B97F4A7C15


class RandomSource:
    """A seeded pair of scalar and vector random generators.

    Parameters
    ----------
    seed:
        Integer seed.  ``None`` draws a fresh 64-bit seed from OS entropy so
        that distinct unseeded sources are independent.
    """

    __slots__ = ("seed", "py", "np")

    def __init__(self, seed: int | None = None) -> None:
        if seed is None:
            seed = random.SystemRandom().getrandbits(63)
        self.seed = int(seed)
        self.py = random.Random(self.seed)
        self.np = np.random.default_rng((self.seed + _NUMPY_SEED_OFFSET) % 2**63)

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` (scalar fast path)."""
        return self.py.random()

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        return self.py.randrange(n)

    def binomial(self, n: int, p: float) -> int:
        """A single Binomial(n, p) draw."""
        return int(self.np.binomial(n, p))

    def sample_indices(self, population: int, count: int) -> list[int]:
        """``count`` distinct uniform indices from ``range(population)``."""
        return self.py.sample(range(population), count)

    def spawn(self) -> "RandomSource":
        """A child source whose stream is a deterministic function of ours."""
        return RandomSource(self.py.getrandbits(63))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(seed={self.seed})"


def resolve_rng(rng: object = None) -> RandomSource:
    """Normalise any accepted ``rng`` argument into a :class:`RandomSource`.

    Accepts ``None``, ``int``, :class:`RandomSource`, :class:`random.Random`
    and :class:`numpy.random.Generator`.  Foreign generator objects are used
    to draw a seed, then wrapped, so that downstream draws remain a
    deterministic function of the caller's generator state.
    """
    if rng is None:
        return RandomSource()
    if isinstance(rng, RandomSource):
        return rng
    if isinstance(rng, (int, np.integer)):
        return RandomSource(int(rng))
    if isinstance(rng, random.Random):
        return RandomSource(rng.getrandbits(63))
    if isinstance(rng, np.random.Generator):
        return RandomSource(int(rng.integers(0, 2**63)))
    raise TypeError(
        "rng must be None, an int seed, a RandomSource, a random.Random, "
        f"or a numpy Generator; got {type(rng).__name__}"
    )


def spawn_children(rng: object, count: int) -> list[RandomSource]:
    """``count`` independent child sources, e.g. one per repetition."""
    source = resolve_rng(rng)
    return [source.spawn() for _ in range(count)]


def spawn_seed_streams(entropy: int, count: int) -> list[int]:
    """``count`` deterministic 63-bit seeds derived from ``entropy``.

    The canonical shard-seed derivation used by the parallel engine: a
    :class:`numpy.random.SeedSequence` rooted at ``entropy`` spawns ``count``
    children, and each child's first 64-bit state word is folded into the
    63-bit range :class:`RandomSource` accepts.  The expansion is a pure
    function of ``(entropy, count)``, so shard streams — and therefore
    sharded sampling results — are byte-identical across runs, platforms,
    and worker counts.  Keep any new shard/worker seeding on this helper so
    the derivation can never silently fork.
    """
    children = np.random.SeedSequence(entropy).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0] % (2**63)) for child in children]
