"""Argument validation helpers shared across the library.

Raising early with a precise message is cheaper than debugging a silently
wrong θ three phases later, so every public entry point funnels its
parameters through these checks.
"""

from __future__ import annotations

__all__ = [
    "require",
    "check_probability",
    "check_positive_int",
    "check_k",
    "check_epsilon",
    "check_ell",
    "check_node",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]; got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int; got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive; got {value}")
    return value


def check_k(k: int, num_nodes: int) -> int:
    """Validate a seed-set size against the graph order."""
    check_positive_int(k, "k")
    if k > num_nodes:
        raise ValueError(f"k={k} exceeds the number of nodes ({num_nodes})")
    return k


def check_epsilon(epsilon: float) -> float:
    """Validate the approximation parameter ε ∈ (0, 1]."""
    epsilon = float(epsilon)
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    return epsilon


def check_ell(ell: float) -> float:
    """Validate the failure-probability exponent ℓ (> 0).

    The paper's Theorem 2 requires ℓ ≥ 1/2; we allow any positive value but
    the TIM driver documents that guarantees need ℓ ≥ 1/2.
    """
    ell = float(ell)
    if ell <= 0.0:
        raise ValueError(f"ell must be positive; got {ell}")
    return ell


def check_node(node: int, num_nodes: int) -> int:
    """Validate a node id against the graph order."""
    node = int(node)
    if not 0 <= node < num_nodes:
        raise ValueError(f"node id {node} out of range [0, {num_nodes})")
    return node
