"""Lazy-evaluation max-heap for submodular greedy selection.

This is the data structure behind CELF [21]: entries carry the iteration at
which their value was last computed; a stale top entry is re-evaluated and
pushed back rather than trusted.  Because marginal gains of a submodular
function only decrease, a fresh top entry is guaranteed optimal.

``heapq`` is a min-heap, so priorities are stored negated.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable

__all__ = ["LazyMaxHeap", "lazy_greedy_maximize"]


class LazyMaxHeap:
    """Max-heap keyed by float priority with lazy staleness tracking."""

    __slots__ = ("_heap", "_counter")

    def __init__(self):
        self._heap: list[tuple[float, int, Hashable, int]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, item: Hashable, priority: float, round_tag: int) -> None:
        """Insert ``item`` with ``priority`` computed during ``round_tag``.

        The monotonically increasing counter breaks ties deterministically in
        insertion order, keeping selections reproducible across runs.
        """
        self._counter += 1
        heapq.heappush(self._heap, (-priority, self._counter, item, round_tag))

    def pop(self) -> tuple[Hashable, float, int]:
        """Remove and return ``(item, priority, round_tag)`` of the max entry."""
        neg_priority, _, item, round_tag = heapq.heappop(self._heap)
        return item, -neg_priority, round_tag

    def peek(self) -> tuple[Hashable, float, int]:
        """Return the max entry without removing it."""
        neg_priority, _, item, round_tag = self._heap[0]
        return item, -neg_priority, round_tag


def lazy_greedy_maximize(
    candidates: list,
    k: int,
    marginal_gain: Callable[[Hashable, list], float],
    on_select: Callable[[Hashable], None] | None = None,
) -> tuple[list, float, int]:
    """Generic CELF-style lazy greedy maximisation.

    Parameters
    ----------
    candidates:
        Ground set of items.
    k:
        Number of items to select.
    marginal_gain:
        ``marginal_gain(item, selected)`` returning the gain of adding
        ``item`` to the current ``selected`` list.  Must be (approximately)
        submodular for the laziness to be sound.
    on_select:
        Optional callback invoked when an item is committed.

    Returns
    -------
    (selected, total_value, evaluations)
        The selected items (in pick order), the accumulated value, and how
        many times ``marginal_gain`` was invoked — the statistic CELF papers
        report to demonstrate the benefit of laziness.
    """
    heap = LazyMaxHeap()
    selected: list = []
    evaluations = 0
    for item in candidates:
        gain = marginal_gain(item, selected)
        evaluations += 1
        heap.push(item, gain, 0)

    total = 0.0
    current_round = 1
    while len(selected) < k and len(heap) > 0:
        item, gain, round_tag = heap.pop()
        if round_tag == current_round:
            selected.append(item)
            total += gain
            if on_select is not None:
                on_select(item)
            current_round += 1
        else:
            gain = marginal_gain(item, selected)
            evaluations += 1
            heap.push(item, gain, current_round)
    return selected, total, evaluations
