"""Shared utilities: RNG management, timing, memory accounting, validation."""

from repro.utils.lazy_heap import LazyMaxHeap, lazy_greedy_maximize
from repro.utils.memory import PeakTracker, deep_size_of_rr_sets, track_peak
from repro.utils.rng import RandomSource, resolve_rng, spawn_children, spawn_seed_streams
from repro.utils.timer import PhaseTimer, Timer, timed
from repro.utils.validation import (
    check_ell,
    check_epsilon,
    check_k,
    check_node,
    check_positive_int,
    check_probability,
    require,
)

__all__ = [
    "LazyMaxHeap",
    "lazy_greedy_maximize",
    "PeakTracker",
    "deep_size_of_rr_sets",
    "track_peak",
    "RandomSource",
    "resolve_rng",
    "spawn_children",
    "spawn_seed_streams",
    "PhaseTimer",
    "Timer",
    "timed",
    "check_ell",
    "check_epsilon",
    "check_k",
    "check_node",
    "check_positive_int",
    "check_probability",
    "require",
]
