"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from repro.obs import runtime as obs

__all__ = ["Timer", "PhaseTimer", "timed"]


@dataclass
class Timer:
    """Accumulating stopwatch.

    >>> t = Timer()
    >>> t.start(); _ = sum(range(10)); t.stop()  # doctest: +SKIP
    """

    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("timer already running")
        self._started_at = obs.now()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer not running")
        self.elapsed += obs.now() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None


@dataclass
class PhaseTimer:
    """Named phase timings, used to reproduce the paper's Figure 4 breakdown."""

    phases: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        start = obs.now()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                obs.now() - start
            )

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self.phases)


@contextmanager
def timed():
    """Context manager yielding a one-shot timer; read ``.elapsed`` after."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()
