"""Command-line interface: ``repro-im`` / ``python -m repro``.

Subcommands:

* ``datasets`` — list the stand-in datasets with their Table 2 stats.
* ``run`` — run any registered algorithm on a stand-in or edge-list file.
* ``spread`` — Monte-Carlo spread of a given seed set.
* ``experiment`` — regenerate a paper table/figure and print it.
"""

from __future__ import annotations

import argparse
import sys

from repro.algorithms import algorithm_names, maximize_influence
from repro.datasets import build_dataset, dataset_names, dataset_spec
from repro.diffusion import estimate_spread
from repro.experiments import EXPERIMENTS, render
from repro.graphs import load_edge_list, summarize, uniform_random_lt, weighted_cascade

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-im`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-im",
        description="TIM/TIM+ influence maximization (SIGMOD 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list stand-in datasets")

    run = sub.add_parser("run", help="run an influence-maximization algorithm")
    run.add_argument("--algorithm", default="tim+", choices=algorithm_names())
    run.add_argument("--dataset", default="nethept", help="stand-in name or @/path/to/edgelist")
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--model", default="IC", choices=["IC", "LT"])
    run.add_argument("-k", type=int, default=10)
    run.add_argument("--epsilon", type=float, default=None, help="TIM-family / RIS accuracy")
    run.add_argument("--ell", type=float, default=None, help="TIM-family failure exponent")
    run.add_argument("--num-runs", type=int, default=None, help="Greedy-family MC runs")
    run.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="time-critical IC: only count activations within this many rounds",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--score-samples", type=int, default=0, help="MC re-score of result (0=off)")

    spread = sub.add_parser("spread", help="estimate spread of a seed set")
    spread.add_argument("--dataset", default="nethept")
    spread.add_argument("--scale", type=float, default=1.0)
    spread.add_argument("--model", default="IC", choices=["IC", "LT"])
    spread.add_argument("--seeds", required=True, help="comma-separated node ids")
    spread.add_argument("--samples", type=int, default=10000)
    spread.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    return parser


def _load_graph(dataset: str, scale: float, model: str):
    """Resolve --dataset: a registry name, or @path for an edge-list file."""
    if dataset.startswith("@"):
        graph, _ = load_edge_list(dataset[1:])
        if model == "IC":
            return weighted_cascade(graph)
        return uniform_random_lt(graph, rng=0)
    return build_dataset(dataset, scale).weighted_for(model)


def _command_datasets() -> int:
    for name in dataset_names():
        spec = dataset_spec(name)
        summary = summarize(
            build_dataset(name).graph, name, undirected=spec.undirected
        )
        print(
            f"{name:12s} paper: n={spec.paper_nodes:>6s} m={spec.paper_edges:>6s} "
            f"| stand-in: n={summary.num_nodes} m={summary.num_edges} "
            f"avg_deg={summary.average_degree:.1f} ({summary.graph_type})"
        )
    return 0


def _command_run(args) -> int:
    graph = _load_graph(args.dataset, args.scale, args.model)
    kwargs = {}
    if args.epsilon is not None:
        kwargs["epsilon"] = args.epsilon
    if args.ell is not None:
        kwargs["ell"] = args.ell
    if args.num_runs is not None:
        kwargs["num_runs"] = args.num_runs
    model = args.model
    if args.horizon is not None:
        if args.model != "IC":
            raise SystemExit("--horizon is only defined for the IC model")
        from repro.diffusion import BoundedIndependentCascade

        model = BoundedIndependentCascade(args.horizon)
    result = maximize_influence(
        graph, args.k, algorithm=args.algorithm, model=model, rng=args.seed, **kwargs
    )
    print(f"algorithm : {result.algorithm} ({result.model} model)")
    print(f"seeds     : {result.seeds}")
    print(f"runtime   : {result.runtime_seconds:.3f}s")
    if result.estimated_spread is not None:
        print(f"internal spread estimate: {result.estimated_spread:.2f}")
    if args.score_samples > 0:
        estimate = estimate_spread(
            graph, result.seeds, model=model, num_samples=args.score_samples, rng=args.seed + 1
        )
        low, high = estimate.confidence_interval()
        print(f"MC spread : {estimate.mean:.2f} (95% CI [{low:.2f}, {high:.2f}])")
    return 0


def _command_spread(args) -> int:
    graph = _load_graph(args.dataset, args.scale, args.model)
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    estimate = estimate_spread(
        graph, seeds, model=args.model, num_samples=args.samples, rng=args.seed
    )
    low, high = estimate.confidence_interval()
    print(f"E[I(S)] ~= {estimate.mean:.2f} (95% CI [{low:.2f}, {high:.2f}], {args.samples} runs)")
    return 0


def _command_experiment(args) -> int:
    result = EXPERIMENTS[args.name]()
    print(render(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "run":
        return _command_run(args)
    if args.command == "spread":
        return _command_spread(args)
    if args.command == "experiment":
        return _command_experiment(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
