"""Command-line interface: ``repro-im`` / ``python -m repro``.

Subcommands:

* ``datasets`` — list the stand-in datasets with their Table 2 stats.
* ``run`` — run any registered algorithm on a stand-in or edge-list file.
* ``spread`` — Monte-Carlo spread of a given seed set.
* ``experiment`` — regenerate a paper table/figure and print it.
* ``sketch`` — build a persistent RR-sketch index and save it as ``.npz``.
* ``serve`` — answer JSONL influence queries from a sketch (build-or-load);
  the stream may carry ``update`` ops that mutate the graph and repair the
  cached sketch incrementally.
* ``update`` — apply a JSONL stream of edge updates to a persisted sketch,
  repairing it in place of a cold rebuild, and save the result.
* ``obs`` — inspect a ``--metrics-out`` JSONL export: ``report`` renders the
  human summary table, ``prom`` converts the final registry snapshot to
  Prometheus text exposition, ``check`` validates Prometheus text.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.algorithms import algorithm_names, maximize_influence, supports_policy
from repro.api import ExecutionPolicy
from repro.datasets import build_dataset, dataset_names, dataset_spec
from repro.diffusion import estimate_spread
from repro.experiments import EXPERIMENTS, render
from repro.faults import install_from_env as _install_fault_plan
from repro.graphs import load_edge_list, summarize, uniform_random_lt, weighted_cascade

__all__ = ["main", "build_parser"]


def _execution_parent() -> argparse.ArgumentParser:
    """The shared ``--engine`` / ``--jobs`` / ``--trace-edges`` flags.

    One parent parser serves ``run``/``sketch``/``serve``/``update`` so the
    flags (names, choices, defaults) cannot drift between subcommands.
    Every default is ``None`` = "unset": resolution happens in
    :meth:`repro.api.ExecutionPolicy.from_args`, layering CLI flags over
    ``REPRO_ENGINE`` / ``REPRO_JOBS`` / ``REPRO_TRACE_EDGES`` environment
    variables over library defaults.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution policy")
    group.add_argument(
        "--engine",
        choices=["vectorized", "python"],
        default=None,
        help="RR sampling/storage engine (default: vectorized; "
        "python = scalar ablation baseline)",
    )
    group.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for RR generation (0 = all cores; results "
        "are byte-identical for any worker count)",
    )
    group.add_argument(
        "--trace-edges",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="record live-edge traces while sampling so edge updates "
        "invalidate precisely (sketch/serve/update)",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs instrumentation and write the span/metrics "
        "JSONL stream here on exit (REPRO_METRICS=1 enables recording "
        "without the export; results are byte-identical either way)",
    )
    group.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request wall-clock budget (serve): over-budget queries "
        "return a structured deadline_exceeded error instead of hanging "
        "(REPRO_DEADLINE_MS layers under)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-im`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-im",
        description="TIM/TIM+ influence maximization (SIGMOD 2014 reproduction)",
    )
    execution = _execution_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list stand-in datasets")

    run = sub.add_parser(
        "run", help="run an influence-maximization algorithm", parents=[execution]
    )
    run.add_argument("--algorithm", default="tim+", choices=algorithm_names())
    run.add_argument("--dataset", default="nethept", help="stand-in name or @/path/to/edgelist")
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--model", default="IC", choices=["IC", "LT"])
    run.add_argument("-k", type=int, default=10)
    run.add_argument("--epsilon", type=float, default=None, help="TIM-family / RIS accuracy")
    run.add_argument("--ell", type=float, default=None, help="TIM-family failure exponent")
    run.add_argument("--num-runs", type=int, default=None, help="Greedy-family MC runs")
    run.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="time-critical IC: only count activations within this many rounds",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--score-samples", type=int, default=0, help="MC re-score of result (0=off)")

    spread = sub.add_parser("spread", help="estimate spread of a seed set")
    spread.add_argument("--dataset", default="nethept")
    spread.add_argument("--scale", type=float, default=1.0)
    spread.add_argument("--model", default="IC", choices=["IC", "LT"])
    spread.add_argument("--seeds", required=True, help="comma-separated node ids")
    spread.add_argument("--samples", type=int, default=10000)
    spread.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    sketch = sub.add_parser(
        "sketch", help="build and persist an RR-sketch index", parents=[execution]
    )
    sketch.add_argument("--dataset", default="nethept", help="stand-in name or @/path/to/edgelist")
    sketch.add_argument("--scale", type=float, default=1.0)
    sketch.add_argument("--model", default="IC", choices=["IC", "LT"])
    sketch.add_argument("-k", type=int, default=10, help="budget used to derive theta")
    sketch.add_argument("--epsilon", type=float, default=None,
                        help="build accuracy (default 0.3; REPRO_EPSILON layers under)")
    sketch.add_argument("--ell", type=float, default=None,
                        help="failure exponent (default 1.0; REPRO_ELL layers under)")
    sketch.add_argument("--theta", type=int, default=None, help="fixed sketch size (skips derivation)")
    sketch.add_argument(
        "--algorithm",
        default=None,
        choices=["tim", "imm"],
        help="theta derivation for k-based builds: tim = KPT estimation "
        "(Algorithm 2), imm = martingale lower-bound search — typically a "
        "much smaller sketch at equal epsilon (REPRO_ALGORITHM layers under)",
    )
    sketch.add_argument("--seed", type=int, default=0)
    sketch.add_argument("--out", required=True, help="output .npz sketch path")

    serve = sub.add_parser(
        "serve", help="serve influence queries from an RR sketch", parents=[execution]
    )
    serve.add_argument("--dataset", default="nethept", help="stand-in name or @/path/to/edgelist")
    serve.add_argument("--scale", type=float, default=1.0)
    serve.add_argument("--model", default="IC", choices=["IC", "LT"])
    serve.add_argument("--sketch", default=None, help="pre-built sketch (.npz) to load")
    serve.add_argument("--mmap", action="store_true", help="memory-map the loaded sketch")
    serve.add_argument(
        "--batch",
        default=None,
        help="JSONL query file ('-' or omitted = read stdin until EOF)",
    )
    serve.add_argument("--save-sketch", default=None, help="persist the (possibly grown) sketch on exit")
    serve.add_argument("-k", type=int, default=10, help="budget for cold sketch builds")
    serve.add_argument("--epsilon", type=float, default=None,
                       help="cold-build accuracy (default 0.3; REPRO_EPSILON layers under)")
    serve.add_argument("--ell", type=float, default=None,
                       help="failure exponent (default 1.0; REPRO_ELL layers under)")
    serve.add_argument("--theta", type=int, default=None, help="fixed size for cold sketch builds")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-indexes", type=int, default=4)
    serve.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="soft cap on resident sketch bytes: least-recently-used "
        "indexes are evicted before a cold build would exceed it",
    )

    update = sub.add_parser(
        "update",
        help="repair a persisted sketch across a stream of edge updates",
        parents=[execution],
    )
    update.add_argument("--dataset", default="nethept", help="stand-in name or @/path/to/edgelist")
    update.add_argument("--scale", type=float, default=1.0)
    update.add_argument("--model", default="IC", choices=["IC", "LT"])
    update.add_argument("--sketch", required=True, help="sketch (.npz) built for the dataset")
    update.add_argument(
        "--updates",
        required=True,
        help="JSONL edge updates ('-' = stdin): "
        '{"action": "insert"|"delete"|"reweight", "u": .., "v": .., "p": ..}',
    )
    update.add_argument("--out", required=True, help="repaired sketch output path")
    update.add_argument("--save-graph", default=None, help="write the updated edge list here")
    update.add_argument("--seed", type=int, default=0)

    obs_cmd = sub.add_parser(
        "obs", help="inspect metrics exported with --metrics-out"
    )
    obs_cmd.add_argument(
        "action",
        choices=["report", "prom", "check"],
        help="report = human summary table from a metrics JSONL; "
        "prom = convert a metrics JSONL to Prometheus text exposition; "
        "check = validate a Prometheus text file",
    )
    obs_cmd.add_argument("path", help="metrics JSONL (report/prom) or Prometheus text (check)")

    return parser


def _load_graph(dataset: str, scale: float, model: str):
    """Resolve --dataset: a registry name, or @path for an edge-list file."""
    if dataset.startswith("@"):
        graph, _ = load_edge_list(dataset[1:])
        if model == "IC":
            return weighted_cascade(graph)
        return uniform_random_lt(graph, rng=0)
    return build_dataset(dataset, scale).weighted_for(model)


def _command_datasets() -> int:
    for name in dataset_names():
        spec = dataset_spec(name)
        summary = summarize(
            build_dataset(name).graph, name, undirected=spec.undirected
        )
        print(
            f"{name:12s} paper: n={spec.paper_nodes:>6s} m={spec.paper_edges:>6s} "
            f"| stand-in: n={summary.num_nodes} m={summary.num_edges} "
            f"avg_deg={summary.average_degree:.1f} ({summary.graph_type})"
        )
    return 0


def _resolve_policy(args, base: ExecutionPolicy | None = None) -> ExecutionPolicy:
    """CLI flags over REPRO_* environment over ``base`` (library defaults).

    ``base`` carries subcommand-specific defaults — the sketch/serve builds
    default to the coarser ε = 0.3 — so the env vars still layer between
    the default and any explicit flag.  ``--metrics-out PATH`` implies
    ``metrics=True`` (the flag names the export; the switch rides along).
    """
    policy = ExecutionPolicy.from_args(args, base=base)
    if getattr(args, "metrics_out", None):
        policy = policy.merge(metrics=True)
    return policy


#: Serving sketches trade tightness for build time (see InfluenceService).
_SERVING_DEFAULTS = ExecutionPolicy(epsilon=0.3)

#: RIS pays ε⁻³, so its historical default is coarser than the library-wide
#: 0.1; the CLI keeps it as the base layer under REPRO_EPSILON / --epsilon.
_RIS_DEFAULTS = ExecutionPolicy(epsilon=0.2)


def _command_run(args) -> int:
    graph = _load_graph(args.dataset, args.scale, args.model)
    kwargs = {}
    if args.epsilon is not None:
        kwargs["epsilon"] = args.epsilon
    if args.ell is not None:
        kwargs["ell"] = args.ell
    if args.num_runs is not None:
        kwargs["num_runs"] = args.num_runs
    if args.trace_edges is not None:
        # run never persists a sketch, so tracing would be a silent no-op.
        raise SystemExit(
            "--trace-edges applies to the sketch/serve/update subcommands; "
            "run does not persist a sketch"
        )
    if supports_policy(args.algorithm):
        base = _RIS_DEFAULTS if args.algorithm.lower() == "ris" else None
        kwargs["policy"] = _resolve_policy(args, base=base)
    else:
        for flag in ("engine", "jobs"):
            if getattr(args, flag) is not None:
                policy_aware = sorted(
                    name for name in algorithm_names() if supports_policy(name)
                )
                raise SystemExit(
                    f"--{flag.replace('_', '-')} applies to "
                    f"{policy_aware}, not {args.algorithm!r}"
                )
    model = args.model
    if args.horizon is not None:
        if args.model != "IC":
            raise SystemExit("--horizon is only defined for the IC model")
        from repro.diffusion import BoundedIndependentCascade

        model = BoundedIndependentCascade(args.horizon)
    result = maximize_influence(
        graph, args.k, algorithm=args.algorithm, model=model, rng=args.seed, **kwargs
    )
    print(f"algorithm : {result.algorithm} ({result.model} model)")
    print(f"seeds     : {result.seeds}")
    print(f"runtime   : {result.runtime_seconds:.3f}s")
    if result.estimated_spread is not None:
        print(f"internal spread estimate: {result.estimated_spread:.2f}")
    if args.score_samples > 0:
        estimate = estimate_spread(
            graph, result.seeds, model=model, num_samples=args.score_samples, rng=args.seed + 1
        )
        low, high = estimate.confidence_interval()
        print(f"MC spread : {estimate.mean:.2f} (95% CI [{low:.2f}, {high:.2f}])")
    return 0


def _command_spread(args) -> int:
    graph = _load_graph(args.dataset, args.scale, args.model)
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    estimate = estimate_spread(
        graph, seeds, model=args.model, num_samples=args.samples, rng=args.seed
    )
    low, high = estimate.confidence_interval()
    print(f"E[I(S)] ~= {estimate.mean:.2f} (95% CI [{low:.2f}, {high:.2f}], {args.samples} runs)")
    return 0


def _command_experiment(args) -> int:
    result = EXPERIMENTS[args.name]()
    print(render(result))
    return 0


def _command_sketch(args) -> int:
    import os

    from repro.sketch import SketchIndex

    graph = _load_graph(args.dataset, args.scale, args.model)
    policy = _resolve_policy(args, base=_SERVING_DEFAULTS)
    started = obs.now()
    index = SketchIndex.build(
        graph,
        args.model,
        theta=args.theta,
        k=None if args.theta is not None else args.k,
        epsilon=policy.epsilon,
        ell=policy.ell,
        rng=args.seed,
        policy=policy,
    )
    build_seconds = obs.now() - started
    index.close()
    index.save(args.out)
    print(f"sketch      : {args.out} ({os.path.getsize(args.out)} bytes on disk)")
    print(f"graph       : n={graph.n} m={graph.m} fingerprint={graph.fingerprint()[:16]}…")
    print(f"model       : {index.meta['model']}")
    if index.meta.get("algorithm") is not None:
        print(f"derivation  : {index.meta['algorithm']} "
              f"(epsilon={index.meta.get('epsilon')})")
    print(f"rr sets     : {index.num_sets} (θ), {index.collection.nbytes()} array bytes")
    if index.collection.has_traces:
        print(f"edge traces : {index.collection.trace_edges_array.size} live edges recorded")
    print(f"build time  : {build_seconds:.3f}s")
    return 0


def _command_serve(args) -> int:
    from repro.dynamic import DynamicDiGraph
    from repro.sketch import (
        InfluenceService,
        SketchGraphMismatchError,
        SketchIndex,
        SketchFileError,
        SketchVersionError,
    )

    graph = _load_graph(args.dataset, args.scale, args.model)
    policy = _resolve_policy(args, base=_SERVING_DEFAULTS)
    memory_budget = (int(args.memory_budget_mb * 1024 * 1024)
                     if args.memory_budget_mb is not None else None)
    service = InfluenceService(
        max_indexes=args.max_indexes,
        default_k=args.k,
        epsilon=policy.epsilon,
        ell=policy.ell,
        theta=args.theta,
        policy=policy,
        rng=args.seed,
        memory_budget_bytes=memory_budget,
    )
    if args.sketch is not None:
        # Loading validates the fingerprint: a stale sketch fails fast here.
        # A *corrupt* file is different — it has already been quarantined by
        # load_sketch, so degrade loudly to a cold build instead of dying.
        try:
            loaded_index = SketchIndex.load(args.sketch, graph=graph, mmap=args.mmap)
        except (SketchVersionError, SketchGraphMismatchError):
            raise  # intact but wrong sketch: an operator mistake, fail fast
        except SketchFileError as exc:
            print(f"warning: {exc}; serving cold (the sketch rebuilds on "
                  f"first query)", file=sys.stderr)
            obs.degraded("warm_to_cold")
        else:
            service.add_index(loaded_index)

    # The dynamic wrapper lets the stream carry "update" ops; for purely
    # read-only batches it is a zero-cost pass-through to the snapshot.
    dynamic = DynamicDiGraph(graph)
    if args.batch is None or args.batch == "-":
        lines = sys.stdin
    else:
        lines = open(args.batch, "r", encoding="utf-8")
    try:
        responses = service.run_batch(dynamic, lines, model=args.model)
    finally:
        if lines is not sys.stdin:
            lines.close()
    try:
        for response in responses:
            print(json.dumps(response, sort_keys=True))
    except BrokenPipeError:  # downstream pager/head closed the pipe
        # Still persist the sketch and report the honest exit code; point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        import os

        sys.stdout = open(os.devnull, "w", encoding="utf-8")

    if args.save_sketch is not None:
        # After updates, the index is keyed by the *current* snapshot.
        index, _ = service.get_index(dynamic, args.model)
        index.save(args.save_sketch)
    service.close()
    stats = service.stats
    try:
        print(
            f"served {stats.queries} queries ({stats.errors} errors) | "
            f"cache hits/misses {stats.cache_hits}/{stats.cache_misses} | "
            f"mean latency {stats.mean_latency_ms:.2f}ms | "
            f"p50/p99 {stats.latency.percentile(0.5):.2f}/"
            f"{stats.latency.percentile(0.99):.2f}ms | "
            f"{stats.queries_per_second:.0f} q/s",
            file=sys.stderr,
        )
    except BrokenPipeError:
        pass
    return 1 if stats.errors else 0


def _command_update(args) -> int:
    from repro.dynamic import DynamicDiGraph, parse_update
    from repro.graphs import save_edge_list
    from repro.sketch import SketchIndex

    graph = _load_graph(args.dataset, args.scale, args.model)
    policy = _resolve_policy(args)
    index = SketchIndex.load(args.sketch, graph=graph, model=args.model, jobs=policy.jobs)
    dynamic = DynamicDiGraph(graph)

    if args.updates == "-":
        lines = sys.stdin
    else:
        lines = open(args.updates, "r", encoding="utf-8")
    total_affected = 0
    num_updates = 0
    started = obs.now()
    try:
        for line_number, line in enumerate(lines, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                update = parse_update(json.loads(text))
                delta = dynamic.apply(update)
                report = index.apply_update(delta, rng=args.seed + line_number)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                raise SystemExit(f"{args.updates}:{line_number}: {exc}")
            num_updates += 1
            total_affected += report.num_affected
            print(
                f"update {num_updates:4d}: {report.op:8s} {report.u}->{report.v} | "
                f"resampled {report.num_affected}/{report.num_sets} RR sets "
                f"({100.0 * report.affected_fraction:.2f}%), patched {report.num_patched}"
            )
    finally:
        if lines is not sys.stdin:
            lines.close()
    repair_seconds = obs.now() - started
    index.close()
    index.save(args.out)
    if args.save_graph is not None:
        save_edge_list(dynamic.graph, args.save_graph)
        print(f"graph       : {args.save_graph} (n={dynamic.n} m={dynamic.m})")
    print(f"sketch      : {args.out} ({index.num_sets} RR sets, "
          f"fingerprint {dynamic.fingerprint()[:16]}…)")
    print(f"repairs     : {num_updates} updates, {total_affected} RR sets resampled "
          f"in {repair_seconds:.3f}s")
    return 0


def _command_obs(args) -> int:
    if args.action == "check":
        text = open(args.path, "r", encoding="utf-8").read()
        errors = obs.validate_prometheus_text(text)
        for error in errors:
            print(f"{args.path}: {error}", file=sys.stderr)
        if not errors:
            print(f"{args.path}: valid Prometheus text exposition")
        return 1 if errors else 0
    data = obs.read_jsonl(args.path)
    if args.action == "prom":
        sys.stdout.write(obs.snapshot_to_prometheus(data["metrics"]))
        return 0
    sys.stdout.write(obs.render_report(data))
    return 0


def _metrics_wanted(args) -> str | None:
    """The --metrics-out path when instrumentation should switch on."""
    return getattr(args, "metrics_out", None)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # Chaos jobs inject faults into real CLI processes via REPRO_FAULTS;
    # unset (the normal case) this is a no-op and checkpoints stay free.
    try:
        _install_fault_plan()
    except ValueError as exc:
        raise SystemExit(str(exc))
    # --metrics-out flips the process-global tracer for the command's
    # duration and exports on the way out.  REPRO_METRICS=1 already enabled
    # recording at import time (no export without a path); the flag layers
    # on top exactly like every other ExecutionPolicy knob.
    metrics_out = _metrics_wanted(args)
    if metrics_out is not None:
        obs.configure(enabled=True)
        obs.reset()
    code = _dispatch_command(args)
    if metrics_out is not None:
        obs.write_jsonl(metrics_out, meta={"command": args.command})
    return code


def _dispatch_command(args) -> int:
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "run":
        return _command_run(args)
    if args.command == "spread":
        return _command_spread(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "sketch":
        return _command_sketch(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "update":
        return _command_update(args)
    if args.command == "obs":
        return _command_obs(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
