"""``python -m repro.lint`` — the command-line front end.

Exit-code contract (stable; CI depends on it):

* ``0`` — no findings (after baseline suppression);
* ``1`` — at least one finding;
* ``2`` — usage error (unknown path, malformed baseline, unknown rule code).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.findings import Baseline, Finding, LintUsageError
from repro.lint.framework import lint_paths, registered_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis: determinism, resource "
                    "safety, exception policy, ExecutionPolicy discipline, and "
                    "wire-schema sync.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings recorded in this baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE as a baseline and exit 0")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--root", metavar="DIR",
                        help="project root (default: nearest pyproject.toml)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def _parse_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        payload = {
            "version": 1,
            "findings": [finding.as_dict() for finding in findings],
        }
        return json.dumps(payload, indent=2)
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in sorted(registered_rules().items()):
            print(f"{code}  {rule_cls.name}: {rule_cls.description}")
        return EXIT_CLEAN

    try:
        findings = lint_paths(
            args.paths,
            root=args.root,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
        )
        if args.write_baseline:
            Baseline.from_findings(findings).save(args.write_baseline)
            print(f"wrote {len(findings)} fingerprint(s) to {args.write_baseline}")
            return EXIT_CLEAN
        if args.baseline:
            findings = Baseline.load(args.baseline).filter(findings)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    output = _render(findings, args.format)
    if output:
        print(output)
    return EXIT_FINDINGS if findings else EXIT_CLEAN
