"""``python -m repro.lint`` — the command-line front end.

Exit-code contract (stable; CI depends on it):

* ``0`` — no findings (after baseline suppression);
* ``1`` — at least one finding;
* ``2`` — usage error (unknown path, malformed baseline, unknown rule code).

The result cache under ``.repro-lint-cache/`` is on by default so warm runs
only re-analyze changed files; ``--no-cache`` forces a cold run and
``--stats`` reports the hit rate (CI asserts ≥90% on a warm invocation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.findings import Baseline, Finding, LintUsageError
from repro.lint.framework import LintStats, registered_rules, run_lint
from repro.lint.sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis: determinism, resource "
                    "safety, exception policy, ExecutionPolicy discipline, "
                    "wire-schema sync, and interprocedural dataflow (seed "
                    "provenance, shared-state races, memmap discipline).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format (default: text)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings recorded in this baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE as a baseline and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="with --baseline: drop fingerprints that no longer "
                             "match any current finding, rewriting the file")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--root", metavar="DIR",
                        help="project root (default: nearest pyproject.toml)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze cache misses in N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the .repro-lint-cache result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="cache directory (default: <root>/.repro-lint-cache)")
    parser.add_argument("--stats", action="store_true",
                        help="print cache/analysis statistics to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def _parse_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _render(findings: Sequence[Finding], fmt: str, stats: LintStats) -> str:
    if fmt == "sarif":
        return render_sarif(findings)
    if fmt == "json":
        payload = {
            "version": 1,
            "findings": [finding.as_dict() for finding in findings],
            "stats": stats.as_dict(),
        }
        return json.dumps(payload, indent=2)
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in sorted(registered_rules().items()):
            print(f"{code}  {rule_cls.name}: {rule_cls.description}")
        return EXIT_CLEAN

    if args.prune_baseline and not args.baseline:
        print("error: --prune-baseline requires --baseline", file=sys.stderr)
        return EXIT_USAGE

    try:
        run = run_lint(
            args.paths,
            root=args.root,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            jobs=max(1, args.jobs),
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
        findings = run.findings
        if args.write_baseline:
            Baseline.from_findings(findings).save(args.write_baseline)
            print(f"wrote {len(findings)} fingerprint(s) to {args.write_baseline}")
            return EXIT_CLEAN
        if args.baseline:
            baseline = Baseline.load(args.baseline)
            if args.prune_baseline:
                current = {finding.fingerprint() for finding in findings}
                kept = baseline.fingerprints & current
                stale = len(baseline.fingerprints) - len(kept)
                if stale:
                    baseline = Baseline(fingerprints=kept)
                    baseline.save(args.baseline)
                print(f"pruned {stale} stale fingerprint(s) from {args.baseline}",
                      file=sys.stderr)
            findings = baseline.filter(findings)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.stats:
        print(run.stats.render(), file=sys.stderr)
    output = _render(findings, args.format, run.stats)
    if output:
        print(output)
    return EXIT_FINDINGS if findings else EXIT_CLEAN
