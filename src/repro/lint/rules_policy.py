"""RL401 / RL402 — ExecutionPolicy discipline.

PR 5 consolidated every execution knob into
:class:`~repro.api.policy.ExecutionPolicy` and left exactly one blessed
shape for backward compatibility: keyword parameters defaulting to the
:data:`~repro.api.policy.DEPRECATED` sentinel, folded through
``resolve_call_policy``/``warn_legacy_kwargs`` so explicit use warns once
and takes the same code path as ``policy=``.

* **RL401 (policy-kwarg drift)** — a *public module-level function* under
  ``src/repro`` must not re-grow a bare ``engine=`` / ``jobs=`` /
  ``trace_edges=`` / ``sketch_index=`` keyword (one with a real default).
  Either take ``policy=`` or make the legacy keyword a ``DEPRECATED``
  shim.  Required positional parameters are exempt, as are private helpers
  and methods (classes own their configuration objects), and the
  ``repro.parallel`` / ``repro.rrset`` engine layers are out of scope
  entirely: they are the implementation those knobs configure, so their
  factories (``maybe_parallel``, ``make_rr_sampler``) legitimately spell
  the knobs out.

* **RL402 (deprecation hygiene)** — any function carrying a
  ``DEPRECATED``-defaulted parameter must actually emit the warning:
  its body must call ``resolve_call_policy`` / ``warn_legacy_kwargs`` (or
  ``warnings.warn(..., DeprecationWarning, ...)`` directly).  A silent shim
  is an API that can never be removed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import FileRule, ParsedModule, register_rule

#: Execution knobs that must flow through ExecutionPolicy on public entry points.
LEGACY_POLICY_KWARGS = frozenset({"engine", "jobs", "trace_edges", "sketch_index"})

#: Engine-implementation packages where the knobs *are* the interface.
_IMPLEMENTATION_LAYERS = ("src/repro/parallel/", "src/repro/rrset/")

#: Helpers whose invocation proves the shim emits a DeprecationWarning.
_WARNING_HELPERS = frozenset({"resolve_call_policy", "warn_legacy_kwargs"})


def _is_deprecated_default(node: ast.expr | None) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "DEPRECATED"
    if isinstance(node, ast.Attribute):
        return node.attr == "DEPRECATED"
    return False


def _defaulted_params(func: ast.FunctionDef | ast.AsyncFunctionDef
                      ) -> list[tuple[ast.arg, ast.expr | None]]:
    """Every (parameter, default) pair; required params carry ``None``."""
    positional = list(func.args.posonlyargs) + list(func.args.args)
    defaults: list[ast.expr | None] = [None] * (len(positional) - len(func.args.defaults))
    defaults.extend(func.args.defaults)
    pairs = list(zip(positional, defaults))
    pairs.extend(zip(func.args.kwonlyargs, func.args.kw_defaults))
    return pairs


def _emits_deprecation_warning(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = (target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute) else None)
        if name in _WARNING_HELPERS:
            return True
        if name == "warn":
            mentions = list(node.args) + [kw.value for kw in node.keywords]
            for argument in mentions:
                for leaf in ast.walk(argument):
                    if isinstance(leaf, ast.Name) and leaf.id == "DeprecationWarning":
                        return True
                    if isinstance(leaf, ast.Attribute) and leaf.attr == "DeprecationWarning":
                        return True
    return False


@register_rule
class PolicyKwargDriftRule(FileRule):
    code = "RL401"
    name = "policy-kwarg-drift"
    description = ("Public module-level entry points must not re-grow bare "
                   "engine=/jobs=/trace_edges=/sketch_index= keywords; take "
                   "policy=ExecutionPolicy(...) (legacy keywords only as "
                   "DEPRECATED shims).")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if module.rel_path.startswith(_IMPLEMENTATION_LAYERS):
            return
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            for param, default in _defaulted_params(stmt):
                if default is None:
                    continue  # required positional: plumbing, not a knob
                if param.arg in LEGACY_POLICY_KWARGS and not _is_deprecated_default(default):
                    yield module.finding(
                        param, self.code,
                        f"public entry point {stmt.name}() grows a bare "
                        f"{param.arg}= keyword — execution knobs belong on "
                        f"policy=ExecutionPolicy(...); keep {param.arg}= only "
                        f"as a DEPRECATED sentinel shim",
                    )


@register_rule
class DeprecationHygieneRule(FileRule):
    code = "RL402"
    name = "deprecation-hygiene"
    description = ("Functions with DEPRECATED-sentinel keywords must emit a "
                   "DeprecationWarning (via resolve_call_policy / "
                   "warn_legacy_kwargs / warnings.warn).")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            shimmed = [param.arg for param, default in _defaulted_params(node)
                       if _is_deprecated_default(default)]
            if not shimmed or _emits_deprecation_warning(node):
                continue
            listed = ", ".join(f"{name}=" for name in sorted(shimmed))
            yield module.finding(
                node, self.code,
                f"{node.name}() keeps DEPRECATED legacy keyword(s) ({listed}) "
                f"but never emits a DeprecationWarning — fold them through "
                f"resolve_call_policy() or warn_legacy_kwargs()",
            )
