"""RL601 — timing discipline.

Phase accounting now lives in :mod:`repro.obs`: spans recorded through
``obs.trace()`` land in the metrics registry, survive into the JSONL /
Prometheus exports, and cost nothing when observability is off.  A raw
``time.perf_counter()`` inside ``src/repro`` is a measurement the exporters
never see — it fragments the timing story the moment someone asks "where did
the wall-clock go?".  This rule flags:

* ``time.perf_counter()`` / ``time.perf_counter_ns()`` and the monotonic
  variants (``time.monotonic()`` / ``time.monotonic_ns()``) called through
  the ``time`` module;
* importing those clocks directly (``from time import perf_counter``),
  which binds the same raw clock under a local name.

``time.time()`` / ``time.sleep()`` are untouched — they are wall-clock /
scheduling calls, not phase instrumentation.  :mod:`repro.obs` itself is the
sanctioned wrapper (``obs.now()`` is the blessed passthrough for callers
that need a bare timestamp next to an open span) and is exempt.  Legacy
sites predating :mod:`repro.obs` are carried in the repository baseline
rather than suppressed inline, so new code cannot add to them silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import FileRule, ParsedModule, register_rule

#: Clock functions on the stdlib ``time`` module that this rule polices.
TIMING_CLOCKS = frozenset({
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
})

_GUIDANCE = ("time phases through repro.obs — `with obs.trace(\"group.step\"): ...` "
             "for spans, obs.now() for a bare timestamp")

#: The sanctioned wrapper package, exempt by definition.
_SANCTIONED_PREFIX = "src/repro/obs/"


def _dotted_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


@register_rule
class TimingDisciplineRule(FileRule):
    code = "RL601"
    name = "timing-discipline"
    description = ("No raw time.perf_counter()/monotonic() inside src/repro "
                   "outside repro.obs; phase timing flows through obs.trace() "
                   "or obs.now() so exporters see it.")

    def applies(self, module: ParsedModule) -> bool:
        if module.rel_path.startswith(_SANCTIONED_PREFIX):
            return False
        return super().applies(module)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        time_aliases: set[str] = set()      # names bound to the time module
        clock_aliases: set[str] = set()     # names bound to a raw clock

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in TIMING_CLOCKS:
                            clock_aliases.add(alias.asname or alias.name)
                            yield module.finding(
                                node, self.code,
                                f"importing {alias.name} from time binds a raw "
                                f"clock — {_GUIDANCE}",
                            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_chain(node.func)
            if chain is None:
                continue
            if (len(chain) == 2 and chain[0] in time_aliases
                    and chain[1] in TIMING_CLOCKS):
                yield module.finding(
                    node, self.code,
                    f"raw time.{chain[1]}() — {_GUIDANCE}",
                )
            elif len(chain) == 1 and chain[0] in clock_aliases:
                yield module.finding(
                    node, self.code,
                    f"raw {chain[0]}() (imported from time) — {_GUIDANCE}",
                )
