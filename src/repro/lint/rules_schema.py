"""RL501 — wire-schema sync.

The typed op layer in ``src/repro/api/ops.py`` is pinned by two fixtures:
``tests/api/golden_requests.jsonl`` (byte-for-byte request/wire shapes) and
``tests/api/api_surface.txt`` (the public-symbol signature snapshot).  When a
field is added to a request dataclass without touching the fixtures — or a
golden grows a key the dataclass would reject at runtime — the protocol has
silently forked.  This project rule cross-checks all three statically:

* every request ``op`` declared in ``ops.py`` appears in at least one golden
  line (schema changes must extend the goldens);
* every key used by a golden ``request``/``wire`` dict is accepted by the
  op's dataclass (fields + ``_extra_keys`` + ``op``/``schema_version``);
* every public Request/Response class is present in the API-surface
  snapshot, and each of its wire fields appears in the recorded signature
  (a stale snapshot means ``test_api_surface.py --update`` was skipped).
"""

from __future__ import annotations

import ast
import json
import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import ProjectContext, ProjectRule, register_rule

OPS_PATH = "src/repro/api/ops.py"
GOLDEN_PATH = "tests/api/golden_requests.jsonl"
SURFACE_PATH = "tests/api/api_surface.txt"


class _OpsClass:
    """Statically collected shape of one dataclass in ops.py."""

    def __init__(self, name: str, node: ast.ClassDef) -> None:
        self.name = name
        self.node = node
        self.bases = [base.id for base in node.bases if isinstance(base, ast.Name)]
        self.op: str | None = None
        self.fields: list[str] = []
        self.extra_keys: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                target = stmt.target.id
                annotation = ast.unparse(stmt.annotation)
                if annotation.startswith("ClassVar"):
                    if target == "op" and isinstance(stmt.value, ast.Constant):
                        self.op = str(stmt.value.value)
                    elif target == "_extra_keys" and stmt.value is not None:
                        for leaf in ast.walk(stmt.value):
                            if isinstance(leaf, ast.Constant) and isinstance(leaf.value, str):
                                self.extra_keys.add(leaf.value)
                else:
                    self.fields.append(target)


def _collect_ops_classes(tree: ast.Module) -> dict[str, _OpsClass]:
    classes: dict[str, _OpsClass] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = _OpsClass(stmt.name, stmt)
    return classes


def _transitive(classes: dict[str, _OpsClass], cls: _OpsClass,
                root: str) -> tuple[bool, list[str], set[str]]:
    """(descends from ``root``, inherited+own fields, extra keys)."""
    fields: list[str] = []
    extra: set[str] = set()
    seen: set[str] = set()

    def visit(current: _OpsClass) -> bool:
        if current.name in seen:
            return False
        seen.add(current.name)
        is_root = current.name == root
        for base in current.bases:
            if base == root:
                is_root = True
            if base in classes and visit(classes[base]):
                is_root = True
        fields.extend(f for f in current.fields if f not in fields)
        extra.update(current.extra_keys)
        return is_root

    descends = visit(cls) or cls.name == root
    return descends, fields, extra


@register_rule
class WireSchemaSyncRule(ProjectRule):
    code = "RL501"
    name = "wire-schema-sync"
    description = ("ops.py request/response dataclasses, the golden request "
                   "fixtures, and the API-surface snapshot must agree.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        ops_source = project.read_text(OPS_PATH)
        if ops_source is None:
            return  # not this repository layout; nothing to check
        try:
            tree = ast.parse(ops_source, filename=OPS_PATH)
        except SyntaxError:
            return  # the parse-error finding is RL000's job
        classes = _collect_ops_classes(tree)

        requests: dict[str, _OpsClass] = {}
        responses: list[_OpsClass] = []
        allowed: dict[str, set[str]] = {}
        surface_fields: dict[str, list[str]] = {}
        for cls in classes.values():
            descends_req, fields, extra = _transitive(classes, cls, "Request")
            if descends_req and cls.op:
                requests[cls.op] = cls
                allowed[cls.op] = set(fields) | extra | {"op", "schema_version"}
                surface_fields[cls.name] = fields
                continue
            descends_resp, fields, _ = _transitive(classes, cls, "Response")
            if descends_resp and not cls.name.startswith("_"):
                responses.append(cls)
                surface_fields[cls.name] = fields

        golden_text = project.read_text(GOLDEN_PATH)
        if golden_text is None:
            yield Finding(path=OPS_PATH, line=1, col=1, code=self.code,
                          message=f"golden fixture file {GOLDEN_PATH} is missing — "
                                  f"the wire schema is unpinned")
        else:
            yield from self._check_goldens(golden_text, requests, allowed)

        surface_text = project.read_text(SURFACE_PATH)
        if surface_text is None:
            yield Finding(path=OPS_PATH, line=1, col=1, code=self.code,
                          message=f"API-surface snapshot {SURFACE_PATH} is missing")
        else:
            public = [cls for cls in (*requests.values(), *responses)
                      if not cls.name.startswith("_")]
            yield from self._check_surface(surface_text, public, surface_fields)

    def _check_goldens(self, golden_text: str, requests: dict[str, _OpsClass],
                       allowed: dict[str, set[str]]) -> Iterator[Finding]:
        seen_ops: set[str] = set()
        for line_no, line in enumerate(golden_text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                yield Finding(path=GOLDEN_PATH, line=line_no, col=1, code=self.code,
                              message=f"golden line is not valid JSON: {exc.msg}")
                continue
            for section in ("request", "wire"):
                payload = entry.get(section)
                if not isinstance(payload, dict):
                    yield Finding(path=GOLDEN_PATH, line=line_no, col=1, code=self.code,
                                  message=f"golden line lacks a '{section}' object")
                    continue
                op = payload.get("op")
                if op not in requests:
                    yield Finding(path=GOLDEN_PATH, line=line_no, col=1, code=self.code,
                                  message=f"golden {section} uses unknown op {op!r} — "
                                          f"ops.py declares {sorted(requests)}")
                    continue
                seen_ops.add(str(op))
                unknown = sorted(set(payload) - allowed[str(op)])
                if unknown:
                    yield Finding(
                        path=GOLDEN_PATH, line=line_no, col=1, code=self.code,
                        message=f"golden {section} for op '{op}' carries key(s) "
                                f"{', '.join(unknown)} that {requests[str(op)].name} "
                                f"rejects — schema drift between ops.py and goldens",
                    )
        for op, cls in sorted(requests.items()):
            if op not in seen_ops:
                yield Finding(
                    path=OPS_PATH, line=cls.node.lineno, col=cls.node.col_offset + 1,
                    code=self.code,
                    message=f"request op '{op}' ({cls.name}) has no golden fixture in "
                            f"{GOLDEN_PATH} — every op must be pinned",
                )

    def _check_surface(self, surface_text: str, public: list[_OpsClass],
                       surface_fields: dict[str, list[str]]) -> Iterator[Finding]:
        for cls in public:
            pattern = re.compile(
                rf"^class repro(?:\.api)?\.{re.escape(cls.name)}\((.*)\)$", re.MULTILINE
            )
            match = pattern.search(surface_text)
            if match is None:
                yield Finding(
                    path=OPS_PATH, line=cls.node.lineno, col=cls.node.col_offset + 1,
                    code=self.code,
                    message=f"{cls.name} is missing from {SURFACE_PATH} — regenerate "
                            f"the snapshot (tests/api/test_api_surface.py --update)",
                )
                continue
            signature = match.group(1)
            for field_name in surface_fields.get(cls.name, []):
                if re.search(rf"\b{re.escape(field_name)}\b", signature) is None:
                    yield Finding(
                        path=OPS_PATH, line=cls.node.lineno,
                        col=cls.node.col_offset + 1, code=self.code,
                        message=f"{cls.name}.{field_name} is absent from its "
                                f"{SURFACE_PATH} signature — the snapshot is stale",
                    )
