"""RL301 — exception policy.

A bare ``except:`` or a broad ``except Exception:`` that silently swallows
is how a corrupt sketch file or a crashed worker turns into a wrong answer
that looks healthy.  The repo's convention (established when persistence
hardening mapped every zip/npy failure mode onto ``SketchFileError``): a
broad handler must either *re-raise* (possibly translating into a typed
error such as ``SketchFileError`` or ``ApiError``) or visibly *use* the
caught exception (e.g. ``ErrorResponse.from_exception(exc)`` on the JSONL
service front, which is translation into a structured error payload).

Flagged:

* ``except:`` with no re-raise in the handler body;
* ``except Exception:`` / ``except BaseException:`` (alone or in a tuple)
  whose body neither raises nor references the bound exception name.

Narrow handlers (``except OSError:`` ...) are not this rule's business.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import FileRule, ParsedModule, register_rule

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_name(handler: ast.ExceptHandler) -> str | None:
    """The broad exception name a handler catches, or ``None`` if narrow."""
    if handler.type is None:
        return "<bare>"
    candidates = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                  else [handler.type])
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD:
            return candidate.id
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD:
            return candidate.attr
    return None


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for stmt in handler.body
               for node in ast.walk(stmt))


def _handler_uses_exception(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == handler.name
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


@register_rule
class ExceptionPolicyRule(FileRule):
    code = "RL301"
    name = "exception-policy"
    description = ("No bare/broad except that swallows: broad handlers must "
                   "re-raise, translate into a typed error "
                   "(SketchFileError, ApiError, ...), or use the caught "
                   "exception.")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node)
            if broad is None:
                continue
            if _handler_reraises(node) or _handler_uses_exception(node):
                continue
            what = ("bare except:" if broad == "<bare>"
                    else f"except {broad}:")
            yield module.finding(
                node, self.code,
                f"{what} swallows the exception — re-raise, translate it into "
                f"a typed error (e.g. SketchFileError / ApiError), or narrow "
                f"the handler to the exceptions this code can actually handle",
            )
