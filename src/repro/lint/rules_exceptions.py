"""RL301 — exception policy.

A bare ``except:`` or a broad ``except Exception:`` that silently swallows
is how a corrupt sketch file or a crashed worker turns into a wrong answer
that looks healthy.  The repo's convention (established when persistence
hardening mapped every zip/npy failure mode onto ``SketchFileError``): a
broad handler must either *re-raise* (possibly translating into a typed
error such as ``SketchFileError`` or ``ApiError``) or visibly *use* the
caught exception (e.g. ``ErrorResponse.from_exception(exc)`` on the JSONL
service front, which is translation into a structured error payload).

Flagged:

* ``except:`` with no re-raise in the handler body;
* ``except Exception:`` / ``except BaseException:`` (alone or in a tuple)
  whose body neither raises nor references the bound exception name;
* a broad handler that "translates" into a *generic* exception —
  ``raise Exception(...)`` / ``raise RuntimeError(...)`` /
  ``raise BaseException(...)`` — instead of the typed taxonomy
  (:mod:`repro.faults.errors`: ``TransientError`` / ``FatalError`` /
  ``DeadlineExceeded``, or a domain error like ``SketchFileError`` /
  ``ApiError``).  :mod:`repro.faults` itself is exempt: it *defines* the
  taxonomy and its injection sites deliberately construct raw errors.

Narrow handlers (``except OSError:`` ...) are not this rule's business.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import FileRule, ParsedModule, register_rule

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_name(handler: ast.ExceptHandler) -> str | None:
    """The broad exception name a handler catches, or ``None`` if narrow."""
    if handler.type is None:
        return "<bare>"
    candidates = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                  else [handler.type])
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD:
            return candidate.id
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD:
            return candidate.attr
    return None


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for stmt in handler.body
               for node in ast.walk(stmt))


def _handler_uses_exception(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == handler.name
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


#: Constructing one of these inside a broad handler is not "translation" —
#: it launders a classified failure into an unclassifiable one.
_GENERIC_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})

#: The taxonomy package may construct whatever it defines.
_TAXONOMY_PREFIX = "src/repro/faults/"


def _generic_raises(handler: ast.ExceptHandler) -> Iterator[ast.Raise]:
    """``raise Exception/RuntimeError/BaseException(...)`` in the body."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in _GENERIC_RAISES:
                yield node


@register_rule
class ExceptionPolicyRule(FileRule):
    code = "RL301"
    name = "exception-policy"
    description = ("No bare/broad except that swallows: broad handlers must "
                   "re-raise, translate into a typed error (the "
                   "repro.faults taxonomy, SketchFileError, ApiError, ...), "
                   "or use the caught exception — and must not launder it "
                   "into a generic Exception/RuntimeError.")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        in_taxonomy = module.rel_path.startswith(_TAXONOMY_PREFIX)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node)
            if broad is None:
                continue
            what = ("bare except:" if broad == "<bare>"
                    else f"except {broad}:")
            if not (_handler_reraises(node) or _handler_uses_exception(node)):
                yield module.finding(
                    node, self.code,
                    f"{what} swallows the exception — re-raise, translate it "
                    f"into a typed error (e.g. TransientError / "
                    f"SketchFileError / ApiError), or narrow the handler to "
                    f"the exceptions this code can actually handle",
                )
                continue
            if in_taxonomy:
                continue
            for raise_node in _generic_raises(node):
                yield module.finding(
                    raise_node, self.code,
                    f"{what} re-raises a generic exception — translate into "
                    f"the repro.faults taxonomy (TransientError / FatalError "
                    f"/ DeadlineExceeded) or a domain error instead of "
                    f"laundering the failure class",
                )
