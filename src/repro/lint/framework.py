"""The rule framework: parsed modules, rule registry, and the lint runner.

Two rule kinds:

* :class:`FileRule` — checks one parsed module at a time (the common case);
  scoped so repo-convention rules only fire on library code under
  ``src/repro`` while fixture snippets can opt in via a virtual path.
* :class:`ProjectRule` — runs once per invocation against the repository
  root; used for cross-file consistency checks (the wire-schema rule reads
  ``src/repro/api/ops.py``, the golden JSONL fixtures, and the API-surface
  snapshot together).

Rules register themselves with :func:`register_rule` at import time
(:mod:`repro.lint` imports every rule module), carry a stable ``code``
(``RL1xx`` RNG, ``RL2xx`` resources, ``RL3xx`` exceptions, ``RL4xx`` policy,
``RL5xx`` schema), and yield :class:`~repro.lint.findings.Finding` objects.
A trailing ``# repro-lint: disable=RLxxx`` comment suppresses a finding on
that physical line — the sanctioned escape hatch for the rare legitimate
violation, visible in the diff it annotates.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import ClassVar, Iterable, Iterator, Sequence

from repro.lint.findings import Finding, LintUsageError

#: Reserved code for files the analyzer cannot parse at all.
PARSE_ERROR_CODE = "RL000"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")

#: Directories never descended into during file collection.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def find_project_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` holding a ``pyproject.toml``.

    Falls back to ``start`` itself (or its parent for files) when no marker
    is found, so the linter still runs on loose files.
    """
    candidate = start if start.is_dir() else start.parent
    for directory in (candidate, *candidate.parents):
        if (directory / "pyproject.toml").is_file():
            return directory
    return candidate


@dataclass
class ParsedModule:
    """One source file, parsed and indexed for rule consumption."""

    rel_path: str
    source: str
    tree: ast.Module
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)
    _suppressions: dict[int, frozenset[str]] | None = field(default=None, repr=False)

    @classmethod
    def from_source(cls, source: str, rel_path: str) -> "ParsedModule":
        """Parse ``source``; raises ``SyntaxError`` on unparsable input."""
        tree = ast.parse(source, filename=rel_path)
        return cls(rel_path=PurePosixPath(rel_path).as_posix(), source=source, tree=tree)

    @property
    def in_repro_src(self) -> bool:
        """True when the module lives under the library tree ``src/repro``."""
        return self.rel_path.startswith("src/repro/")

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (lazily building the parent map)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for inner in ast.iter_child_nodes(outer):
                    parents[inner] = outer
            self._parents = parents
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node`` from the innermost outward."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def suppressed(self, line: int, code: str) -> bool:
        """True when ``line`` carries ``# repro-lint: disable=`` for ``code``."""
        if self._suppressions is None:
            table: dict[int, frozenset[str]] = {}
            for number, text in enumerate(self.source.splitlines(), start=1):
                match = _SUPPRESS_RE.search(text)
                if match:
                    codes = frozenset(
                        part.strip() for part in match.group(1).split(",") if part.strip()
                    )
                    table[number] = codes
            self._suppressions = table
        return code in self._suppressions.get(line, frozenset())

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(path=self.rel_path, line=int(line), col=int(col),
                       code=code, message=message)


@dataclass
class ProjectContext:
    """What a :class:`ProjectRule` sees: the repo root and the linted set."""

    root: Path
    modules: Sequence[ParsedModule]

    def read_text(self, rel_path: str) -> str | None:
        """Contents of a repo-root-relative file, or ``None`` if absent."""
        target = self.root / rel_path
        if not target.is_file():
            return None
        return target.read_text(encoding="utf-8")


class Rule:
    """Base for all rules.  Subclasses set the class attributes below."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: ``"repro"`` restricts the rule to modules under ``src/repro``;
    #: ``"all"`` runs it on every linted file.
    scope: ClassVar[str] = "repro"


class FileRule(Rule):
    """A rule evaluated independently on each parsed module."""

    def applies(self, module: ParsedModule) -> bool:
        return self.scope == "all" or module.in_repro_src

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once per invocation against the repository root."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (idempotent)."""
    code = rule_cls.code
    if not code:
        raise ValueError(f"rule {rule_cls.__name__} must define a code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"rule code {code} already registered by {existing.__name__}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def registered_rules() -> dict[str, type[Rule]]:
    """Code → rule class for every registered rule (a copy)."""
    return dict(_REGISTRY)


def select_rules(select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules, honouring ``--select``/``--ignore``."""
    chosen = set(select) if select is not None else set(_REGISTRY)
    dropped = set(ignore) if ignore is not None else set()
    unknown = sorted((chosen | dropped) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise LintUsageError(f"unknown rule code(s): {', '.join(unknown)}; known: {known}")
    return [rule_cls() for code, rule_cls in sorted(_REGISTRY.items())
            if code in chosen and code not in dropped]


def collect_files(paths: Sequence[str | Path], root: Path) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            files.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate.resolve())
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(files)


def _relativize(file_path: Path, root: Path) -> str:
    try:
        return file_path.relative_to(root).as_posix()
    except ValueError:
        return file_path.as_posix()


def lint_source(source: str, path: str = "src/repro/_snippet.py",
                rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint an in-memory snippet under a virtual path (the test harness).

    Only file rules run — there is no project root to give a project rule.
    ``path`` decides rule scoping: the default puts the snippet inside the
    library tree so every repo-convention rule applies.
    """
    try:
        module = ParsedModule.from_source(source, path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        code=PARSE_ERROR_CODE, message=f"cannot parse: {exc.msg}")]
    findings: list[Finding] = []
    for rule in rules if rules is not None else select_rules():
        if isinstance(rule, FileRule) and rule.applies(module):
            findings.extend(rule.check(module))
    return sorted(
        finding for finding in findings
        if not module.suppressed(finding.line, finding.code)
    )


def lint_paths(paths: Sequence[str | Path], *, root: str | Path | None = None,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None) -> list[Finding]:
    """Run every applicable rule over ``paths``; returns sorted findings.

    ``root`` anchors path relativization and project rules; by default it is
    discovered by walking up from the first path to the nearest
    ``pyproject.toml``.
    """
    if not paths:
        raise LintUsageError("no paths given")
    first = Path(paths[0])
    resolved_root = (Path(root).resolve() if root is not None
                     else find_project_root(first.resolve()))
    rules = select_rules(select, ignore)
    files = collect_files(paths, resolved_root)
    modules: list[ParsedModule] = []
    findings: list[Finding] = []
    for file_path in files:
        rel = _relativize(file_path, resolved_root)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ParsedModule.from_source(source, rel)
        except (OSError, UnicodeDecodeError) as exc:
            raise LintUsageError(f"cannot read {rel}: {exc}") from exc
        except SyntaxError as exc:
            findings.append(Finding(path=rel, line=exc.lineno or 1,
                                    col=(exc.offset or 0) + 1, code=PARSE_ERROR_CODE,
                                    message=f"cannot parse: {exc.msg}"))
            continue
        modules.append(module)
        for rule in rules:
            if isinstance(rule, FileRule) and rule.applies(module):
                for finding in rule.check(module):
                    if not module.suppressed(finding.line, finding.code):
                        findings.append(finding)
    project = ProjectContext(root=resolved_root, modules=modules)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
    return sorted(findings)
