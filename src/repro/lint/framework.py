"""The rule framework: parsed modules, rule registry, and the lint runner.

Two rule kinds:

* :class:`FileRule` — checks one parsed module at a time (the common case);
  scoped so repo-convention rules only fire on library code under
  ``src/repro`` while fixture snippets can opt in via a virtual path.
* :class:`ProjectRule` — runs once per invocation against the repository
  root; used for cross-file consistency checks.  A project rule that sets
  ``index_paths`` receives the cross-module :class:`ProjectIndex` (symbol
  table + call graph + mini-IR) built over files matching those prefixes —
  the substrate of the RL7xx interprocedural dataflow rules.

Rules register themselves with :func:`register_rule` at import time
(:mod:`repro.lint` imports every rule module), carry a stable ``code``
(``RL1xx`` RNG, ``RL2xx`` resources, ``RL3xx`` exceptions, ``RL4xx`` policy,
``RL5xx`` schema, ``RL6xx`` timing, ``RL7xx`` dataflow), and yield
:class:`~repro.lint.findings.Finding` objects.  A trailing
``# repro-lint: disable=RLxxx`` comment suppresses a finding on that
physical line — the sanctioned escape hatch for the rare legitimate
violation, visible in the diff it annotates.

The runner is built for the inner loop:

* **short-circuit parsing** — a file is read and parsed only when at least
  one *selected* rule consumes it (a ``--select RL501`` run parses nothing);
* **result cache** — per-file findings and the serialized module index are
  cached under ``.repro-lint-cache/`` keyed by content hash and ruleset
  version, so warm runs re-analyze only changed files;
* **``--jobs`` fan-out** — cache misses are parsed and analyzed in a
  process pool; output order and content are identical for every job count.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Iterator, Sequence

from repro.lint.findings import Finding, LintUsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.dataflow import DataflowEngine
    from repro.lint.project import ModuleIndex, ProjectIndex

#: Reserved code for files the analyzer cannot parse at all.
PARSE_ERROR_CODE = "RL000"

#: Bump whenever rule semantics change: every cached result keyed under an
#: older version is invalidated wholesale.
RULESET_VERSION = "2026.08-rl7"

#: Default cache directory name, created under the project root.
CACHE_DIR_NAME = ".repro-lint-cache"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")

#: Directories never descended into during file collection.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache",
                        CACHE_DIR_NAME})


def find_project_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` holding a ``pyproject.toml``.

    Falls back to ``start`` itself (or its parent for files) when no marker
    is found, so the linter still runs on loose files.
    """
    candidate = start if start.is_dir() else start.parent
    for directory in (candidate, *candidate.parents):
        if (directory / "pyproject.toml").is_file():
            return directory
    return candidate


@dataclass
class ParsedModule:
    """One source file, parsed and indexed for rule consumption."""

    rel_path: str
    source: str
    tree: ast.Module
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)
    _suppressions: dict[int, frozenset[str]] | None = field(default=None, repr=False)

    @classmethod
    def from_source(cls, source: str, rel_path: str) -> "ParsedModule":
        """Parse ``source``; raises ``SyntaxError`` on unparsable input."""
        tree = ast.parse(source, filename=rel_path)
        return cls(rel_path=PurePosixPath(rel_path).as_posix(), source=source, tree=tree)

    @property
    def in_repro_src(self) -> bool:
        """True when the module lives under the library tree ``src/repro``."""
        return self.rel_path.startswith("src/repro/")

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (lazily building the parent map)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for inner in ast.iter_child_nodes(outer):
                    parents[inner] = outer
            self._parents = parents
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node`` from the innermost outward."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def _suppression_map(self) -> dict[int, frozenset[str]]:
        if self._suppressions is None:
            table: dict[int, frozenset[str]] = {}
            for number, text in enumerate(self.source.splitlines(), start=1):
                match = _SUPPRESS_RE.search(text)
                if match:
                    codes = frozenset(
                        part.strip() for part in match.group(1).split(",") if part.strip()
                    )
                    table[number] = codes
            self._suppressions = table
        return self._suppressions

    def suppression_table(self) -> dict[int, list[str]]:
        """Line → sorted disabled codes (JSON-friendly copy)."""
        return {line: sorted(codes)
                for line, codes in self._suppression_map().items()}

    def suppressed(self, line: int, code: str) -> bool:
        """True when ``line`` carries ``# repro-lint: disable=`` for ``code``."""
        return code in self._suppression_map().get(line, frozenset())

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(path=self.rel_path, line=int(line), col=int(col),
                       code=code, message=message)


@dataclass
class ProjectContext:
    """What a :class:`ProjectRule` sees: root, indexes, and the dataflow engine."""

    root: Path
    modules: Sequence[ParsedModule] = ()
    indexes: dict[str, "ModuleIndex"] = field(default_factory=dict)
    _engine: "DataflowEngine | None" = field(default=None, repr=False)

    def read_text(self, rel_path: str) -> str | None:
        """Contents of a repo-root-relative file, or ``None`` if absent."""
        target = self.root / rel_path
        if not target.is_file():
            return None
        return target.read_text(encoding="utf-8")

    def project_index(self) -> "ProjectIndex":
        from repro.lint.project import ProjectIndex

        index = ProjectIndex()
        for module_index in self.indexes.values():
            index.add(module_index)
        return index

    def dataflow(self) -> "DataflowEngine":
        """The (cached) dataflow engine over every indexed module."""
        if self._engine is None:
            from repro.lint.dataflow import DataflowEngine

            self._engine = DataflowEngine(self.project_index())
        return self._engine

    def suppressed(self, rel_path: str, line: int, code: str) -> bool:
        """Inline-suppression lookup through the module index, if present."""
        module_index = self.indexes.get(rel_path)
        return module_index is not None and module_index.suppressed(line, code)


class Rule:
    """Base for all rules.  Subclasses set the class attributes below."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: ``"repro"`` restricts the rule to modules under ``src/repro``;
    #: ``"all"`` runs it on every linted file.
    scope: ClassVar[str] = "repro"


class FileRule(Rule):
    """A rule evaluated independently on each parsed module."""

    def interested_in(self, rel_path: str) -> bool:
        """Path-level applicability — decides whether a file is parsed at all."""
        return self.scope == "all" or rel_path.startswith("src/repro/")

    def applies(self, module: ParsedModule) -> bool:
        return self.interested_in(module.rel_path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once per invocation against the repository root."""

    #: Path prefixes whose files must be parsed and *indexed* (symbol table,
    #: call graph, mini-IR) for this rule.  Empty = the rule reads whatever
    #: files it needs itself and forces no parsing.
    index_paths: ClassVar[tuple[str, ...]] = ()

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (idempotent)."""
    code = rule_cls.code
    if not code:
        raise ValueError(f"rule {rule_cls.__name__} must define a code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"rule code {code} already registered by {existing.__name__}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def registered_rules() -> dict[str, type[Rule]]:
    """Code → rule class for every registered rule (a copy)."""
    return dict(_REGISTRY)


def select_rules(select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules, honouring ``--select``/``--ignore``."""
    chosen = set(select) if select is not None else set(_REGISTRY)
    dropped = set(ignore) if ignore is not None else set()
    unknown = sorted((chosen | dropped) - set(_REGISTRY))
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise LintUsageError(f"unknown rule code(s): {', '.join(unknown)}; known: {known}")
    return [rule_cls() for code, rule_cls in sorted(_REGISTRY.items())
            if code in chosen and code not in dropped]


def collect_files(paths: Sequence[str | Path], root: Path) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            files.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate.resolve())
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(files)


def _relativize(file_path: Path, root: Path) -> str:
    try:
        return file_path.relative_to(root).as_posix()
    except ValueError:
        return file_path.as_posix()


def lint_source(source: str, path: str = "src/repro/_snippet.py",
                rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint an in-memory snippet under a virtual path (the test harness).

    Only file rules run — there is no project root to give a project rule.
    ``path`` decides rule scoping: the default puts the snippet inside the
    library tree so every repo-convention rule applies.
    """
    try:
        module = ParsedModule.from_source(source, path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        code=PARSE_ERROR_CODE, message=f"cannot parse: {exc.msg}")]
    findings: list[Finding] = []
    for rule in rules if rules is not None else select_rules():
        if isinstance(rule, FileRule) and rule.applies(module):
            findings.extend(rule.check(module))
    return sorted(
        finding for finding in findings
        if not module.suppressed(finding.line, finding.code)
    )


# ---------------------------------------------------------------------------
# The runner: per-file analysis (cacheable, poolable) + project pass.
# ---------------------------------------------------------------------------


@dataclass
class LintStats:
    """Where each collected file's results came from in one invocation."""

    files_total: int = 0
    files_analyzed: int = 0      # parsed + analyzed in this invocation
    files_from_cache: int = 0    # results loaded from the warm cache
    files_skipped: int = 0       # no selected rule applies — never read

    @property
    def cache_hit_rate(self) -> float:
        considered = self.files_analyzed + self.files_from_cache
        if considered == 0:
            return 1.0
        return self.files_from_cache / considered

    def as_dict(self) -> dict[str, Any]:
        return {
            "files_total": self.files_total,
            "files_analyzed": self.files_analyzed,
            "files_from_cache": self.files_from_cache,
            "files_skipped": self.files_skipped,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }

    def render(self) -> str:
        return (f"lint stats: {self.files_total} file(s) — "
                f"{self.files_from_cache} from cache "
                f"({self.cache_hit_rate:.1%} hit rate), "
                f"{self.files_analyzed} analyzed, "
                f"{self.files_skipped} skipped (no selected rule applies)")


@dataclass
class LintRun:
    """Findings plus provenance statistics for one invocation."""

    findings: list[Finding]
    stats: LintStats


def _analyze_file(task: tuple[str, str, tuple[str, ...], bool]) -> dict[str, Any]:
    """Parse + run file rules + (optionally) index one file.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; the rule
    registry repopulates in workers when :mod:`repro.lint` imports.
    """
    import repro.lint  # noqa: F401  (registers every rule in pool workers)
    from repro.lint.project import index_module

    rel_path, source, codes, need_index = task
    result: dict[str, Any] = {"rel_path": rel_path, "findings": [],
                              "codes": list(codes), "index": None}
    try:
        module = ParsedModule.from_source(source, rel_path)
    except SyntaxError as exc:
        result["findings"] = [Finding(
            path=rel_path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            code=PARSE_ERROR_CODE, message=f"cannot parse: {exc.msg}").as_dict()]
        return result

    rules = [rule for rule in select_rules(select=codes or None)
             if isinstance(rule, FileRule)]
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies(module):
            for finding in rule.check(module):
                if not module.suppressed(finding.line, finding.code):
                    findings.append(finding)
    result["findings"] = [finding.as_dict() for finding in sorted(findings)]
    if need_index:
        result["index"] = index_module(module).as_dict()
    return result


class _ResultCache:
    """Per-file JSON cache under ``<root>/.repro-lint-cache/``.

    Keyed by (source sha256, ruleset version); an entry stores the file-rule
    findings per analyzed code and the serialized module index, so a warm
    run neither re-parses nor re-analyzes unchanged files — including runs
    narrowed with ``--select`` to a subset of the cached codes.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = directory

    def _entry_path(self, rel_path: str) -> Path:
        digest = hashlib.sha256(rel_path.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def load(self, rel_path: str, source_sha: str, codes: tuple[str, ...],
             need_index: bool) -> dict[str, Any] | None:
        try:
            payload = json.loads(self._entry_path(rel_path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if (payload.get("sha") != source_sha
                or payload.get("ruleset") != RULESET_VERSION
                or payload.get("rel_path") != rel_path):
            return None
        analyzed = set(payload.get("codes", []))
        if not set(codes) <= analyzed:
            return None
        if need_index and payload.get("index") is None:
            # A parse failure is cached with no index; that *is* the result.
            if not any(f.get("code") == PARSE_ERROR_CODE
                       for f in payload.get("findings", [])):
                return None
        return payload

    def store(self, rel_path: str, source_sha: str,
              result: dict[str, Any]) -> None:
        payload = {
            "ruleset": RULESET_VERSION,
            "rel_path": rel_path,
            "sha": source_sha,
            "codes": result["codes"],
            "findings": result["findings"],
            "index": result["index"],
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._entry_path(rel_path).write_text(
                json.dumps(payload), encoding="utf-8")
        except OSError:  # pragma: no cover - cache writes are best-effort
            pass


def run_lint(paths: Sequence[str | Path], *, root: str | Path | None = None,
             select: Iterable[str] | None = None,
             ignore: Iterable[str] | None = None,
             jobs: int = 1, cache: bool = False,  # repro-lint: disable=RL401
             cache_dir: str | Path | None = None) -> LintRun:
    """Run every applicable rule over ``paths``; returns findings + stats.

    ``root`` anchors path relativization and project rules; by default it is
    discovered by walking up from the first path to the nearest
    ``pyproject.toml``.  ``cache=True`` enables the on-disk result cache
    (``cache_dir`` defaults to ``<root>/.repro-lint-cache``); ``jobs > 1``
    fans cache misses out over a process pool.
    """
    if not paths:
        raise LintUsageError("no paths given")
    first = Path(paths[0])
    resolved_root = (Path(root).resolve() if root is not None
                     else find_project_root(first.resolve()))
    rules = select_rules(select, ignore)
    file_rules = [rule for rule in rules if isinstance(rule, FileRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    index_prefixes: tuple[str, ...] = tuple(
        prefix for rule in project_rules for prefix in rule.index_paths)
    files = collect_files(paths, resolved_root)

    result_cache = (_ResultCache(Path(cache_dir) if cache_dir is not None
                                 else resolved_root / CACHE_DIR_NAME)
                    if cache else None)

    stats = LintStats(files_total=len(files))
    findings: list[Finding] = []
    indexes: dict[str, "ModuleIndex"] = {}
    pending: list[tuple[str, str, tuple[str, ...], bool]] = []
    pending_shas: dict[str, str] = {}

    from repro.lint.project import ModuleIndex

    for file_path in files:
        rel = _relativize(file_path, resolved_root)
        codes = tuple(sorted(rule.code for rule in file_rules
                             if rule.interested_in(rel)))
        need_index = any(rel.startswith(prefix) for prefix in index_prefixes)
        if not codes and not need_index:
            stats.files_skipped += 1
            continue
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintUsageError(f"cannot read {rel}: {exc}") from exc
        source_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        if result_cache is not None:
            cached = result_cache.load(rel, source_sha, codes, need_index)
            if cached is not None:
                stats.files_from_cache += 1
                wanted = set(codes) | {PARSE_ERROR_CODE}
                findings.extend(Finding(**f) for f in cached["findings"]
                                if f.get("code") in wanted)
                if cached.get("index") is not None:
                    indexes[rel] = ModuleIndex.from_dict(cached["index"])
                continue
        pending.append((rel, source, codes, need_index))
        pending_shas[rel] = source_sha

    if pending:
        stats.files_analyzed = len(pending)
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_analyze_file, pending))
        else:
            results = [_analyze_file(task) for task in pending]
        for result in results:
            rel = result["rel_path"]
            findings.extend(Finding(**f) for f in result["findings"])
            if result["index"] is not None:
                indexes[rel] = ModuleIndex.from_dict(result["index"])
            if result_cache is not None:
                result_cache.store(rel, pending_shas[rel], result)

    project = ProjectContext(root=resolved_root, indexes=indexes)
    for rule in project_rules:
        for finding in rule.check_project(project):
            if not project.suppressed(finding.path, finding.line, finding.code):
                findings.append(finding)
    return LintRun(findings=sorted(findings), stats=stats)


def lint_paths(paths: Sequence[str | Path], *, root: str | Path | None = None,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               jobs: int = 1, cache: bool = False,  # repro-lint: disable=RL401
               cache_dir: str | Path | None = None) -> list[Finding]:
    """:func:`run_lint`, returning just the sorted findings."""
    return run_lint(paths, root=root, select=select, ignore=ignore,
                    jobs=jobs, cache=cache, cache_dir=cache_dir).findings
