"""Entry point: ``python -m repro.lint [paths...]``."""

import sys

import repro.lint  # noqa: F401  — imports register every rule
from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
