"""RL101 — RNG discipline.

Every byte of RR-sketch reproducibility rests on one convention: entropy
enters through :mod:`repro.utils.rng` (``resolve_rng``/``RandomSource``/
``spawn_seed_streams``) or an explicitly seeded ``numpy.random.SeedSequence``
— never through module-level global streams.  A single
``np.random.default_rng()`` (unseeded) or ``random.random()`` call inside
``src/repro`` silently breaks the jobs-invariance and replay guarantees, so
this rule flags:

* ``np.random.default_rng()`` called with **no arguments** (fresh OS
  entropy — seeded calls are allowed);
* any draw/mutation on numpy's module-level global generator
  (``np.random.rand``, ``np.random.seed``, ``np.random.shuffle``, ...);
* any draw on the stdlib ``random`` module's global stream
  (``random.random``, ``random.randint``, ``random.seed``, ...), including
  importing those functions directly (``from random import random``).

``random.Random(seed)`` / ``random.SystemRandom()`` instances and
``np.random.Generator``/``SeedSequence`` objects are fine: they are
explicit, seedable, and local.  :mod:`repro.utils.rng` itself is the
sanctioned entry point and is skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import FileRule, ParsedModule, register_rule

#: Functions on ``numpy.random`` that touch the module-level global
#: generator (draws, and ``seed`` which mutates it).
NUMPY_GLOBAL_DRAWS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "permutation", "poisson", "power",
    "rand", "randint", "randn", "random", "random_integers", "random_sample",
    "ranf", "rayleigh", "sample", "seed", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal", "standard_t",
    "triangular", "uniform", "vonmises", "wald", "weibull", "zipf",
})

#: Functions on the stdlib ``random`` module that use its global stream.
STDLIB_GLOBAL_DRAWS = frozenset({
    "betavariate", "binomialvariate", "choice", "choices", "expovariate",
    "gammavariate", "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange", "sample",
    "seed", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

_GUIDANCE = ("route entropy through repro.utils.rng (resolve_rng / RandomSource / "
             "spawn_seed_streams) or an explicitly seeded np.random.SeedSequence")

#: The sanctioned entry-point module, exempt by definition.
_SANCTIONED = "src/repro/utils/rng.py"


def _dotted_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


@register_rule
class RngDisciplineRule(FileRule):
    code = "RL101"
    name = "rng-discipline"
    description = ("No unseeded default_rng() or module-level np.random/random "
                   "draws inside src/repro; entropy flows through "
                   "repro.utils.rng or an explicit SeedSequence.")

    def applies(self, module: ParsedModule) -> bool:
        if module.rel_path == _SANCTIONED:
            return False
        return super().applies(module)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        numpy_aliases: set[str] = set()        # names bound to the numpy package
        numpy_random_aliases: set[str] = set()  # names bound to numpy.random
        stdlib_random_aliases: set[str] = set()
        default_rng_aliases: set[str] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            numpy_random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
                    elif alias.name == "random":
                        stdlib_random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            default_rng_aliases.add(alias.asname or "default_rng")
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in STDLIB_GLOBAL_DRAWS:
                            yield module.finding(
                                node, self.code,
                                f"importing {alias.name} from random binds the "
                                f"module-level global stream — {_GUIDANCE}",
                            )

        def is_numpy_random(prefix: list[str]) -> bool:
            if len(prefix) == 1:
                return prefix[0] in numpy_random_aliases
            if len(prefix) == 2:
                return prefix[0] in numpy_aliases and prefix[1] == "random"
            return False

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_chain(node.func)
            if chain is None:
                if (isinstance(node.func, ast.Name)
                        and node.func.id in default_rng_aliases
                        and not node.args and not node.keywords):
                    yield module.finding(
                        node, self.code,
                        f"unseeded default_rng() — {_GUIDANCE}",
                    )
                continue
            if len(chain) >= 2 and is_numpy_random(chain[:-1]):
                attr = chain[-1]
                if attr == "default_rng" and not node.args and not node.keywords:
                    yield module.finding(
                        node, self.code,
                        f"unseeded np.random.default_rng() — {_GUIDANCE}",
                    )
                elif attr in NUMPY_GLOBAL_DRAWS:
                    yield module.finding(
                        node, self.code,
                        f"np.random.{attr}() draws from numpy's module-level "
                        f"global generator — {_GUIDANCE}",
                    )
            elif (len(chain) == 2 and chain[0] in stdlib_random_aliases
                    and chain[1] in STDLIB_GLOBAL_DRAWS):
                yield module.finding(
                    node, self.code,
                    f"random.{chain[1]}() draws from the stdlib module-level "
                    f"global stream — {_GUIDANCE}",
                )
            elif (len(chain) == 1 and chain[0] in default_rng_aliases
                    and not node.args and not node.keywords):
                yield module.finding(
                    node, self.code,
                    f"unseeded default_rng() — {_GUIDANCE}",
                )
