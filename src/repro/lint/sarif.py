"""SARIF 2.1.0 emission so CI can publish findings as code annotations.

The emitter produces the minimal valid document: ``version``, one run with
``tool.driver`` (name, version, rule metadata) and one ``result`` per
finding carrying ``ruleId``, ``level``, ``message.text``, and a physical
location with a 1-based ``startLine``/``startColumn``.  GitHub's SARIF
upload consumes exactly these fields.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.lint.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def sarif_document(findings: Sequence[Finding]) -> dict[str, Any]:
    """The SARIF document for ``findings`` as a plain dict."""
    from repro.lint.framework import RULESET_VERSION, registered_rules

    registry = registered_rules()
    used_codes = sorted({finding.code for finding in findings} | set(registry))
    rules: list[dict[str, Any]] = []
    for code in used_codes:
        rule_cls = registry.get(code)
        description = (rule_cls.description if rule_cls is not None
                       else "file failed to parse")
        rules.append({
            "id": code,
            "name": rule_cls.name if rule_cls is not None else "parse-error",
            "shortDescription": {"text": description},
        })
    results = [
        {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": RULESET_VERSION,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The SARIF document for ``findings``, serialized."""
    return json.dumps(sarif_document(findings), indent=2)
