"""The dataflow engine: a fact lattice over the project call graph.

Facts are small string tags attached to values as they flow through the
mini-IR extracted by :mod:`repro.lint.project`:

* ``seed.ok`` — seed material derived through the sanctioned entry points
  (``spawn_seed_streams`` / ``resolve_rng`` / ``RandomSource`` /
  ``spawn_children``, or anything computed *from* such a value);
* ``seed.adhoc`` — a ``numpy.random`` ``Generator``/``SeedSequence`` built
  from raw entropy at the call site (``default_rng(12345)``,
  ``SeedSequence(...)``) — the provenance RL701 rejects at sampler sinks;
* ``memmap`` — values rooted in ``np.memmap``/``load_sketch`` whose pages
  are file-backed; RL703 flags materializing operations on them;
* ``inst:<class-qualname>`` — instances of project classes, which lets the
  engine resolve ``obj.method(...)`` calls to indexed methods;
* ``p:<i>`` — a *symbolic* reference to the enclosing function's ``i``-th
  parameter.  Summaries are polymorphic in their inputs: the caller's facts
  substitute in at each call site.

The engine runs in two phases.  **Summary phase**: every function body is
evaluated with symbolic parameters, to a fixed point across the call graph,
producing for each function its return facts, its call records (resolved
callee + per-argument symbolic facts + line), its full-slice events, and the
global writes already extracted by the indexer.  **Propagation phase**: a
worklist pushes concrete argument facts top-down through call-graph edges,
accumulating per-function parameter facts and a witness edge (which caller
introduced which tag) for diagnostics.  Rules then re-evaluate the recorded
events under the final parameter facts; an event whose facts contain a bad
tag is a finding *at the sink*, even when the tainted value was created in
another function — or another file.

The lattice is a powerset with union join; control flow is flattened, so
everything is an over-approximation biased toward "the value can reach".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.lint.project import FunctionIndex, ProjectIndex, iter_calls

__all__ = [
    "TAG_MEMMAP",
    "TAG_SEED_ADHOC",
    "TAG_SEED_OK",
    "CallRecord",
    "DataflowEngine",
    "SliceEvent",
    "Summary",
]

TAG_SEED_OK = "seed.ok"
TAG_SEED_ADHOC = "seed.adhoc"
TAG_MEMMAP = "memmap"
_INST = "inst:"
_PARAM = "p:"

Facts = frozenset[str]
EMPTY: Facts = frozenset()

#: Ad-hoc generator origins (exact qualified names after import resolution).
ADHOC_SEED_ORIGINS = frozenset({
    "numpy.random.SeedSequence",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
})

#: Sanctioned seed-derivation entry points, matched by basename under the
#: ``repro`` namespace so re-export paths (``repro.utils.spawn_seed_streams``
#: vs ``repro.utils.rng.spawn_seed_streams``) resolve identically.
SANCTIONED_SEED_BASENAMES = frozenset({
    "spawn_seed_streams", "resolve_rng", "RandomSource", "spawn_children",
})

#: Memmap-backed value origins.
MEMMAP_ORIGIN_QUALS = frozenset({"numpy.memmap", "numpy.lib.format.open_memmap"})
MEMMAP_ORIGIN_BASENAMES = frozenset({"load_sketch"})

#: Methods whose results keep their receiver's facts (views, derived seeds).
_TAGS_THROUGH_METHODS = frozenset({TAG_SEED_OK, TAG_SEED_ADHOC, TAG_MEMMAP})


def _is_sanctioned_origin(qual: str) -> bool:
    return (qual.split(".")[-1] in SANCTIONED_SEED_BASENAMES
            and qual.startswith("repro."))


def _is_memmap_origin(qual: str) -> bool:
    if qual in MEMMAP_ORIGIN_QUALS:
        return True
    return (qual.split(".")[-1] in MEMMAP_ORIGIN_BASENAMES
            and qual.startswith("repro."))


@dataclass
class CallRecord:
    """One call site, with symbolic facts relative to the owner's params."""

    owner: str                      # qualname of the enclosing function
    callee: str | None              # resolved qualname of an indexed target
    qual: str | None                # raw qualified name (external ok)
    method_attr: str | None         # ``attr`` for obj.attr(...) calls
    obj_facts: Facts                # receiver facts for method calls
    args: list[Facts]
    kws: dict[str, Facts]
    line: int

    def all_arg_facts(self) -> Facts:
        combined: set[str] = set()
        for facts in self.args:
            combined |= facts
        for facts in self.kws.values():
            combined |= facts
        return frozenset(combined)


@dataclass
class SliceEvent:
    """A full-slice ``x[:]`` over a value, with the value's symbolic facts."""

    owner: str
    facts: Facts
    line: int


@dataclass
class Summary:
    """What one round of evaluation learned about a function."""

    function: FunctionIndex
    ret: Facts = EMPTY
    calls: list[CallRecord] = field(default_factory=list)
    slices: list[SliceEvent] = field(default_factory=list)


class DataflowEngine:
    """Summaries + top-down propagation over a :class:`ProjectIndex`."""

    MAX_SUMMARY_ROUNDS = 8

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.functions = index.functions
        self.function_paths = index.function_paths()
        self.class_methods = index.class_methods()
        self.summaries: dict[str, Summary] = {}
        #: final, concrete per-parameter facts accumulated by propagation
        self.param_facts: dict[str, dict[int, set[str]]] = {}
        #: (function, param index, tag) → the caller that introduced it
        self.witness: dict[tuple[str, int, str], str] = {}
        self._run()

    # -- public API --------------------------------------------------------

    def concrete(self, owner: str, facts: Facts) -> Facts:
        """Substitute ``owner``'s final parameter facts into symbolic facts."""
        resolved: set[str] = set()
        per_param = self.param_facts.get(owner, {})
        for tag in facts:
            if tag.startswith(_PARAM):
                resolved |= per_param.get(int(tag[len(_PARAM):]), set())
            else:
                resolved.add(tag)
        return frozenset(resolved)

    def tag_witness(self, owner: str, facts: Facts, tag: str) -> str | None:
        """The caller that fed ``tag`` into one of ``owner``'s params, if any."""
        for symbolic in facts:
            if not symbolic.startswith(_PARAM):
                continue
            position = int(symbolic[len(_PARAM):])
            if tag in self.param_facts.get(owner, {}).get(position, set()):
                return self.witness.get((owner, position, tag))
        return None

    def call_edges(self) -> dict[str, set[str]]:
        """Caller qualname → resolved indexed callee qualnames."""
        edges: dict[str, set[str]] = {}
        for qualname, summary in self.summaries.items():
            targets = {record.callee for record in summary.calls
                       if record.callee is not None}
            edges[qualname] = {t for t in targets if t is not None}
        return edges

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str]:
        """BFS over call edges: reachable function → its entry root."""
        edges = self.call_edges()
        origin: dict[str, str] = {}
        queue: list[str] = []
        for root in roots:
            if root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop()
            for callee in sorted(edges.get(current, ())):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin

    # -- summary phase -----------------------------------------------------

    def _run(self) -> None:
        for qualname, function in self.functions.items():
            self.summaries[qualname] = Summary(function=function)
        for _ in range(self.MAX_SUMMARY_ROUNDS):
            changed = False
            for qualname, function in self.functions.items():
                summary = self._evaluate(function)
                if summary.ret != self.summaries[qualname].ret:
                    changed = True
                self.summaries[qualname] = summary
            if not changed:
                break
        self._propagate()

    def _initial_env(self, function: FunctionIndex) -> dict[str, set[str]]:
        env: dict[str, set[str]] = {}
        for position, name in enumerate(function.params):
            tags = {f"{_PARAM}{position}"}
            if position == 0 and function.is_method and name in ("self", "cls"):
                tags.add(f"{_INST}{function.cls}")
            env[name] = tags
        return env

    def _evaluate(self, function: FunctionIndex) -> Summary:
        summary = Summary(function=function)
        env = self._initial_env(function)
        # Two passes give loop-carried assignments a chance to stabilise.
        for final in (False, True):
            if final:
                summary.calls = []
                summary.slices = []
            ret: set[str] = set()
            for op in function.ops:
                kind = op["o"]
                if kind == "assign":
                    facts = self._eval(op["e"], env, function, summary)
                    existing = env.setdefault(op["t"], set())
                    existing |= facts
                elif kind == "expr":
                    self._eval(op["e"], env, function, summary)
                elif kind == "ret":
                    ret |= self._eval(op["e"], env, function, summary)
            summary.ret = frozenset(ret)
        return summary

    def _eval(self, expr: dict[str, Any], env: dict[str, set[str]],
              function: FunctionIndex, summary: Summary) -> set[str]:
        kind = expr.get("k")
        if kind == "name":
            return set(env.get(str(expr["id"]), set()))
        if kind == "const" or kind == "qualref":
            return set()
        if kind == "attr":
            return self._eval(expr["obj"], env, function, summary)
        if kind == "sub":
            facts = self._eval(expr["obj"], env, function, summary)
            if expr.get("full"):
                summary.slices.append(SliceEvent(
                    owner=function.qualname, facts=frozenset(facts),
                    line=int(expr["line"])))
            return facts
        if kind == "multi":
            combined: set[str] = set()
            for item in expr["items"]:
                combined |= self._eval(item, env, function, summary)
            return combined
        if kind == "call":
            return self._eval_call(expr, env, function, summary)
        return set()

    def _eval_call(self, expr: dict[str, Any], env: dict[str, set[str]],
                   function: FunctionIndex, summary: Summary) -> set[str]:
        fn = expr["fn"]
        arg_facts = [frozenset(self._eval(arg, env, function, summary))
                     for arg in expr["args"]]
        kw_facts = {name: frozenset(self._eval(value, env, function, summary))
                    for name, value in expr["kw"].items()}

        qual: str | None = None
        method_attr: str | None = None
        obj_facts: Facts = EMPTY
        callee: str | None = None

        if fn.get("k") == "qual":
            qual = str(fn["q"])
            if qual in self.functions:
                callee = qual
            elif qual in self.class_methods:
                init = f"{qual}.__init__"
                if init in self.functions:
                    # Constructor call: facts flow into ``__init__``.
                    callee = init
                    method_attr = "__init__"
                    obj_facts = frozenset({f"{_INST}{qual}"})
        elif fn.get("k") == "method":
            method_attr = str(fn["attr"])
            obj_facts = frozenset(self._eval(fn["obj"], env, function, summary))
            for tag in obj_facts:
                if tag.startswith(_INST):
                    cls_qual = tag[len(_INST):]
                    if method_attr in self.class_methods.get(cls_qual, ()):
                        callee = f"{cls_qual}.{method_attr}"
                        break

        summary.calls.append(CallRecord(
            owner=function.qualname, callee=callee, qual=qual,
            method_attr=method_attr, obj_facts=obj_facts,
            args=arg_facts, kws=kw_facts, line=int(expr["line"])))

        return self._call_result(qual, callee, method_attr, obj_facts,
                                 arg_facts, kw_facts)

    def _call_result(self, qual: str | None, callee: str | None,
                     method_attr: str | None, obj_facts: Facts,
                     arg_facts: list[Facts], kw_facts: dict[str, Facts]) -> set[str]:
        combined: set[str] = set()
        for facts in arg_facts:
            combined |= facts
        for facts in kw_facts.values():
            combined |= facts

        if qual is not None:
            if _is_sanctioned_origin(qual):
                result = {TAG_SEED_OK}
                if qual in self.class_methods:
                    result.add(f"{_INST}{qual}")
                return result
            if qual in ADHOC_SEED_ORIGINS:
                if TAG_SEED_OK in combined:
                    return {TAG_SEED_OK}
                return {TAG_SEED_ADHOC}
            if _is_memmap_origin(qual):
                return {TAG_MEMMAP}
            if qual in self.class_methods:
                return {f"{_INST}{qual}"}  # constructor of an indexed class

        if callee is not None:
            # Substitute call-site facts into the callee's symbolic return.
            target = self.summaries[callee].function
            mapping = self._bind_args(target, method_attr is not None,
                                      obj_facts, arg_facts, kw_facts)
            resolved: set[str] = set()
            for tag in self.summaries[callee].ret:
                if tag.startswith(_PARAM):
                    resolved |= mapping.get(int(tag[len(_PARAM):]), set())
                else:
                    resolved.add(tag)
            return resolved

        if method_attr is not None:
            # Unresolved method call: views/derived values keep the
            # receiver's interesting tags (e.g. ``source.spawn()``,
            # ``mmap_arr.reshape(...)``).
            return set(obj_facts & _TAGS_THROUGH_METHODS)
        return set()

    @staticmethod
    def _bind_args(target: FunctionIndex, is_method_call: bool, obj_facts: Facts,
                   arg_facts: list[Facts], kw_facts: dict[str, Facts]
                   ) -> dict[int, set[str]]:
        """Map the callee's parameter positions to call-site facts."""
        mapping: dict[int, set[str]] = {}
        offset = 0
        if is_method_call and target.is_method:
            mapping[0] = set(obj_facts)
            offset = 1
        for position, facts in enumerate(arg_facts):
            mapping[position + offset] = set(facts)
        for name, facts in kw_facts.items():
            if name in target.params:
                mapping[target.params.index(name)] = set(facts)
        return mapping

    # -- propagation phase -------------------------------------------------

    _INTERESTING = (TAG_SEED_OK, TAG_SEED_ADHOC, TAG_MEMMAP)

    def _propagate(self) -> None:
        for qualname in self.functions:
            self.param_facts[qualname] = {}
        pending = list(self.functions)
        rounds = 0
        while pending and rounds < 100_000:
            rounds += 1
            owner = pending.pop()
            for record in self.summaries[owner].calls:
                if record.callee is None:
                    continue
                target = self.summaries[record.callee].function
                mapping = self._bind_args(
                    target, record.method_attr is not None,
                    self.concrete(owner, record.obj_facts),
                    [self.concrete(owner, facts) for facts in record.args],
                    {name: self.concrete(owner, facts)
                     for name, facts in record.kws.items()})
                slot = self.param_facts[record.callee]
                changed = False
                for position, facts in mapping.items():
                    interesting = {tag for tag in facts
                                   if tag in self._INTERESTING
                                   or tag.startswith(_INST)}
                    if not interesting:
                        continue
                    existing = slot.setdefault(position, set())
                    new_tags = interesting - existing
                    if new_tags:
                        existing |= new_tags
                        changed = True
                        for tag in new_tags:
                            self.witness.setdefault(
                                (record.callee, position, tag), owner)
                if changed and record.callee not in pending:
                    pending.append(record.callee)
