"""The project pass: cross-module symbol table, call graph, and mini-IR.

Per-file AST rules (RL1xx–RL6xx) see one module at a time; the invariants the
RL7xx family polices — seed provenance, shared-state races, memmap discipline
— are *interprocedural*: the fact is created in one function (often one file)
and violated in another.  This module extracts, from each parsed file, a
:class:`ModuleIndex`: imports resolved to qualified dotted names, every
function/method definition indexed under its qualified name, module-level
state catalogued, and each function body lowered to a small JSON-serializable
IR of assignments, calls (with argument binding), returns, and global writes.

A :class:`ProjectIndex` is the union of module indexes for one lint run.  It
is the substrate both for the dataflow engine (:mod:`repro.lint.dataflow`)
and for the result cache: because a :class:`ModuleIndex` round-trips through
plain JSON, warm runs rebuild the project index from cached per-file entries
without re-parsing unchanged sources.

The IR is deliberately lossy — control flow is flattened (every branch's
facts merge), containers union their elements, and unknown constructs lower
to :data:`OTHER` — because the RL7xx rules need an over-approximation of
where values *can* flow, not an exact semantics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.lint.framework import ParsedModule

__all__ = [
    "FunctionIndex",
    "ModuleIndex",
    "ProjectIndex",
    "index_module",
    "module_name_for",
]

#: Mutating container/object methods that count as a *write* when invoked on
#: a module-level name (``_CACHE.append(x)`` mutates process-global state
#: exactly like ``_CACHE[k] = x`` does).
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft",
})

#: Module-level value shapes that are immutable — assignments of these are
#: constants, not shared mutable state.
_IMMUTABLE_CALLS = frozenset({"frozenset", "tuple", "re.compile"})


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a ``src``-layout path, or ``""`` outside it.

    ``src/repro/sketch/index.py`` → ``repro.sketch.index``;
    ``src/repro/sketch/__init__.py`` → ``repro.sketch``.
    """
    if not rel_path.startswith("src/") or not rel_path.endswith(".py"):
        return ""
    parts = rel_path[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# Expression lowering.  EXPR nodes are plain dicts (JSON-serializable):
#   {"k": "name", "id": str}
#   {"k": "const"}
#   {"k": "attr", "obj": EXPR, "attr": str}
#   {"k": "sub", "obj": EXPR, "full": bool, "line": int}
#   {"k": "multi", "items": [EXPR, ...]}
#   {"k": "call", "fn": FNREF, "args": [EXPR, ...], "kw": {str: EXPR},
#    "line": int}
# FNREF:
#   {"k": "qual", "q": str}          -- resolved dotted target
#   {"k": "method", "obj": EXPR, "attr": str}
#   {"k": "unknown"}
# ---------------------------------------------------------------------------

OTHER: dict[str, Any] = {"k": "const"}


@dataclass
class FunctionIndex:
    """One function or method: its signature and lowered body."""

    qualname: str
    name: str
    line: int
    params: list[str]
    ops: list[dict[str, Any]]
    is_method: bool = False
    cls: str = ""
    is_async: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname, "name": self.name, "line": self.line,
            "params": self.params, "ops": self.ops,
            "is_method": self.is_method, "cls": self.cls,
            "is_async": self.is_async,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FunctionIndex":
        return cls(
            qualname=str(payload["qualname"]), name=str(payload["name"]),
            line=int(payload["line"]), params=list(payload["params"]),
            ops=list(payload["ops"]), is_method=bool(payload["is_method"]),
            cls=str(payload["cls"]), is_async=bool(payload.get("is_async", False)),
        )


@dataclass
class ModuleIndex:
    """Everything the project pass knows about one source file."""

    rel_path: str
    module: str
    imports: dict[str, str]
    #: module-level assigned names considered shared mutable state → def line
    mutable_globals: dict[str, int]
    functions: dict[str, FunctionIndex]
    #: class qualname → method names defined on it
    classes: dict[str, list[str]]
    #: line → rule codes disabled by an inline ``# repro-lint: disable=``
    #: comment; carried in the index so project-rule findings stay
    #: suppressible on cache-warm runs that never re-read the source.
    suppressions: dict[int, list[str]] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        return code in self.suppressions.get(line, [])

    def as_dict(self) -> dict[str, Any]:
        return {
            "rel_path": self.rel_path, "module": self.module,
            "imports": self.imports, "mutable_globals": self.mutable_globals,
            "functions": {q: f.as_dict() for q, f in self.functions.items()},
            "classes": self.classes,
            "suppressions": {str(k): v for k, v in self.suppressions.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleIndex":
        return cls(
            rel_path=str(payload["rel_path"]), module=str(payload["module"]),
            imports=dict(payload["imports"]),
            mutable_globals={k: int(v) for k, v in payload["mutable_globals"].items()},
            functions={q: FunctionIndex.from_dict(f)
                       for q, f in payload["functions"].items()},
            classes={k: list(v) for k, v in payload["classes"].items()},
            suppressions={int(k): list(v)
                          for k, v in payload.get("suppressions", {}).items()},
        )


@dataclass
class ProjectIndex:
    """The union of module indexes for one lint invocation."""

    modules: dict[str, ModuleIndex] = field(default_factory=dict)

    def add(self, index: ModuleIndex) -> None:
        self.modules[index.rel_path] = index

    @property
    def functions(self) -> dict[str, FunctionIndex]:
        table: dict[str, FunctionIndex] = {}
        for module in self.modules.values():
            table.update(module.functions)
        return table

    def function_paths(self) -> dict[str, str]:
        """Function qualname → rel_path of its defining file."""
        table: dict[str, str] = {}
        for module in self.modules.values():
            for qualname in module.functions:
                table[qualname] = module.rel_path
        return table

    def class_methods(self) -> dict[str, list[str]]:
        table: dict[str, list[str]] = {}
        for module in self.modules.values():
            table.update(module.classes)
        return table


class _Lowerer:
    """Lowers one module's AST into a :class:`ModuleIndex`."""

    def __init__(self, module: ParsedModule) -> None:
        self.parsed = module
        self.module = module_name_for(module.rel_path)
        self.imports: dict[str, str] = {}
        self.toplevel: dict[str, str] = {}   # local def name → qualname
        self.mutable_globals: dict[str, int] = {}
        self.functions: dict[str, FunctionIndex] = {}
        self.classes: dict[str, list[str]] = {}

    # -- imports ----------------------------------------------------------

    def _record_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _resolve_from_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        if not self.module:
            return None
        # ``from .x import y`` in package p.q: level 1 anchors at the parent
        # package for plain modules, at the package itself for __init__.
        parts = self.module.split(".")
        if not self.parsed.rel_path.endswith("__init__.py"):
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[:len(parts) - drop] if drop < len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    # -- name resolution ---------------------------------------------------

    def _dotted(self, node: ast.expr) -> list[str] | None:
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        return parts

    def _resolve_chain(self, chain: list[str], local_names: set[str]) -> str | None:
        head = chain[0]
        if head in local_names:
            return None
        if head in self.imports:
            return ".".join([self.imports[head], *chain[1:]])
        if head in self.toplevel:
            return ".".join([self.toplevel[head], *chain[1:]])
        return None

    # -- expression lowering ----------------------------------------------

    def _lower_expr(self, node: ast.expr, local_names: set[str]) -> dict[str, Any]:
        if isinstance(node, ast.Name):
            qual = self._resolve_chain([node.id], local_names)
            if qual is not None:
                return {"k": "qualref", "q": qual}
            return {"k": "name", "id": node.id}
        if isinstance(node, ast.Constant):
            return OTHER
        if isinstance(node, ast.Attribute):
            chain = self._dotted(node)
            if chain is not None:
                qual = self._resolve_chain(chain, local_names)
                if qual is not None:
                    return {"k": "qualref", "q": qual}
            return {"k": "attr", "obj": self._lower_expr(node.value, local_names),
                    "attr": node.attr}
        if isinstance(node, ast.Subscript):
            full = (isinstance(node.slice, ast.Slice) and node.slice.lower is None
                    and node.slice.upper is None and node.slice.step is None)
            return {"k": "sub", "obj": self._lower_expr(node.value, local_names),
                    "full": full, "line": node.lineno}
        if isinstance(node, ast.Call):
            return self._lower_call(node, local_names)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._multi([self._lower_expr(e, local_names) for e in node.elts])
        if isinstance(node, ast.Dict):
            items = [self._lower_expr(v, local_names) for v in node.values if v is not None]
            return self._multi(items)
        if isinstance(node, ast.BoolOp):
            return self._multi([self._lower_expr(v, local_names) for v in node.values])
        if isinstance(node, ast.BinOp):
            return self._multi([self._lower_expr(node.left, local_names),
                                self._lower_expr(node.right, local_names)])
        if isinstance(node, ast.UnaryOp):
            return self._lower_expr(node.operand, local_names)
        if isinstance(node, ast.IfExp):
            return self._multi([self._lower_expr(node.body, local_names),
                                self._lower_expr(node.orelse, local_names)])
        if isinstance(node, ast.Starred):
            return self._lower_expr(node.value, local_names)
        if isinstance(node, ast.Await):
            return self._lower_expr(node.value, local_names)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            parts = [self._lower_expr(node.elt, local_names)]
            parts += [self._lower_expr(gen.iter, local_names) for gen in node.generators]
            return self._multi(parts)
        if isinstance(node, ast.DictComp):
            parts = [self._lower_expr(node.value, local_names)]
            parts += [self._lower_expr(gen.iter, local_names) for gen in node.generators]
            return self._multi(parts)
        if isinstance(node, ast.NamedExpr):
            return self._lower_expr(node.value, local_names)
        return OTHER

    def _multi(self, items: list[dict[str, Any]]) -> dict[str, Any]:
        meaningful = [item for item in items if item.get("k") != "const"]
        if not meaningful:
            return OTHER
        if len(meaningful) == 1:
            return meaningful[0]
        return {"k": "multi", "items": meaningful}

    def _lower_call(self, node: ast.Call, local_names: set[str]) -> dict[str, Any]:
        fn: dict[str, Any]
        chain = self._dotted(node.func)
        qual = self._resolve_chain(chain, local_names) if chain else None
        if qual is not None:
            fn = {"k": "qual", "q": qual}
        elif isinstance(node.func, ast.Attribute):
            fn = {"k": "method",
                  "obj": self._lower_expr(node.func.value, local_names),
                  "attr": node.func.attr}
        elif isinstance(node.func, ast.Name):
            fn = {"k": "qual", "q": node.func.id}  # builtin or local callable
        else:
            fn = {"k": "unknown"}
        args = [self._lower_expr(arg, local_names) for arg in node.args]
        kw = {kwarg.arg or "**": self._lower_expr(kwarg.value, local_names)
              for kwarg in node.keywords}
        return {"k": "call", "fn": fn, "args": args, "kw": kw, "line": node.lineno}

    # -- statement lowering ------------------------------------------------

    def _lower_body(self, body: list[ast.stmt], local_names: set[str],
                    declared_global: set[str], ops: list[dict[str, Any]]) -> None:
        for stmt in body:
            self._lower_stmt(stmt, local_names, declared_global, ops)

    def _assign_target(self, target: ast.expr, value: dict[str, Any], line: int,
                       local_names: set[str], declared_global: set[str],
                       ops: list[dict[str, Any]]) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared_global and target.id in self.mutable_globals:
                ops.append({"o": "gwrite", "name": target.id, "how": "assign",
                            "line": line})
            local_names.add(target.id)
            ops.append({"o": "assign", "t": target.id, "e": value, "line": line})
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, value, line, local_names,
                                    declared_global, ops)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if (isinstance(base, ast.Name) and base.id not in local_names
                    and base.id in self.mutable_globals):
                how = "attr" if isinstance(target, ast.Attribute) else "subscript"
                ops.append({"o": "gwrite", "name": base.id, "how": how, "line": line})
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, value, line, local_names,
                                declared_global, ops)

    def _lower_stmt(self, stmt: ast.stmt, local_names: set[str],
                    declared_global: set[str], ops: list[dict[str, Any]]) -> None:
        if isinstance(stmt, ast.Global):
            declared_global.update(stmt.names)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = stmt.value
            lowered = (self._lower_expr(value, local_names)
                       if value is not None else OTHER)
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                lowered = self._multi([lowered,
                                       {"k": "name", "id": stmt.target.id}])
            for target in targets:
                self._assign_target(target, lowered, stmt.lineno, local_names,
                                    declared_global, ops)
        elif isinstance(stmt, ast.Expr):
            lowered = self._lower_expr(stmt.value, local_names)
            if lowered.get("k") != "const":
                ops.append({"o": "expr", "e": lowered, "line": stmt.lineno})
            if isinstance(stmt.value, ast.Call):
                self._maybe_mutator_gwrite(stmt.value, local_names, ops)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                ops.append({"o": "ret",
                            "e": self._lower_expr(stmt.value, local_names),
                            "line": stmt.lineno})
        elif isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            iter_expr = self._lower_expr(stmt.iter, local_names)
            self._assign_target(stmt.target, iter_expr, stmt.lineno, local_names,
                                declared_global, ops)
            self._lower_body(stmt.body, local_names, declared_global, ops)
            self._lower_body(stmt.orelse, local_names, declared_global, ops)
        elif isinstance(stmt, ast.While):
            self._lower_body(stmt.body, local_names, declared_global, ops)
            self._lower_body(stmt.orelse, local_names, declared_global, ops)
        elif isinstance(stmt, ast.If):
            self._lower_body(stmt.body, local_names, declared_global, ops)
            self._lower_body(stmt.orelse, local_names, declared_global, ops)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = self._lower_expr(item.context_expr, local_names)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, ctx, stmt.lineno,
                                        local_names, declared_global, ops)
                elif ctx.get("k") != "const":
                    ops.append({"o": "expr", "e": ctx, "line": stmt.lineno})
            self._lower_body(stmt.body, local_names, declared_global, ops)
        elif isinstance(stmt, ast.Try):
            self._lower_body(stmt.body, local_names, declared_global, ops)
            for handler in stmt.handlers:
                self._lower_body(handler.body, local_names, declared_global, ops)
            self._lower_body(stmt.orelse, local_names, declared_global, ops)
            self._lower_body(stmt.finalbody, local_names, declared_global, ops)
        elif isinstance(stmt, ast.Match):
            for case in stmt.cases:
                self._lower_body(case.body, local_names, declared_global, ops)
        # Nested defs/classes, raise, assert, pass, del: outside the IR.

    def _maybe_mutator_gwrite(self, call: ast.Call, local_names: set[str],
                              ops: list[dict[str, Any]]) -> None:
        """``GLOBAL.append(x)`` and friends count as global writes."""
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return
        base = func.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if (isinstance(base, ast.Name) and base.id not in local_names
                and base.id in self.mutable_globals):
            ops.append({"o": "gwrite", "name": base.id,
                        "how": f"call:{func.attr}", "line": call.lineno})

    # -- definitions -------------------------------------------------------

    def _is_mutable_value(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            chain = self._dotted(node.func)
            if chain is None:
                return True
            dotted = ".".join(chain)
            if dotted in _IMMUTABLE_CALLS or chain[-1] in ("frozenset", "tuple",
                                                           "compile"):
                return False
            return True
        return False

    def _record_toplevel(self, tree: ast.Module) -> None:
        prefix = self.module or self.parsed.rel_path
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.toplevel[stmt.name] = f"{prefix}.{stmt.name}"
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and self._is_mutable_value(stmt.value):
                        self.mutable_globals[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if self._is_mutable_value(stmt.value):
                    self.mutable_globals[stmt.target.id] = stmt.lineno

    def _index_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                        qualname: str, cls: str = "") -> FunctionIndex:
        arg_nodes = [*node.args.posonlyargs, *node.args.args]
        params = [arg.arg for arg in arg_nodes]
        if node.args.vararg is not None:
            params.append(node.args.vararg.arg)
        params.extend(arg.arg for arg in node.args.kwonlyargs)
        if node.args.kwarg is not None:
            params.append(node.args.kwarg.arg)
        local_names = set(params)
        declared_global: set[str] = set()
        ops: list[dict[str, Any]] = []
        self._lower_body(node.body, local_names, declared_global, ops)
        return FunctionIndex(qualname=qualname, name=node.name, line=node.lineno,
                             params=params, ops=ops, is_method=bool(cls), cls=cls,
                             is_async=isinstance(node, ast.AsyncFunctionDef))

    def run(self) -> ModuleIndex:
        tree = self.parsed.tree
        self._record_imports(tree)
        self._record_toplevel(tree)
        prefix = self.module or self.parsed.rel_path

        module_ops: list[dict[str, Any]] = []
        module_locals: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{stmt.name}"
                self.functions[qualname] = self._index_function(stmt, qualname)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{prefix}.{stmt.name}"
                methods: list[str] = []
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{cls_qual}.{member.name}"
                        self.functions[method_qual] = self._index_function(
                            member, method_qual, cls=cls_qual)
                        methods.append(member.name)
                self.classes[cls_qual] = methods
            else:
                self._lower_stmt(stmt, module_locals, set(), module_ops)
        if module_ops:
            self.functions[f"{prefix}.<module>"] = FunctionIndex(
                qualname=f"{prefix}.<module>", name="<module>", line=1,
                params=[], ops=module_ops)

        return ModuleIndex(
            rel_path=self.parsed.rel_path, module=self.module,
            imports=self.imports, mutable_globals=self.mutable_globals,
            functions=self.functions, classes=self.classes,
            suppressions=self.parsed.suppression_table(),
        )


def index_module(module: ParsedModule) -> ModuleIndex:
    """Lower one parsed module into its :class:`ModuleIndex`."""
    return _Lowerer(module).run()


def iter_calls(expr: dict[str, Any]) -> Iterator[dict[str, Any]]:
    """Every call node inside a lowered expression (depth-first)."""
    kind = expr.get("k")
    if kind == "call":
        yield expr
        for arg in expr["args"]:
            yield from iter_calls(arg)
        for value in expr["kw"].values():
            yield from iter_calls(value)
        fn = expr["fn"]
        if fn.get("k") == "method":
            yield from iter_calls(fn["obj"])
    elif kind in ("attr", "sub"):
        yield from iter_calls(expr["obj"])
    elif kind == "multi":
        for item in expr["items"]:
            yield from iter_calls(item)
