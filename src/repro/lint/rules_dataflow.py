"""RL7xx — interprocedural dataflow rules over the project call graph.

These rules consume the :class:`~repro.lint.dataflow.DataflowEngine` built
from every indexed module under ``src/repro``.  Unlike the per-file RL1xx–
RL6xx families, a fact here is typically *created* in one function (often
one file) and *violated* in another: an ad-hoc ``default_rng`` built in a
helper and handed to a sampler three call frames later, a module global
mutated by a utility that a worker entry point happens to reach, a memmap
loaded in ``repro.sketch.persistence`` and materialized by a caller.

* **RL701** — seed provenance: ``Generator``/``SeedSequence`` values reaching
  a sampler call must trace to the sanctioned derivation entry points
  (``spawn_seed_streams`` / ``resolve_rng`` / ``RandomSource`` /
  ``spawn_children``), the invariant that keeps RR-set draws byte-identical
  for any worker count (Tang et al. §5's estimator assumes exchangeable,
  reproducible draws).
* **RL702** — shared-state races: module-level mutable state written from a
  function reachable from a worker / ``ParallelSampler`` / async entry
  point, unless the write goes through the sanctioned process-global
  installers in ``repro.obs.runtime`` / ``repro.faults.injection``.
* **RL703** — memmap discipline: full-copy operations (``np.asarray``,
  ``.copy()``, ``.tolist()``, ``.astype()``, ``x[:]``) applied to values
  whose provenance includes ``load_sketch`` / ``np.memmap`` — each one
  silently pages an out-of-core sketch into RAM.

Finding messages carry qualified names, never line numbers, so baseline
fingerprints survive unrelated edits that shift lines.  Suppress a
legitimate site with ``# repro-lint: disable=RL70x`` on the flagged line;
suppressions are honoured even on cache-warm runs (they travel inside the
module index).
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.lint.dataflow import (
    TAG_MEMMAP,
    TAG_SEED_ADHOC,
    CallRecord,
    DataflowEngine,
)
from repro.lint.findings import Finding
from repro.lint.framework import ProjectContext, ProjectRule, register_rule

#: Method/function basenames treated as sampler sinks for RL701.
SAMPLER_SINKS = frozenset({"sample", "sample_batch"})

#: Modules whose functions are the sanctioned process-global installers.
SANCTIONED_WRITER_MODULES = frozenset({
    "repro.obs.runtime",
    "repro.faults.injection",
})

#: Individual functions allowed to write process-global state: pool
#: initializers run once per worker before any task executes.
SANCTIONED_WRITER_FUNCS = frozenset({
    "repro.parallel.worker.init_worker",
})

#: Call targets that materialize their array argument (RL703).
MATERIALIZING_QUALS = frozenset({
    "numpy.asarray", "numpy.array", "numpy.ascontiguousarray", "numpy.copy",
    "list",
})

#: Methods that materialize their receiver (RL703).
MATERIALIZING_METHODS = frozenset({"copy", "tolist", "astype"})


class _DataflowRule(ProjectRule):
    """Shared plumbing: library scope + finding construction."""

    index_paths: ClassVar[tuple[str, ...]] = ("src/repro/",)

    @staticmethod
    def _in_scope(engine: DataflowEngine, qualname: str) -> bool:
        path = engine.function_paths.get(qualname, "")
        return path.startswith("src/repro/")

    @staticmethod
    def _finding(engine: DataflowEngine, owner: str, line: int,
                 code: str, message: str) -> Finding:
        return Finding(path=engine.function_paths[owner], line=line, col=1,
                       code=code, message=message)


def _sink_label(record: CallRecord) -> str:
    if record.method_attr is not None:
        return f".{record.method_attr}()"
    if record.qual is not None:
        return f"{record.qual.split('.')[-1]}()"
    return "call"


@register_rule
class AdHocSeedReachesSampler(_DataflowRule):
    """RL701: sampler inputs must carry sanctioned seed provenance."""

    code = "RL701"
    name = "seed-provenance"
    description = ("Generator/SeedSequence values reaching a sampler call "
                   "must derive from spawn_seed_streams()/ExecutionPolicy "
                   "seed material")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        engine = project.dataflow()
        for owner, summary in sorted(engine.summaries.items()):
            if not self._in_scope(engine, owner):
                continue
            for record in summary.calls:
                name = (record.method_attr
                        or (record.qual or "").split(".")[-1])
                if name not in SAMPLER_SINKS:
                    continue
                symbolic = record.all_arg_facts()
                if TAG_SEED_ADHOC not in engine.concrete(owner, symbolic):
                    continue
                message = (
                    f"sampler call `{_sink_label(record)}` in `{owner}` "
                    "receives ad-hoc numpy seed material "
                    "(default_rng/SeedSequence built from raw entropy); "
                    "derive generators via spawn_seed_streams()/"
                    "ExecutionPolicy so RR-set draws stay byte-identical "
                    "across worker counts"
                )
                witness = engine.tag_witness(owner, symbolic, TAG_SEED_ADHOC)
                if witness is not None:
                    message += f"; the ad-hoc value flows in from `{witness}`"
                yield self._finding(engine, owner, record.line, self.code, message)


@register_rule
class SharedStateWriteFromConcurrentPath(_DataflowRule):
    """RL702: globals written on paths reachable from concurrent entry points."""

    code = "RL702"
    name = "shared-state-race"
    description = ("module-level mutable state must not be written from "
                   "functions reachable from worker/ParallelSampler/async "
                   "entry points except via the sanctioned installers in "
                   "repro.obs.runtime / repro.faults.injection")

    @staticmethod
    def _module_of(project: ProjectContext, engine: DataflowEngine,
                   qualname: str) -> str:
        rel_path = engine.function_paths.get(qualname, "")
        module_index = project.indexes.get(rel_path)
        return module_index.module if module_index is not None else ""

    def _roots(self, project: ProjectContext,
               engine: DataflowEngine) -> list[str]:
        roots: list[str] = []
        for qualname, function in engine.functions.items():
            if function.name == "<module>" or not self._in_scope(engine, qualname):
                continue
            module = self._module_of(project, engine, qualname)
            if (module.endswith(".worker")
                    or ".ParallelSampler." in f"{qualname}."
                    or function.is_async):
                roots.append(qualname)
        return sorted(roots)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        engine = project.dataflow()
        reachable = engine.reachable_from(self._roots(project, engine))
        for qualname in sorted(reachable):
            if not self._in_scope(engine, qualname):
                continue
            if qualname in SANCTIONED_WRITER_FUNCS:
                continue
            if self._module_of(project, engine, qualname) in SANCTIONED_WRITER_MODULES:
                continue
            function = engine.functions[qualname]
            if function.name == "<module>":
                continue
            for op in function.ops:
                if op.get("o") != "gwrite":
                    continue
                root = reachable[qualname]
                via = "" if root == qualname else (
                    f", which is reachable from concurrent entry point `{root}`")
                message = (
                    f"module-level mutable `{op['name']}` is written in "
                    f"`{qualname}`{via}; process-global mutation must go "
                    "through the sanctioned installers in repro.obs.runtime "
                    "/ repro.faults.injection"
                )
                yield self._finding(engine, qualname, int(op["line"]),
                                    self.code, message)


@register_rule
class MemmapMaterialization(_DataflowRule):
    """RL703: full-copy operations on memmap-backed values."""

    code = "RL703"
    name = "memmap-materialization"
    description = ("np.asarray/.copy()/.tolist()/.astype()/x[:] applied to a "
                   "value whose provenance includes load_sketch()/np.memmap "
                   "silently pages the whole sketch into RAM")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        engine = project.dataflow()
        for owner, summary in sorted(engine.summaries.items()):
            if not self._in_scope(engine, owner):
                continue
            for record in summary.calls:
                label: str | None = None
                symbolic = None
                if (record.qual is not None
                        and record.qual in MATERIALIZING_QUALS):
                    label = f"{record.qual.split('.')[-1]}()"
                    if record.qual != "list":
                        label = f"np.{label}"
                    symbolic = record.all_arg_facts()
                elif (record.method_attr in MATERIALIZING_METHODS
                        and record.callee is None):
                    label = f".{record.method_attr}()"
                    symbolic = record.obj_facts
                if label is None or symbolic is None:
                    continue
                if TAG_MEMMAP not in engine.concrete(owner, symbolic):
                    continue
                yield self._memmap_finding(engine, owner, record.line,
                                           label, symbolic)
            for event in summary.slices:
                if TAG_MEMMAP in engine.concrete(owner, event.facts):
                    yield self._memmap_finding(engine, owner, event.line,
                                               "full slice `[:]`", event.facts)

    def _memmap_finding(self, engine: DataflowEngine, owner: str, line: int,
                        label: str, symbolic: frozenset[str]) -> Finding:
        message = (
            f"{label} materializes a memmap-backed value in `{owner}` "
            "(provenance includes load_sketch()/np.memmap); keep "
            "file-backed sketch data lazy or window it explicitly"
        )
        witness = engine.tag_witness(owner, symbolic, TAG_MEMMAP)
        if witness is not None:
            message += f"; the memmap flows in from `{witness}`"
        return self._finding(engine, owner, line, self.code, message)
