"""Findings and baselines — the analyzer's output vocabulary.

A :class:`Finding` is one rule violation pinned to a file and line.  Its
:meth:`~Finding.fingerprint` deliberately omits the line number so a
:class:`Baseline` (the ratchet file for pre-existing violations) survives
unrelated edits that shift code up or down; a suppressed finding only
resurfaces when its file, rule, or message changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable


class LintUsageError(Exception):
    """Bad invocation (unknown path, malformed baseline, unknown rule code).

    The CLI maps this to exit code 2, distinct from exit code 1 (findings).
    """


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used by baseline suppression."""
        return f"{self.path}::{self.code}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class Baseline:
    """A set of accepted-for-now finding fingerprints.

    Generated with ``python -m repro.lint --write-baseline FILE`` and applied
    with ``--baseline FILE``: findings whose fingerprint is recorded are
    suppressed, everything new still fails the gate.  The file is JSON so it
    diffs cleanly and survives hand-editing (delete a line to re-arm it).
    """

    VERSION = 1

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints = frozenset(fingerprints)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(finding.fingerprint() for finding in findings)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintUsageError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintUsageError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "fingerprints" not in payload:
            raise LintUsageError(
                f"baseline {path} must be a JSON object with a 'fingerprints' list"
            )
        version = payload.get("version", cls.VERSION)
        if version != cls.VERSION:
            raise LintUsageError(
                f"baseline {path} has version {version!r}; this linter writes "
                f"version {cls.VERSION} — regenerate with --write-baseline"
            )
        fingerprints = payload["fingerprints"]
        if not isinstance(fingerprints, list) or not all(
            isinstance(item, str) for item in fingerprints
        ):
            raise LintUsageError(f"baseline {path}: 'fingerprints' must be a list of strings")
        return cls(fingerprints)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": self.VERSION,
            "fingerprints": sorted(self.fingerprints),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)

    def filter(self, findings: Iterable[Finding]) -> list[Finding]:
        """The findings not covered by this baseline."""
        return [finding for finding in findings if finding not in self]
