"""repro.lint — AST-based determinism & resource-safety analysis.

A small, project-specific static analyzer enforcing the invariants the rest
of the library established by convention:

=======  ====================  =================================================
code     rule                  invariant
=======  ====================  =================================================
RL000    parse-error           files must parse (reserved; not a rule class)
RL101    rng-discipline        entropy flows through repro.utils.rng or an
                               explicit SeedSequence — no global-stream draws
RL201    resource-lifecycle    pool/shared-memory owners are closed or returned
RL301    exception-policy      broad excepts re-raise, translate, or use the
                               caught exception
RL401    policy-kwarg-drift    public entry points take policy=, not bare
                               engine=/jobs=/trace_edges= keywords
RL402    deprecation-hygiene   DEPRECATED-sentinel shims emit the warning
RL501    wire-schema-sync      ops.py ↔ golden_requests.jsonl ↔ api_surface.txt
RL601    timing-discipline     phase timing flows through repro.obs
                               (trace()/now()) — no raw perf_counter outside it
RL701    seed-provenance       Generators/SeedSequences reaching sampler calls
                               derive from spawn_seed_streams()/ExecutionPolicy
                               seed material (interprocedural)
RL702    shared-state-race     module globals are not written from paths
                               reachable from worker/ParallelSampler/async
                               entry points (interprocedural)
RL703    memmap-discipline     no full-copy ops (asarray/.copy()/[:]/.tolist())
                               on load_sketch()/np.memmap-backed values
                               (interprocedural)
=======  ====================  =================================================

Run it with ``python -m repro.lint [paths...]`` (exit 0 clean / 1 findings /
2 usage error), or programmatically via :func:`lint_paths` /
:func:`lint_source`.  ``--baseline`` suppresses recorded pre-existing
findings; a trailing ``# repro-lint: disable=RLxxx`` comment suppresses a
single line.  The RL7xx family runs on a cross-module call graph built by
:mod:`repro.lint.project` and the fact lattice in :mod:`repro.lint.dataflow`;
per-file results (including the serialized module index) are cached under
``.repro-lint-cache/`` so warm runs only re-analyze changed files, and
``--format sarif`` emits SARIF 2.1.0 for CI annotations.
"""

from repro.lint.findings import Baseline, Finding, LintUsageError
from repro.lint.framework import (
    PARSE_ERROR_CODE,
    FileRule,
    ParsedModule,
    ProjectContext,
    ProjectRule,
    Rule,
    lint_paths,
    lint_source,
    register_rule,
    registered_rules,
    select_rules,
)

# Importing the rule modules registers every rule with the framework.
from repro.lint import rules_dataflow as _rules_dataflow
from repro.lint import rules_exceptions as _rules_exceptions
from repro.lint import rules_policy as _rules_policy
from repro.lint import rules_resources as _rules_resources
from repro.lint import rules_rng as _rules_rng
from repro.lint import rules_schema as _rules_schema
from repro.lint import rules_timing as _rules_timing

__all__ = [
    "PARSE_ERROR_CODE",
    "Baseline",
    "FileRule",
    "Finding",
    "LintUsageError",
    "ParsedModule",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "registered_rules",
    "select_rules",
]

del (_rules_dataflow, _rules_exceptions, _rules_policy, _rules_resources,
     _rules_rng, _rules_schema, _rules_timing)
