"""RL201 — resource lifecycle.

:class:`~repro.parallel.engine.ParallelSampler`,
:class:`~repro.sketch.index.SketchIndex`,
:class:`~repro.api.session.InfluenceSession`,
:class:`~repro.sketch.service.InfluenceService`, and the
``SharedMemoryPack``/``MemmapPack`` transports all own OS resources: worker
pools, shared-memory segments, scratch memmap files.  An instance created
and dropped on the floor leaks those until GC (or forever, for POSIX shared
memory on an unclean exit) — on a serving host that is eventual resource
exhaustion.

The rule flags a construction (``Cls(...)``, ``Cls.build(...)``,
``Cls.load(...)``) unless ownership is syntactically visible:

* it is the context expression of a ``with`` statement;
* it is returned (ownership transfers to the caller — factory pattern);
* it is assigned to a local name that the enclosing function later
  ``.close()``\\ s (the ``try``/``finally`` idiom);
* it is assigned to ``self.<attr>`` inside a class that defines ``close``
  (an owner-that-closes);
* it is assigned to a local name that visibly *escapes* — passed as an
  argument to another call (``service.add_index(index)``) or stored into a
  container or attribute (``self._indexes[key] = index``).  Ownership has
  transferred; the receiving owner is responsible from there.

The rare legitimate exception carries a visible
``# repro-lint: disable=RL201`` on the offending line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import FileRule, ParsedModule, register_rule

#: Classes whose instances own pools / shared memory / file handles.
TRACKED_CLASSES = frozenset({
    "ParallelSampler",
    "SketchIndex",
    "InfluenceSession",
    "InfluenceService",
    "SharedMemoryPack",
    "MemmapPack",
})

#: Alternate constructors that also hand back an owning instance.
_FACTORY_METHODS = frozenset({"build", "load"})


def _constructed_class(call: ast.Call) -> str | None:
    """The tracked class a call constructs, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in TRACKED_CLASSES:
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in TRACKED_CLASSES:
            return func.attr
        if func.attr in _FACTORY_METHODS:
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id in TRACKED_CLASSES:
                return owner.id
            if isinstance(owner, ast.Attribute) and owner.attr in TRACKED_CLASSES:
                return owner.attr
    return None


def _within(node: ast.AST, candidates: list[ast.AST]) -> bool:
    return any(node is c or node in ast.walk(c) for c in candidates)


def _closes_name(scope: ast.AST, name: str) -> bool:
    """True when ``scope`` contains ``name.close`` (call or reference)."""
    for node in ast.walk(scope):
        if (isinstance(node, ast.Attribute) and node.attr == "close"
                and isinstance(node.value, ast.Name) and node.value.id == name):
            return True
    return False


def _escapes_name(scope: ast.AST, name: str) -> bool:
    """True when ``name`` is visibly handed to another owner.

    Either passed as an argument to some call, or stored into a container /
    attribute slot (``obj[key] = name`` / ``obj.attr = name``).  Method calls
    *on* the name (``name.select(...)``) do not count — the instance is still
    held locally and still needs a close.
    """
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Starred):
                    argument = argument.value
                if isinstance(argument, ast.Name) and argument.id == name:
                    return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if (isinstance(value, ast.Name) and value.id == name
                    and any(isinstance(t, (ast.Subscript, ast.Attribute))
                            for t in targets)):
                return True
    return False


def _class_defines_close(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in ("close", "__exit__")
        for stmt in cls.body
    )


@register_rule
class ResourceLifecycleRule(FileRule):
    code = "RL201"
    name = "resource-lifecycle"
    description = ("Pool/shared-memory owners (ParallelSampler, SketchIndex, "
                   "InfluenceSession, InfluenceService, SharedMemoryPack, "
                   "MemmapPack) must be constructed under a with block, a "
                   "close()-ing owner, or returned to the caller.")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            cls_name = _constructed_class(node)
            if cls_name is None:
                continue
            if self._ownership_visible(module, node):
                continue
            yield module.finding(
                node, self.code,
                f"{cls_name} instance created without visible ownership — it "
                f"holds OS resources (worker pool / shared memory); construct "
                f"it in a `with` block, `return` it, or assign it to an owner "
                f"that close()s it",
            )

    def _ownership_visible(self, module: ParsedModule, call: ast.Call) -> bool:
        enclosing_class: ast.ClassDef | None = None
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.Return):
                return True
            if isinstance(ancestor, ast.withitem):
                if _within(call, [ancestor.context_expr]):
                    return True
            if isinstance(ancestor, ast.ClassDef) and enclosing_class is None:
                enclosing_class = ancestor
            if isinstance(ancestor, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
                if self._assignment_owned(module, ancestor, enclosing_class):
                    return True
        return False

    def _assignment_owned(self, module: ParsedModule, assign: ast.AST,
                          enclosing_class: ast.ClassDef | None) -> bool:
        if isinstance(assign, ast.Assign):
            targets = assign.targets
        elif isinstance(assign, ast.AnnAssign):
            targets = [assign.target]
        elif isinstance(assign, ast.NamedExpr):
            targets = [assign.target]
        else:  # pragma: no cover - callers pass assignment nodes only
            return False
        scope = self._enclosing_scope(module, assign)
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    if scope is not None and (_closes_name(scope, leaf.id)
                                              or _escapes_name(scope, leaf.id)):
                        return True
                elif isinstance(leaf, ast.Attribute):
                    value = leaf.value
                    if isinstance(value, ast.Name) and value.id == "self":
                        owner = enclosing_class or self._enclosing_class(module, assign)
                        if owner is not None and _class_defines_close(owner):
                            return True
        return False

    def _enclosing_scope(self, module: ParsedModule, node: ast.AST) -> ast.AST | None:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                return ancestor
        return None

    def _enclosing_class(self, module: ParsedModule, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None
