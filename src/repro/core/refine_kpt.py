"""Algorithm 3 — RefineKPT (Section 4.1, the TIM+ intermediate step).

KPT* often lands far below OPT on real graphs, inflating θ = λ/KPT*.  The
refinement reuses Algorithm 2's final batch of RR sets to greedily pick a
promising seed set ``S'_k``, estimates its spread on θ′ *fresh* RR sets, and
deflates the estimate by ``1 + ε′`` so that ``KPT' ≤ OPT`` holds with
probability ``1 − n^{−ℓ}`` (Lemma 8).  The output ``KPT⁺ = max(KPT', KPT*)``
is a (potentially much) tighter lower bound of OPT — the paper measures a
≥ 3× tightening on NetHEPT (Figure 5) and a matching speed-up (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.policy import DEPRECATED, ExecutionPolicy, resolve_call_policy
from repro.core.parameters import lambda_prime, theta_from_kpt
from repro.obs import runtime as obs
from repro.parallel import jobs_for_engine, maybe_parallel
from repro.rrset.base import RRSampler
from repro.rrset.coverage import greedy_max_coverage
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_ell, check_k, require

__all__ = ["RefineKptResult", "refine_kpt"]


@dataclass
class RefineKptResult:
    """Outcome of Algorithm 3."""

    kpt_plus: float
    kpt_prime: float
    #: The seed set S'_k greedily extracted from Algorithm 2's last batch.
    interim_seeds: list[int]
    #: θ′, the number of fresh RR sets used to estimate E[I(S'_k)].
    num_rr_sets: int
    total_cost: int = 0


#: Vectorised refinement samples θ′ in slabs of this many RR sets so the
#: transient flat batch stays small even when θ′ is large.
_BATCH_SIZE = 8192


def refine_kpt(
    graph,
    k: int,
    kpt_star: float,
    last_iteration_sets,
    sampler: RRSampler,
    epsilon_prime: float,
    ell: float = 1.0,
    rng=None,
    engine=DEPRECATED,
    jobs=DEPRECATED,
    *,
    policy: ExecutionPolicy | None = None,
) -> RefineKptResult:
    """Run Algorithm 3 and return KPT⁺ = max(KPT′, KPT*).

    ``last_iteration_sets`` is Algorithm 2's final batch — either a list of
    :class:`RRSet` or a :class:`~repro.rrset.flat_collection
    .FlatRRCollection` (whichever engine :func:`~repro.core.kpt_estimation
    .estimate_kpt` ran with).  ``policy.engine`` selects how the θ′ fresh RR
    sets are generated and covered: numpy-batched (``"vectorized"``, default)
    or the original scalar loop (``"python"``).  ``policy.jobs`` shards the θ′
    batch across worker processes (``0`` = all cores) with
    worker-count-invariant results; ``None`` keeps the single stream.

    ``engine=`` / ``jobs=`` remain accepted as deprecated aliases and warn.
    """
    resolved, _ = resolve_call_policy(
        "refine_kpt()", policy, engine=engine, jobs=jobs
    )
    run_engine = resolved.engine
    n = graph.n
    require(n >= 2, "refine_kpt needs at least two nodes")
    check_k(k, n)
    check_ell(ell)
    require(kpt_star >= 1.0, "KPT* must be >= 1 (a seed activates itself)")
    require(epsilon_prime > 0.0, "epsilon_prime must be positive")
    require(len(last_iteration_sets) > 0, "need Algorithm 2's last-iteration RR sets")
    require(
        run_engine in ("vectorized", "python"),
        f"engine must be 'vectorized' or 'python'; got {run_engine!r}",
    )

    source = resolve_rng(rng)
    run_jobs = jobs_for_engine(run_engine, resolved.jobs)
    with obs.trace("kpt.refine", k=int(k)):
        # Lines 2-6: greedy max coverage over R' to get the interim seed set.
        # greedy_max_coverage consumes a flat collection directly; lists of
        # RRSet objects are converted to their node tuples first.
        if hasattr(last_iteration_sets, "ptr_array"):
            interim = greedy_max_coverage(last_iteration_sets, n, k)
        else:
            interim = greedy_max_coverage([rr.nodes for rr in last_iteration_sets], n, k)

        # Lines 7-9: θ' fresh RR sets.
        theta_prime = theta_from_kpt(lambda_prime(epsilon_prime, ell, n), kpt_star)
        seed_set = set(interim.seeds)
        covered = 0
        total_cost = 0
        if run_engine == "vectorized":
            sampler, owned_pool = maybe_parallel(sampler, run_jobs)
            try:
                remaining = theta_prime
                while remaining > 0:
                    batch = sampler.sample_random_batch(min(_BATCH_SIZE, remaining), source)
                    total_cost += int(batch.costs_array.sum())
                    covered += batch.coverage_count(seed_set)
                    remaining -= len(batch)
            finally:
                if owned_pool:
                    sampler.close()
        else:
            randrange = source.py.randrange
            for _ in range(theta_prime):
                rr = sampler.sample_rooted(randrange(n), source)
                total_cost += rr.cost
                for node in rr.nodes:
                    if node in seed_set:
                        covered += 1
                        break
        obs.add("kpt.refine_rr_sets", theta_prime)

    # Lines 10-12: deflate the unbiased estimate so KPT' <= OPT w.h.p.
    fraction = covered / theta_prime
    kpt_prime = fraction * n / (1.0 + epsilon_prime)
    return RefineKptResult(
        kpt_plus=max(kpt_prime, kpt_star),
        kpt_prime=kpt_prime,
        interim_seeds=interim.seeds,
        num_rr_sets=theta_prime,
        total_cost=total_cost,
    )
