"""IMM — martingale-based influence maximization (Tang, Shi & Xiao 2015).

The successor to TIM+ this library reproduces alongside the SIGMOD 2014
algorithms: instead of spending a KPT-estimation phase (Algorithm 2) plus a
refinement phase (Algorithm 3) to price θ, IMM binary-searches a lower
bound LB on OPT directly on the RR sketch it is building:

1. **Lower-bound search** — for ``x_i = n / 2^i`` (i = 1, 2, ...), grow the
   sketch to ``θ_i = ⌈λ′ / x_i⌉`` sets, greedily select ``k`` seeds, and
   stop as soon as ``n · F_R(S_i) ≥ (1 + ε′) · x_i``; then
   ``LB = n · F_R(S_i) / (1 + ε′)`` is a certified lower bound on OPT
   (martingale stopping rule, ε′ = √2·ε).
2. **Node selection** — grow the same sketch to ``θ = ⌈λ* / LB⌉`` (the
   martingale-adjusted α/β bound) and select ``k`` seeds on it.

Every RR set sampled during the search is *reused* — both by later search
iterations and by the final selection — which is what makes IMM strictly
cheaper than TIM+ at equal ε: no estimation-only samples are thrown away,
and λ*'s constant (≈ 2) is a fraction of Equation 4's ``8 + 2ε``.

The engine runs entirely through :class:`~repro.sketch.index.SketchIndex`
(warm ``ensure_theta`` extension + incremental lazy-greedy ``select``), so
it inherits the library's substrate invariants unchanged: byte-identical
results for every worker count (``policy.jobs``), live-edge traces for
:mod:`repro.dynamic` repair when ``policy.trace_edges`` is on, and
:mod:`repro.obs` / :mod:`repro.faults` instrumentation at every phase.

Guarantee: ``(1 − 1/e − ε)``-approximate with probability at least
``1 − n^{−ℓ}`` (the internal ℓ absorbs the union bound over the sampling
and selection failure events, as in TIM), in ``O((k + ℓ)(m + n) log n / ε²)``
expected time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.api.policy import ExecutionPolicy, resolve_call_policy
from repro.core.parameters import (
    adjusted_ell_tim,
    apply_theta_cap,
    imm_epsilon_prime,
    imm_lambda_prime,
    imm_lambda_star,
)
from repro.core.results import IMMResult
from repro.diffusion.base import resolve_model
from repro.faults import injection as faults
from repro.obs import runtime as obs
from repro.parallel import jobs_for_engine
from repro.utils.rng import resolve_rng
from repro.utils.timer import PhaseTimer
from repro.utils.validation import check_ell, check_epsilon, check_k, require

if TYPE_CHECKING:
    from repro.graphs.digraph import DiGraph
    from repro.rrset.coverage import CoverageResult
    from repro.sketch.index import SketchIndex

__all__ = ["ImmGrowth", "imm", "imm_ensure"]


@dataclass(frozen=True)
class ImmGrowth:
    """Outcome of one IMM sampling run over a :class:`SketchIndex`.

    ``selection`` is the final greedy answer on the grown sketch;
    ``theta`` is the martingale requirement ⌈λ*/LB⌉ (the sketch holds
    ``max(theta, lower-bound-search size)`` sets — reuse never shrinks it).
    """

    selection: "CoverageResult"
    theta: int
    opt_lower_bound: float
    epsilon_prime: float
    lambda_prime: float
    lambda_star: float
    lb_iterations: int
    theta_capped: bool
    rr_sets_per_phase: dict[str, int]
    phase_seconds: dict[str, float]


def imm_ensure(
    index: "SketchIndex",
    k: int,
    epsilon: float,
    ell_adjusted: float,
    rng: Any = None,
    max_theta: int | None = None,
) -> ImmGrowth:
    """Grow ``index`` the IMM way for budget ``k`` and select on the result.

    The shared engine behind :func:`imm` and
    ``SketchIndex.build(algorithm="imm")``: runs the lower-bound search
    (reusing every RR set the index already holds — warm sketches skip
    straight past the early iterations' θ_i), derives θ = ⌈λ*/LB⌉, extends
    to it, and returns the final selection plus every diagnostic.

    Sampling concurrency follows the index's configured worker pool; all
    extension waves draw from the single resolved ``rng`` stream, so the
    grown sketch is byte-identical for every worker count.

    ``ell_adjusted`` is the union-bound-scaled failure exponent (use
    :func:`~repro.core.parameters.adjusted_ell_tim`); ``epsilon`` is the
    *final* ε — the ε′ = √2·ε split is internal.
    """
    n = index.num_nodes
    require(n >= 2, "IMM needs at least two nodes")
    check_k(k, n)
    epsilon = check_epsilon(epsilon)
    check_ell(ell_adjusted)
    source = resolve_rng(rng)
    timer = PhaseTimer()
    rr_counts: dict[str, int] = {}

    epsilon_prime = imm_epsilon_prime(epsilon)
    lambda_p = imm_lambda_prime(n, k, epsilon_prime, ell_adjusted)
    lambda_s = imm_lambda_star(n, k, epsilon, ell_adjusted)

    lower_bound = 1.0
    iterations = 0
    sets_before_search = index.num_sets
    max_rounds = max(1, math.ceil(math.log2(n)) - 1)
    with timer.phase("lb_search"):
        with obs.trace("imm.lb_search", k=int(k), max_rounds=int(max_rounds)):
            for i in range(1, max_rounds + 1):
                faults.checkpoint("imm.lb_search")
                iterations = i
                x_i = n / (2.0**i)
                theta_i = max(1, math.ceil(lambda_p / x_i))
                with obs.trace("imm.lb_iteration", iteration=i, theta=int(theta_i)):
                    index.ensure_theta(theta_i, rng=source)
                    selection = index.select(k)
                if n * selection.fraction >= (1.0 + epsilon_prime) * x_i:
                    lower_bound = n * selection.fraction / (1.0 + epsilon_prime)
                    break
    rr_counts["lb_search"] = index.num_sets - sets_before_search

    theta = max(1, math.ceil(lambda_s / lower_bound))
    theta, theta_capped = apply_theta_cap(theta, max_theta, "imm()")

    sets_before_selection = index.num_sets
    with timer.phase("node_selection"):
        with obs.trace("imm.node_selection", theta=int(theta)):
            faults.checkpoint("imm.node_selection")
            index.ensure_theta(theta, rng=source)
            selection = index.select(k)
    rr_counts["node_selection"] = index.num_sets - sets_before_selection

    index.record_epsilon(epsilon)
    index.meta["algorithm"] = "imm"
    index.meta["imm_lower_bound"] = lower_bound
    if theta_capped:
        index.meta["theta_capped"] = True
    obs.add("imm.lb_iterations", iterations)
    return ImmGrowth(
        selection=selection,
        theta=theta,
        opt_lower_bound=lower_bound,
        epsilon_prime=epsilon_prime,
        lambda_prime=lambda_p,
        lambda_star=lambda_s,
        lb_iterations=iterations,
        theta_capped=theta_capped,
        rr_sets_per_phase=rr_counts,
        phase_seconds=timer.as_dict(),
    )


def imm(
    graph: "DiGraph",
    k: int,
    epsilon: float | None = None,
    ell: float | None = None,
    model: Any = "IC",
    rng: Any = None,
    max_theta: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
    index: "SketchIndex | None" = None,
) -> IMMResult:
    """Influence maximization via IMM's martingale stopping rule.

    Parameters
    ----------
    graph:
        The social network with model-appropriate edge weights.
    k:
        Seed-set size.
    epsilon:
        Approximation slack; the result is ``(1 − 1/e − ε)``-approximate.
        Defaults to ``policy.epsilon`` (library default ``0.1``).
    ell:
        Failure exponent: success probability at least ``1 − n^{−ℓ}``.
        Defaults to ``policy.ell``.
    model:
        ``"IC"``, ``"LT"``, or a :class:`~repro.diffusion.base.DiffusionModel`
        instance.
    max_theta:
        Optional hard cap on θ.  **Voids the approximation guarantee**
        (``RuntimeWarning`` + ``theta_capped=True`` when it bites); it
        exists so exploratory runs on tiny budgets cannot run away.
    policy:
        The :class:`~repro.api.policy.ExecutionPolicy` governing execution.
        Two policies differing only in ``engine``/``jobs`` return
        byte-identical seed sets for equal seeds.
    index:
        Optional :class:`~repro.sketch.index.SketchIndex` to run *through*:
        RR sets it already holds feed the lower-bound search directly and
        only the shortfall is sampled; the grown sketch stays on the index
        for later queries.  Without one, IMM builds (and closes) a private
        index over a fresh :class:`FlatRRCollection`.

    Returns
    -------
    IMMResult
        Seeds plus the martingale diagnostics: LB, λ′, λ*, θ, lower-bound
        iterations, per-phase RR-set counts and wall-clock.
    """
    resolved_policy, index = resolve_call_policy("imm()", policy, index=index)
    epsilon = resolved_policy.epsilon if epsilon is None else epsilon
    ell = resolved_policy.ell if ell is None else ell
    require(graph.n >= 2, "influence maximization needs at least two nodes")
    check_k(k, graph.n)
    epsilon = check_epsilon(epsilon)
    ell = check_ell(ell)
    resolved_model = resolve_model(model)
    resolved_model.validate_graph(graph)
    source = resolve_rng(rng)
    # Two n^{−ℓ} failure events (sampling phase and selection), exactly
    # TIM's union-bound situation — reuse its 2 n^{−ℓ} → n^{−ℓ} scaling.
    ell_adjusted = adjusted_ell_tim(ell, graph.n)
    jobs = jobs_for_engine(resolved_policy.engine, resolved_policy.jobs, stacklevel=2)
    obs.add("imm.runs")

    owned = index is None
    if owned:
        from repro.rrset.flat_collection import FlatRRCollection
        from repro.sketch.index import SketchIndex

        collection = FlatRRCollection(
            graph.n, graph.m, track_traces=resolved_policy.trace_edges
        )
        index = SketchIndex(
            collection, graph=graph, model=resolved_model, jobs=jobs
        )
    else:
        require(index.num_nodes == graph.n,
                "the adopted index serves a different node universe")
        require(index.meta.get("model") == resolved_model.name,
                f"the adopted index was sampled under model "
                f"{index.meta.get('model')!r}, not {resolved_model.name!r}")
    sets_reused = index.num_sets
    try:
        with obs.trace("imm.run", k=int(k), model=resolved_model.name):
            growth = imm_ensure(
                index, k, epsilon, ell_adjusted, rng=source, max_theta=max_theta
            )
    finally:
        if owned:
            index.close()
    selection = growth.selection
    return IMMResult(
        algorithm="IMM",
        model=resolved_model.name,
        seeds=list(selection.seeds),
        k=k,
        runtime_seconds=sum(growth.phase_seconds.values()),
        estimated_spread=graph.n * selection.fraction,
        phase_seconds=dict(growth.phase_seconds),
        extras={
            "engine": resolved_policy.engine,
            "sketch_sets_reused": sets_reused,
            "theta_capped": growth.theta_capped,
        },
        epsilon=epsilon,
        ell=ell,
        ell_adjusted=ell_adjusted,
        epsilon_prime=growth.epsilon_prime,
        opt_lower_bound=growth.opt_lower_bound,
        lambda_prime=growth.lambda_prime,
        lambda_star=growth.lambda_star,
        theta=growth.theta,
        lb_iterations=growth.lb_iterations,
        rr_sets_per_phase=dict(growth.rr_sets_per_phase),
        rr_collection_bytes=index.collection.nbytes(),
        theta_capped=growth.theta_capped,
    )
