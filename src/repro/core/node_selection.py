"""Algorithm 1 — NodeSelection.

Samples a *pre-decided* number θ of independent random RR sets and greedily
solves maximum coverage over them.  Independence (given θ) is exactly what
distinguishes TIM from Borgs et al.'s threshold-coupled RIS and is the
source of the clean Chernoff analysis (Lemma 3 / Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rrset.base import RRSampler
from repro.rrset.collection import RRCollection
from repro.rrset.coverage import greedy_max_coverage, lazy_greedy_max_coverage
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_k, check_positive_int, require

__all__ = ["NodeSelectionResult", "node_selection"]


@dataclass
class NodeSelectionResult:
    """Outcome of Algorithm 1."""

    seeds: list[int]
    coverage_fraction: float
    estimated_spread: float
    num_rr_sets: int
    collection: RRCollection = field(repr=False, default=None)

    def __post_init__(self):
        if self.collection is None:  # pragma: no cover - defensive
            raise ValueError("collection is required")


def node_selection(
    graph,
    k: int,
    theta: int,
    sampler: RRSampler,
    rng=None,
    coverage: str = "exact",
    collection: RRCollection | None = None,
) -> NodeSelectionResult:
    """Run Algorithm 1: sample θ RR sets, greedily cover them with k nodes.

    Parameters
    ----------
    coverage:
        ``"exact"`` (the paper's linear-time greedy) or ``"lazy"`` (the
        CELF-style heap variant; same guarantee, benched in the ablation).
    collection:
        Optional pre-filled :class:`RRCollection` to extend — used by RIS,
        which streams RR sets until a cost budget instead of a count.  When
        given, only ``theta - len(collection)`` new sets are sampled.
    """
    check_k(k, graph.n)
    check_positive_int(theta, "theta")
    require(coverage in ("exact", "lazy"), f"coverage must be 'exact' or 'lazy'; got {coverage!r}")
    source = resolve_rng(rng)
    if collection is None:
        collection = RRCollection(graph.n, graph.m)
    missing = theta - len(collection)
    if missing > 0:
        randrange = source.py.randrange
        n = graph.n
        for _ in range(missing):
            collection.append(sampler.sample_rooted(randrange(n), source))

    solve = greedy_max_coverage if coverage == "exact" else lazy_greedy_max_coverage
    result = solve(collection.sets, graph.n, k)
    fraction = result.fraction
    return NodeSelectionResult(
        seeds=result.seeds,
        coverage_fraction=fraction,
        estimated_spread=graph.n * fraction,
        num_rr_sets=len(collection),
        collection=collection,
    )
