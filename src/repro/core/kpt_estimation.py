"""Algorithm 2 — KptEstimation.

Estimates ``KPT``, the expected spread of a seed set formed by ``k``
in-degree-weighted node draws: a lower bound on OPT that *grows with k*
(Equation 7), which is what makes θ = λ/KPT* small enough to be practical.

The estimator relies on Lemma 5: ``KPT = n · E[κ(R)]`` where
``κ(R) = 1 − (1 − w(R)/m)^k`` over random RR sets.  The adaptive loop doubles
the sample budget per iteration and stops the first time the running mean
clears the ``2^{−i}`` threshold, which (Lemmas 6–7) pins KPT* within
``[KPT/4, OPT]`` with probability ``1 − n^{−ℓ}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import kpt_max_iterations, kpt_samples_per_iteration
from repro.rrset.base import RRSampler, RRSet
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_ell, check_k, require

__all__ = ["KptEstimationResult", "estimate_kpt"]


@dataclass
class KptEstimationResult:
    """Outcome of Algorithm 2."""

    kpt_star: float
    iterations_run: int
    num_rr_sets: int
    #: RR sets generated in the *last* iteration — Algorithm 3's R′.
    last_iteration_sets: list[RRSet] = field(repr=False, default_factory=list)
    #: Σ generation cost over every RR set sampled (for complexity accounting).
    total_cost: int = 0

    @property
    def terminated_early(self) -> bool:
        """True when the threshold test fired before the iteration cap."""
        return self.kpt_star > 1.0


def estimate_kpt(graph, k: int, sampler: RRSampler, ell: float = 1.0, rng=None) -> KptEstimationResult:
    """Run Algorithm 2 and return KPT* with its sampling by-products.

    Parameters mirror the paper: the graph, seed-set size ``k``, the failure
    exponent ``ℓ``, plus the model-specific RR ``sampler`` and an ``rng``.
    """
    n = graph.n
    require(n >= 2, "KPT estimation needs at least two nodes")
    check_k(k, n)
    check_ell(ell)
    m = graph.m
    if m == 0:
        # Edgeless graph: every RR set is a singleton with width 0, so the
        # loop could never clear its threshold; the paper's fallback applies.
        return KptEstimationResult(kpt_star=1.0, iterations_run=0, num_rr_sets=0)

    source = resolve_rng(rng)
    max_iterations = kpt_max_iterations(n)
    total_sets = 0
    total_cost = 0
    last_sets: list[RRSet] = []
    for iteration in range(1, max_iterations + 1):
        count = kpt_samples_per_iteration(n, ell, iteration)
        kappa_sum = 0.0
        current_sets: list[RRSet] = []
        for _ in range(count):
            rr = sampler.sample(source)
            current_sets.append(rr)
            total_cost += rr.cost
            kappa_sum += 1.0 - (1.0 - rr.width / m) ** k
        total_sets += count
        last_sets = current_sets
        if kappa_sum / count > 1.0 / (2.0**iteration):
            kpt_star = n * kappa_sum / (2.0 * count)
            return KptEstimationResult(
                kpt_star=kpt_star,
                iterations_run=iteration,
                num_rr_sets=total_sets,
                last_iteration_sets=last_sets,
                total_cost=total_cost,
            )
    # All iterations fell below threshold: return the smallest possible KPT
    # (a seed always activates itself, so KPT >= 1).
    return KptEstimationResult(
        kpt_star=1.0,
        iterations_run=max_iterations,
        num_rr_sets=total_sets,
        last_iteration_sets=last_sets,
        total_cost=total_cost,
    )
