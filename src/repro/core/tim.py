"""TIM and TIM+ drivers (Sections 3.3 and 4.1).

``tim`` wires the two phases together:

1. **Parameter estimation** — Algorithm 2 yields KPT*; with ``refine=True``
   (TIM+) Algorithm 3 tightens it to KPT⁺.
2. **Node selection** — θ = ⌈λ / KPT⌉ random RR sets (Equations 4–5), then
   greedy maximum coverage.

Guarantee (Theorems 1–3): a ``(1 − 1/e − ε)``-approximation with probability
at least ``1 − n^{−ℓ}`` (the internal ℓ is scaled per Section 3.3 / 4.1 so
the union-bounded failure events still sum below ``n^{−ℓ}``), under any
triggering model, in ``O((k + ℓ)(m + n) log n / ε²)`` expected time.
"""

from __future__ import annotations

from repro.api.policy import DEPRECATED, ExecutionPolicy, resolve_call_policy
from repro.core.kpt_estimation import estimate_kpt
from repro.core.node_selection import node_selection
from repro.core.parameters import (
    adjusted_ell_tim,
    adjusted_ell_tim_plus,
    apply_theta_cap,
    epsilon_prime_default,
    lambda_param,
    theta_from_kpt,
)
from repro.core.refine_kpt import refine_kpt
from repro.core.results import TIMResult
from repro.diffusion.base import resolve_model
from repro.obs import runtime as obs
from repro.parallel import jobs_for_engine, maybe_parallel
from repro.graphs.digraph import DiGraph
from repro.rrset.base import make_rr_sampler
from repro.utils.rng import resolve_rng
from repro.utils.timer import PhaseTimer
from repro.utils.validation import check_ell, check_epsilon, check_k, require

__all__ = ["tim", "tim_plus"]


def tim(
    graph: DiGraph,
    k: int,
    epsilon: float | None = None,
    ell: float | None = None,
    model="IC",
    rng=None,
    refine: bool = False,
    epsilon_prime: float | None = None,
    coverage: str = "exact",
    max_theta: int | None = None,
    engine=DEPRECATED,
    sketch_index=DEPRECATED,
    jobs=DEPRECATED,
    *,
    policy: ExecutionPolicy | None = None,
    index=None,
) -> TIMResult:
    """Two-phase Influence Maximization.

    Parameters
    ----------
    graph:
        The social network with model-appropriate edge weights.
    k:
        Seed-set size.
    epsilon:
        Approximation slack; the result is ``(1 − 1/e − ε)``-approximate.
        Defaults to ``policy.epsilon`` (library default ``0.1``).
    ell:
        Failure exponent: success probability at least ``1 − n^{−ℓ}``.
        Theorem 2 assumes ``ℓ ≥ 1/2``.  Defaults to ``policy.ell``.
    model:
        ``"IC"``, ``"LT"``, or a :class:`~repro.diffusion.base.DiffusionModel`
        instance (e.g. a configured TriggeringModel).
    refine:
        Run Algorithm 3 between the phases — i.e. TIM+ (Section 4.1).
    epsilon_prime:
        Refinement accuracy; defaults to the paper's ``5·∛(ℓε²/(k+ℓ))``.
    coverage:
        Max-coverage implementation: ``"exact"`` or ``"lazy"``.
    max_theta:
        Optional hard cap on θ.  **Voids the approximation guarantee**; it
        exists so exploratory runs on tiny budgets cannot run away.  A
        bitten cap emits a :class:`RuntimeWarning` and is recorded on the
        result (``result.theta_capped`` and, for backward compatibility,
        ``extras["theta_capped"]``).
    policy:
        The :class:`~repro.api.policy.ExecutionPolicy` governing execution
        (engine, worker pool, accuracy defaults).  Two policies differing
        only in ``engine``/``jobs`` return byte-identical seed sets for
        equal seeds.
    index:
        Optional :class:`~repro.sketch.index.SketchIndex` to run the call
        *through* (build-or-reuse).  Node selection draws on the index's
        sketch — RR sets it already holds are reused and only the shortfall
        to θ is sampled and appended — and the index's KPT cache lets a
        repeat call for the same ``(k, refine)`` skip Algorithm 2/3
        entirely (reusing an earlier KPT* is statistically sound: any value
        in ``[KPT/4, OPT]`` validates θ, and the cached one was produced by
        the same procedure, independently of the selection samples).  A
        first call populates the index; later calls amortize it.  Prefer
        :class:`~repro.api.session.InfluenceSession` for whole-workload
        sketch ownership.
    engine, sketch_index, jobs:
        **Deprecated** legacy keywords; still honoured (with a
        :class:`DeprecationWarning` and identical results) but superseded
        by ``policy=`` / ``index=``.

    Returns
    -------
    TIMResult
        Seeds plus every diagnostic the paper plots: KPT*, KPT⁺, θ,
        per-phase RR-set counts, per-phase wall-clock, RR-collection bytes.
    """
    resolved_policy, index = resolve_call_policy(
        "tim()", policy, engine=engine, jobs=jobs, sketch_index=sketch_index,
        index=index,
    )
    epsilon = resolved_policy.epsilon if epsilon is None else epsilon
    ell = resolved_policy.ell if ell is None else ell
    engine = resolved_policy.engine
    require(graph.n >= 2, "influence maximization needs at least two nodes")
    check_k(k, graph.n)
    check_epsilon(epsilon)
    check_ell(ell)
    resolved_model = resolve_model(model)
    resolved_model.validate_graph(graph)
    source = resolve_rng(rng)
    jobs = jobs_for_engine(engine, resolved_policy.jobs, stacklevel=2)
    sampler, owned_pool = maybe_parallel(make_rr_sampler(graph, resolved_model), jobs)
    try:
        return _tim_run(
            graph, k, epsilon, ell, resolved_model, source, sampler, refine,
            epsilon_prime, coverage, max_theta, engine, index,
        )
    finally:
        if owned_pool:
            sampler.close()


def _tim_run(
    graph, k, epsilon, ell, resolved_model, source, sampler, refine,
    epsilon_prime, coverage, max_theta, engine, sketch_index,
):
    # Success-probability bookkeeping (Sections 3.3 / 4.1): the internal
    # ell absorbs the union bound over 2 (TIM) or 3 (TIM+) failure events.
    if refine:
        ell_adjusted = adjusted_ell_tim_plus(ell, graph.n)
    else:
        ell_adjusted = adjusted_ell_tim(ell, graph.n)

    timer = PhaseTimer()
    obs.add("tim.runs")
    rr_counts: dict[str, int] = {}
    # The sampler is already pool-wrapped at the tim() level when jobs ask
    # for it, so the sub-algorithms get the engine only — never a jobs value
    # that would double-wrap.
    inner_policy = ExecutionPolicy(engine=engine)

    cached_kpt = sketch_index.cached_kpt(k, refine) if sketch_index is not None else None
    interim_seeds: list[int] = []
    kpt_iterations = 0
    if cached_kpt is not None:
        # Warm path: the index already priced this (k, refine) — skip
        # Algorithms 2/3 and reuse the recorded KPT bounds.
        kpt_star = float(cached_kpt["kpt_star"])
        kpt_plus = float(cached_kpt["kpt_plus"])
        kpt = kpt_plus if refine else kpt_star
        rr_counts["parameter_estimation"] = 0
        if refine:
            rr_counts["refinement"] = 0
    else:
        with timer.phase("parameter_estimation"):
            kpt_result = estimate_kpt(
                graph, k, sampler, ell=ell_adjusted, rng=source, policy=inner_policy
            )
        rr_counts["parameter_estimation"] = kpt_result.num_rr_sets
        kpt_iterations = kpt_result.iterations_run

        kpt_star = kpt_result.kpt_star
        kpt = kpt_result.kpt_star
        kpt_plus = kpt_result.kpt_star
        if refine:
            if epsilon_prime is None:
                epsilon_prime = epsilon_prime_default(epsilon, k, ell)
            with timer.phase("refinement"):
                refined = refine_kpt(
                    graph,
                    k,
                    kpt_result.kpt_star,
                    kpt_result.last_iteration_sets,
                    sampler,
                    epsilon_prime=epsilon_prime,
                    ell=ell_adjusted,
                    rng=source,
                    policy=inner_policy,
                )
            kpt_plus = refined.kpt_plus
            kpt = refined.kpt_plus
            interim_seeds = refined.interim_seeds
            rr_counts["refinement"] = refined.num_rr_sets
        if sketch_index is not None:
            sketch_index.store_kpt(k, refine, {"kpt_star": kpt_star, "kpt_plus": kpt_plus})

    lambda_value = lambda_param(graph.n, k, epsilon, ell_adjusted)
    theta = theta_from_kpt(lambda_value, kpt)
    theta, theta_capped = apply_theta_cap(
        theta, max_theta, "tim_plus()" if refine else "tim()"
    )
    if theta_capped and sketch_index is not None:
        # The sketch no longer certifies the (k, ε) pair — record it so
        # serving layers (session/service stats) surface the voided
        # guarantee instead of silently reporting a certified ε.
        sketch_index.meta["theta_capped"] = True

    sketch_sets_reused = len(sketch_index.collection) if sketch_index is not None else 0
    with timer.phase("node_selection"):
        selection = node_selection(
            graph, k, theta, sampler, rng=source, coverage=coverage,
            index=sketch_index, policy=inner_policy,
        )
    # Freshly sampled sets only; anything the sketch already held is reuse.
    rr_counts["node_selection"] = selection.num_rr_sets - sketch_sets_reused

    algorithm = "TIM+" if refine else "TIM"
    return TIMResult(
        algorithm=algorithm,
        model=resolved_model.name,
        seeds=selection.seeds,
        k=k,
        runtime_seconds=timer.total,
        estimated_spread=selection.estimated_spread,
        phase_seconds=timer.as_dict(),
        extras={
            "interim_seeds": interim_seeds,
            "theta_capped": theta_capped,
            "kpt_iterations": kpt_iterations,
            "engine": engine,
            "kpt_cache_hit": cached_kpt is not None,
            "sketch_sets_reused": sketch_sets_reused,
        },
        epsilon=epsilon,
        ell=ell,
        ell_adjusted=ell_adjusted,
        kpt_star=kpt_star,
        kpt_plus=kpt_plus,
        lambda_value=lambda_value,
        theta=theta,
        rr_sets_per_phase=rr_counts,
        rr_collection_bytes=selection.collection.nbytes(),
        theta_capped=theta_capped,
    )


def tim_plus(
    graph: DiGraph,
    k: int,
    epsilon: float | None = None,
    ell: float | None = None,
    model="IC",
    rng=None,
    epsilon_prime: float | None = None,
    coverage: str = "exact",
    max_theta: int | None = None,
    engine=DEPRECATED,
    sketch_index=DEPRECATED,
    jobs=DEPRECATED,
    *,
    policy: ExecutionPolicy | None = None,
    index=None,
) -> TIMResult:
    """TIM+ — TIM with the Algorithm 3 refinement step (Section 4.1)."""
    resolved_policy, index = resolve_call_policy(
        "tim_plus()", policy, engine=engine, jobs=jobs,
        sketch_index=sketch_index, index=index,
    )
    return tim(
        graph,
        k,
        epsilon=epsilon,
        ell=ell,
        model=model,
        rng=rng,
        refine=True,
        epsilon_prime=epsilon_prime,
        coverage=coverage,
        max_theta=max_theta,
        policy=resolved_policy,
        index=index,
    )
