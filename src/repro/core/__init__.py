"""The paper's contribution: Algorithms 1-3 and the TIM / TIM+ drivers."""

from repro.core.imm import ImmGrowth, imm, imm_ensure
from repro.core.kpt_estimation import KptEstimationResult, estimate_kpt
from repro.core.node_selection import NodeSelectionResult, node_selection
from repro.core.parameters import (
    adjusted_ell_tim,
    adjusted_ell_tim_plus,
    apply_theta_cap,
    epsilon_prime_default,
    imm_epsilon_prime,
    imm_lambda_prime,
    imm_lambda_star,
    kpt_max_iterations,
    kpt_samples_per_iteration,
    lambda_param,
    lambda_prime,
    log_binomial,
    theta_from_kpt,
)
from repro.core.refine_kpt import RefineKptResult, refine_kpt
from repro.core.results import IMMResult, InfluenceMaxResult, TIMResult
from repro.core.tim import tim, tim_plus
from repro.core.weighted import WeightedRootSampler, weighted_lambda, weighted_tim_plus

__all__ = [
    "KptEstimationResult",
    "estimate_kpt",
    "NodeSelectionResult",
    "node_selection",
    "adjusted_ell_tim",
    "adjusted_ell_tim_plus",
    "apply_theta_cap",
    "epsilon_prime_default",
    "imm_epsilon_prime",
    "imm_lambda_prime",
    "imm_lambda_star",
    "kpt_max_iterations",
    "kpt_samples_per_iteration",
    "lambda_param",
    "lambda_prime",
    "log_binomial",
    "theta_from_kpt",
    "RefineKptResult",
    "refine_kpt",
    "ImmGrowth",
    "imm",
    "imm_ensure",
    "IMMResult",
    "InfluenceMaxResult",
    "TIMResult",
    "tim",
    "tim_plus",
    "WeightedRootSampler",
    "weighted_lambda",
    "weighted_tim_plus",
]
