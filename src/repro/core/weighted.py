"""Node-weighted influence maximization (extension).

Kempe et al.'s general formulation lets each node ``v`` carry a benefit
``w(v) >= 0`` and maximises the expected *total benefit* of activated nodes.
The RR-set machinery extends cleanly (a standard observation in the TIM
follow-on literature): sample each RR root ``v`` with probability
``w(v) / W`` (``W = Σ w``) instead of uniformly, and then

    E[W · F_R(S)] = Σ_v w(v) · Pr[S activates v] = weighted spread of S,

i.e. Corollary 1 holds verbatim with ``n`` replaced by ``W``.  The Chernoff
argument of Lemma 3 / Theorem 1 never inspects the RR sets' contents, so
greedy max coverage over θ ≥ λ_w / OPT_w weighted-root RR sets keeps the
``(1 − 1/e − ε)`` guarantee, where λ_w is Equation 4 with ``n → W`` in the
numerator's scale factor (the ``log C(n, k)`` union bound still counts seed
*sets*, hence keeps ``n``).

Parameter estimation differs: Algorithm 2's κ(R) identity (Lemma 5) is
specific to uniform roots, so the driver below lower-bounds OPT_w the way
Algorithm 3 does — greedy on a pilot batch, unbiased re-estimate on a fresh
batch, deflated by ``1 + ε′`` — floored by the always-valid bound
``OPT_w ≥ sum of the k largest node weights`` (seeds activate themselves).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.parameters import (
    apply_theta_cap,
    epsilon_prime_default,
    log_binomial,
    theta_from_kpt,
)
from repro.core.results import TIMResult
from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.rrset.base import RRSampler, RRSet, make_rr_sampler
from repro.rrset.collection import RRCollection
from repro.rrset.coverage import greedy_max_coverage
from repro.utils.rng import RandomSource, resolve_rng
from repro.utils.timer import PhaseTimer
from repro.utils.validation import check_ell, check_epsilon, check_k, require

__all__ = ["WeightedRootSampler", "weighted_lambda", "weighted_tim_plus"]


class WeightedRootSampler(RRSampler):
    """Wrap any RR sampler so roots are drawn ∝ node weight."""

    def __init__(self, inner: RRSampler, node_weights: np.ndarray):
        super().__init__(inner.graph)
        weights = np.ascontiguousarray(node_weights, dtype=np.float64)
        require(weights.size == inner.graph.n, "one weight per node required")
        if weights.min(initial=0.0) < 0.0:
            raise ValueError("node weights must be non-negative")
        total = float(weights.sum())
        require(total > 0.0, "at least one node weight must be positive")
        self.inner = inner
        self.node_weights = weights
        self.total_weight = total
        self._cumulative = np.cumsum(weights)
        self.model_name = f"weighted-{inner.model_name}"

    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        return self.inner.sample_rooted(root, rng)

    def sample(self, rng) -> RRSet:
        source = resolve_rng(rng)
        draw = source.random() * self.total_weight
        root = int(np.searchsorted(self._cumulative, draw, side="right"))
        root = min(root, self.graph.n - 1)  # guard the draw == total edge case
        return self.inner.sample_rooted(root, source)


def weighted_lambda(
    graph_n: int, total_weight: float, k: int, epsilon: float, ell: float
) -> float:
    """Equation 4 with the spread scale ``n`` replaced by ``W``.

    The union-bound term still counts size-k node sets out of n nodes.
    """
    require(graph_n >= 2, "need n >= 2")
    require(total_weight > 0, "total weight must be positive")
    check_epsilon(epsilon)
    check_ell(ell)
    return (
        (8.0 + 2.0 * epsilon)
        * total_weight
        * (ell * math.log(graph_n) + log_binomial(graph_n, k) + math.log(2.0))
        / (epsilon * epsilon)
    )


def weighted_tim_plus(
    graph: DiGraph,
    k: int,
    node_weights,
    epsilon: float = 0.2,
    ell: float = 1.0,
    model="IC",
    rng=None,
    epsilon_prime: float | None = None,
    pilot_rr_sets: int = 2000,
    max_theta: int | None = None,
) -> TIMResult:
    """TIM+ for the node-weighted objective ``E[Σ_{v activated} w(v)]``.

    Parameters follow :func:`repro.core.tim.tim_plus`;  ``node_weights`` is
    one non-negative benefit per node.  ``pilot_rr_sets`` sizes the pilot
    batch used (like Algorithm 3) to lower-bound the weighted OPT.

    Returns a :class:`TIMResult` whose spread figures are in *weight* units;
    ``kpt_plus`` holds the OPT_w lower bound used to derive θ.
    """
    require(graph.n >= 2, "influence maximization needs at least two nodes")
    check_k(k, graph.n)
    check_epsilon(epsilon)
    check_ell(ell)
    require(pilot_rr_sets >= 1, "pilot_rr_sets must be positive")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    sampler = WeightedRootSampler(make_rr_sampler(graph, resolved), np.asarray(node_weights))
    total_weight = sampler.total_weight

    if epsilon_prime is None:
        epsilon_prime = epsilon_prime_default(epsilon, k, ell)

    timer = PhaseTimer()
    rr_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lower-bound OPT_w: pilot batch -> greedy -> fresh unbiased estimate
    # deflated by (1 + eps'), floored by the top-k weight sum.
    # ------------------------------------------------------------------
    with timer.phase("parameter_estimation"):
        pilot = [sampler.sample(source) for _ in range(pilot_rr_sets)]
        interim = greedy_max_coverage([rr.nodes for rr in pilot], graph.n, k)
    rr_counts["parameter_estimation"] = pilot_rr_sets

    with timer.phase("refinement"):
        fresh_count = pilot_rr_sets
        seed_set = set(interim.seeds)
        covered = 0
        for _ in range(fresh_count):
            rr = sampler.sample(source)
            if any(v in seed_set for v in rr.nodes):
                covered += 1
        estimate = covered / fresh_count * total_weight / (1.0 + epsilon_prime)
        weights_sorted = np.sort(sampler.node_weights)[::-1]
        weight_floor = float(weights_sorted[:k].sum())
        opt_lower = max(estimate, weight_floor, 1e-12)
    rr_counts["refinement"] = fresh_count

    lambda_value = weighted_lambda(graph.n, total_weight, k, epsilon, ell)
    theta = theta_from_kpt(lambda_value, opt_lower)
    theta, theta_capped = apply_theta_cap(theta, max_theta, "weighted_tim_plus()")

    with timer.phase("node_selection"):
        collection = RRCollection(graph.n, graph.m)
        for _ in range(theta):
            collection.append(sampler.sample(source))
        coverage = greedy_max_coverage(collection.sets, graph.n, k)
    rr_counts["node_selection"] = theta

    return TIMResult(
        algorithm="WeightedTIM+",
        model=resolved.name,
        seeds=coverage.seeds,
        k=k,
        runtime_seconds=timer.total,
        estimated_spread=total_weight * coverage.fraction,
        phase_seconds=timer.as_dict(),
        extras={
            "total_weight": total_weight,
            "weight_floor": weight_floor,
            "theta_capped": theta_capped,
            "interim_seeds": interim.seeds,
        },
        epsilon=epsilon,
        ell=ell,
        ell_adjusted=ell,
        kpt_star=opt_lower,
        kpt_plus=opt_lower,
        lambda_value=lambda_value,
        theta=theta,
        rr_sets_per_phase=rr_counts,
        rr_collection_bytes=collection.nbytes(),
        theta_capped=theta_capped,
    )
