"""Result records returned by the influence-maximization drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InfluenceMaxResult", "TIMResult", "IMMResult"]


@dataclass
class InfluenceMaxResult:
    """Common result shape shared by every algorithm in the library.

    ``estimated_spread`` is whatever internal estimator the algorithm used
    while selecting (RR coverage for TIM-family, Monte-Carlo means for
    Greedy-family, heuristic scores may leave it ``None``); for
    apples-to-apples spread comparisons re-estimate with
    :func:`repro.diffusion.estimate_spread`, as the paper does with 10^5
    Monte-Carlo runs.
    """

    algorithm: str
    model: str
    seeds: list[int]
    k: int
    runtime_seconds: float = 0.0
    estimated_spread: float | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.seeds) != self.k:
            raise ValueError(
                f"{self.algorithm} returned {len(self.seeds)} seeds but k={self.k}"
            )
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"{self.algorithm} returned duplicate seeds")


@dataclass
class TIMResult(InfluenceMaxResult):
    """Result of TIM or TIM+ with the paper's diagnostic quantities."""

    epsilon: float = 0.0
    ell: float = 0.0
    ell_adjusted: float = 0.0
    kpt_star: float = 0.0
    #: KPT⁺ from Algorithm 3; equals ``kpt_star`` when refinement is off.
    kpt_plus: float = 0.0
    lambda_value: float = 0.0
    theta: int = 0
    #: RR sets generated per phase: estimation / refinement / selection.
    rr_sets_per_phase: dict[str, int] = field(default_factory=dict)
    #: Approximate bytes held by the node-selection RR collection (Fig. 12).
    rr_collection_bytes: int = 0
    #: Whether ``max_theta`` clamped θ below Equation 5's requirement — a
    #: ``True`` here means the (1 − 1/e − ε) guarantee does NOT hold.
    theta_capped: bool = False

    @property
    def total_rr_sets(self) -> int:
        return sum(self.rr_sets_per_phase.values())


@dataclass
class IMMResult(InfluenceMaxResult):
    """Result of IMM (Tang et al. 2015) with the martingale diagnostics."""

    epsilon: float = 0.0
    ell: float = 0.0
    ell_adjusted: float = 0.0
    #: ε′ = √2·ε — the slack the lower-bound search stops against.
    epsilon_prime: float = 0.0
    #: LB — the certified lower bound on OPT the final θ was derived from.
    opt_lower_bound: float = 0.0
    lambda_prime: float = 0.0
    lambda_star: float = 0.0
    theta: int = 0
    #: Lower-bound search iterations run (≤ ⌈log₂ n⌉ − 1).
    lb_iterations: int = 0
    #: RR sets generated per phase: lb_search / node_selection.
    rr_sets_per_phase: dict[str, int] = field(default_factory=dict)
    rr_collection_bytes: int = 0
    #: Whether ``max_theta`` clamped θ below ⌈λ*/LB⌉ (guarantee void).
    theta_capped: bool = False

    @property
    def total_rr_sets(self) -> int:
        return sum(self.rr_sets_per_phase.values())
