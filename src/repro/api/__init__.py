"""Unified typed API surface (`repro.api`).

Three layers, consumed together or separately:

* :class:`~repro.api.policy.ExecutionPolicy` — one frozen, validated
  object for every execution knob (engine, jobs, trace_edges, ε, ℓ,
  sketch reuse) with explicit env/CLI/call-site resolution;
* :class:`~repro.api.session.InfluenceSession` — the Python caller's
  facade owning graph + dynamic overlay + sketch + pool lifecycle;
* :mod:`repro.api.ops` — the versioned typed request/response operations
  (``SelectRequest`` … ``StatsRequest`` → typed responses carrying
  ``schema_version``) that are the single protocol behind
  :class:`~repro.sketch.service.InfluenceService`, ``run_batch``, and the
  ``serve``/``update`` CLI subcommands.

Legacy per-call keywords (``engine=``, ``jobs=``, ``sketch_index=``) and
dict-based ``InfluenceService.query`` keep working behind deprecation
shims with byte-identical results for identical seeds.
"""

from typing import Any

from repro.api.ops import (
    SCHEMA_VERSION,
    ApiError,
    ErrorResponse,
    MarginalRequest,
    MarginalResponse,
    Request,
    Response,
    SelectRequest,
    SelectResponse,
    SpreadRequest,
    SpreadResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    parse_request,
    response_from_wire,
)
from repro.api.policy import DEPRECATED, ENGINES, ExecutionPolicy, warn_legacy_kwargs

__all__ = [
    "SCHEMA_VERSION",
    "ApiError",
    "DEPRECATED",
    "ENGINES",
    "ErrorResponse",
    "ExecutionPolicy",
    "InfluenceSession",
    "MarginalRequest",
    "MarginalResponse",
    "Request",
    "Response",
    "SelectRequest",
    "SelectResponse",
    "SpreadRequest",
    "SpreadResponse",
    "StatsRequest",
    "StatsResponse",
    "UpdateRequest",
    "UpdateResponse",
    "parse_request",
    "response_from_wire",
    "warn_legacy_kwargs",
]


def __getattr__(name: str) -> Any:
    # InfluenceSession pulls in the sketch/dynamic stacks; importing it
    # lazily keeps `repro.api.policy` importable from low-level modules
    # (core.tim, sketch.index) without a cycle.
    if name == "InfluenceSession":
        from repro.api.session import InfluenceSession

        return InfluenceSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
