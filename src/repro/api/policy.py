"""`ExecutionPolicy` — one validated object for every execution knob.

Four subsystems (vectorized engine, sketch index, parallel sharding,
dynamic repair) each grew their own keyword on every entry point:
``engine=``, ``jobs=``, ``sketch_index=``, ``trace_edges=``, plus the
accuracy pair ``epsilon``/``ell``.  The policy consolidates them into a
single frozen, validated value object that the TIM drivers, the sketch
subsystem, :class:`~repro.api.session.InfluenceSession`, the
:class:`~repro.sketch.service.InfluenceService` and the CLI all share —
so a configuration is constructed (and validated) once and means the same
thing at every layer.

Resolution layers compose explicitly::

    policy = ExecutionPolicy()                      # library defaults
    policy = ExecutionPolicy.from_env()             # + REPRO_* environment
    policy = ExecutionPolicy.from_args(args)        # + CLI flags (env-layered)
    policy = policy.merge(jobs=8)                   # + call-site overrides

Every field is *total*: a policy always carries a concrete value, so code
consuming one never needs a fallback chain.  ``merge`` skips ``None``
overrides, which is what lets optional CLI flags / function arguments layer
over a base policy without clobbering it.

The legacy per-call keywords (``tim(..., engine=..., jobs=...,
sketch_index=...)``) keep working through the :data:`DEPRECATED` sentinel
and :func:`warn_legacy_kwargs`: explicit use emits a
:class:`DeprecationWarning` and folds into a policy internally, producing
byte-identical results for identical seeds.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, fields, replace
from typing import Any

from repro.utils.validation import check_ell, check_epsilon, require

__all__ = [
    "DEPRECATED",
    "ENGINES",
    "ExecutionPolicy",
    "resolve_call_policy",
    "warn_legacy_kwargs",
]

#: The RR sampling/storage engines the library implements.
ENGINES = ("vectorized", "python")


class _Deprecated:
    """Sentinel default for keywords kept only for backward compatibility.

    Distinguishes "caller never passed this" from every real value
    (including ``None``, which is meaningful for ``jobs``).
    """

    _instance: "_Deprecated | None" = None

    def __new__(cls) -> "_Deprecated":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<deprecated>"

    def __reduce__(self) -> tuple[Any, ...]:
        return (_Deprecated, ())


#: Default for deprecated keywords; never pass it explicitly.
DEPRECATED = _Deprecated()


def warn_legacy_kwargs(where: str, names: Iterable[str], *, stacklevel: int = 3) -> None:
    """Emit the uniform deprecation message for legacy execution keywords."""
    listed = ", ".join(sorted(names))
    warnings.warn(
        f"{where}: the {listed} keyword(s) are deprecated; pass "
        f"policy=ExecutionPolicy(...) instead (and route sketch reuse "
        f"through repro.api.InfluenceSession or the index= keyword). "
        f"Results are identical either way.",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_call_policy(
    where: str,
    policy: "ExecutionPolicy | dict[str, Any] | None",
    *,
    engine: Any = DEPRECATED,
    jobs: Any = DEPRECATED,
    sketch_index: Any = DEPRECATED,
    index: Any = None,
    stacklevel: int = 4,
) -> "tuple[ExecutionPolicy, Any]":
    """Fold a call's legacy keywords into an :class:`ExecutionPolicy`.

    The shared shim behind ``tim``/``tim_plus``/``ris``: sentinel-guarded
    ``engine=``/``jobs=``/``sketch_index=`` keywords emit one
    :class:`DeprecationWarning` (naming every legacy keyword used) and then
    merge into the policy, so the legacy path and the policy path are the
    *same* path — byte-identical results by construction.  Returns
    ``(policy, index)`` with the legacy ``sketch_index`` routed to
    ``index`` when the caller did not pass the modern keyword.
    """
    legacy: dict[str, Any] = {}
    if engine is not DEPRECATED:
        legacy["engine"] = engine
    if jobs is not DEPRECATED:
        legacy["jobs"] = jobs
    if sketch_index is not DEPRECATED:
        legacy["sketch_index"] = sketch_index
    if legacy:
        warn_legacy_kwargs(where, legacy, stacklevel=stacklevel)
    resolved = ExecutionPolicy.coerce(policy).merge(engine=legacy.get("engine"))
    if "jobs" in legacy and legacy["jobs"] != resolved.jobs:
        # Unlike merge(), an explicitly passed legacy jobs=None must win:
        # it is the old API's spelling of "single stream".
        resolved = replace(resolved, jobs=legacy["jobs"])
    if index is None:
        index = legacy.get("sketch_index")
    return resolved, index


_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})

#: Environment variables :meth:`ExecutionPolicy.from_env` understands.
_ENV_VARS = {
    "engine": "REPRO_ENGINE",
    "jobs": "REPRO_JOBS",
    "trace_edges": "REPRO_TRACE_EDGES",
    "epsilon": "REPRO_EPSILON",
    "ell": "REPRO_ELL",
    "metrics": "REPRO_METRICS",
    "deadline_ms": "REPRO_DEADLINE_MS",
    "algorithm": "REPRO_ALGORITHM",
}


def _parse_bool(text: str, variable: str) -> bool:
    lowered = text.strip().lower()
    if lowered in _TRUE_STRINGS:
        return True
    if lowered in _FALSE_STRINGS:
        return False
    raise ValueError(
        f"{variable} must be a boolean "
        f"({'/'.join(sorted(_TRUE_STRINGS))} or {'/'.join(sorted(_FALSE_STRINGS))}); "
        f"got {text!r}"
    )


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a run executes — never *what* it computes.

    Two policies that differ only in ``engine``/``jobs`` produce
    byte-identical seed sets, KPT estimates, and sketch bytes for equal
    seeds; ``trace_edges`` changes only the extra arrays stored.  The
    accuracy pair ``epsilon``/``ell`` *does* change θ (and therefore the
    sample), exactly as the per-call keywords always did.

    Fields
    ------
    engine:
        ``"vectorized"`` (numpy-batched flat RR engine, default) or
        ``"python"`` (scalar ablation baseline).
    jobs:
        Worker processes for RR generation: ``None`` = legacy single
        stream (default), ``0`` = all cores, ``n >= 1`` = that many.
    trace_edges:
        Record live-edge traces during sampling so dynamic updates
        invalidate precisely (IC/LT).
    epsilon, ell:
        Approximation slack and failure exponent — the TIM guarantee is
        ``(1 − 1/e − ε)`` with probability ``≥ 1 − n^{−ℓ}``.
    reuse_sketch:
        Whether sketch-owning layers (:class:`InfluenceSession`) keep and
        warm-extend one RR sketch across calls (default) or rebuild cold
        every time (ablation / strict-independence runs).
    metrics:
        The resolved :mod:`repro.obs` instrumentation switch (span tracing
        + counters).  Like every policy field it layers library default →
        ``REPRO_METRICS`` env → CLI (``--metrics-out`` implies it) →
        call-site ``merge``; process entry points (the CLI, benchmarks)
        apply the resolved value via ``obs.configure(enabled=...)``.
        Instrumentation never touches RNG streams, so results are
        byte-identical either way.
    deadline_ms:
        Default per-request wall-clock budget for serving layers
        (:class:`~repro.sketch.service.InfluenceService`): past the budget
        a query returns a structured ``deadline_exceeded`` error instead
        of hanging.  ``None`` (default) = no budget; layers env via
        ``REPRO_DEADLINE_MS``.  Deadlines never alter results that finish
        in time — only whether slow ones are cut short.
    algorithm:
        The default influence-maximization algorithm for layers that pick
        one (``"tim"`` default; layers env via ``REPRO_ALGORITHM``).
        Sketch-owning layers (:class:`InfluenceSession`,
        :meth:`SketchIndex.build`) use it to choose the θ derivation:
        ``"imm"`` selects the martingale lower-bound search, anything else
        the TIM KPT derivation.  Normalized to lowercase.
    """

    engine: str = "vectorized"
    jobs: int | None = None
    trace_edges: bool = False
    epsilon: float = 0.1
    ell: float = 1.0
    reuse_sketch: bool = True
    metrics: bool = False
    deadline_ms: float | None = None
    algorithm: str = "tim"

    def __post_init__(self) -> None:
        require(self.engine in ENGINES,
                f"engine must be one of {ENGINES}; got {self.engine!r}")
        if self.jobs is not None:
            require(isinstance(self.jobs, int) and not isinstance(self.jobs, bool),
                    f"jobs must be an integer or None; got {self.jobs!r}")
            require(self.jobs >= 0, f"jobs must be >= 0 (0 = all cores); got {self.jobs}")
        require(isinstance(self.trace_edges, bool),
                f"trace_edges must be a bool; got {self.trace_edges!r}")
        require(isinstance(self.reuse_sketch, bool),
                f"reuse_sketch must be a bool; got {self.reuse_sketch!r}")
        require(isinstance(self.metrics, bool),
                f"metrics must be a bool; got {self.metrics!r}")
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "ell", float(self.ell))
        check_epsilon(self.epsilon)
        check_ell(self.ell)
        if self.deadline_ms is not None:
            require(isinstance(self.deadline_ms, (int, float))
                    and not isinstance(self.deadline_ms, bool),
                    f"deadline_ms must be a number or None; got {self.deadline_ms!r}")
            require(self.deadline_ms > 0,
                    f"deadline_ms must be > 0; got {self.deadline_ms!r}")
            object.__setattr__(self, "deadline_ms", float(self.deadline_ms))
        require(isinstance(self.algorithm, str) and self.algorithm.strip() != "",
                f"algorithm must be a non-empty string; got {self.algorithm!r}")
        object.__setattr__(self, "algorithm", self.algorithm.strip().lower())

    # ------------------------------------------------------------------
    # Construction / resolution
    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_kwargs(cls, base: "ExecutionPolicy | None" = None,
                    **kwargs: Any) -> "ExecutionPolicy":
        """Build a policy from keyword overrides, rejecting unknown keys.

        ``None`` values mean "unset" and fall through to ``base`` (or the
        library default), so optional call-site arguments forward directly.
        """
        unknown = sorted(set(kwargs) - set(cls.field_names()))
        require(not unknown,
                f"unknown execution-policy field(s): {', '.join(unknown)}; "
                f"known: {', '.join(cls.field_names())}")
        return (base if base is not None else cls()).merge(**kwargs)

    @classmethod
    def coerce(cls, value: Any) -> "ExecutionPolicy":
        """Accept a policy, a mapping of fields, or ``None`` (defaults)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_kwargs(**value)
        raise ValueError(
            f"policy must be an ExecutionPolicy, a dict of its fields, or None; "
            f"got {type(value).__name__}"
        )

    def merge(self, **overrides: Any) -> "ExecutionPolicy":
        """A new policy with the non-``None`` overrides applied.

        ``None`` means "keep the current value" — which also means a merge
        cannot reset ``jobs`` to the single-stream default; construct a
        fresh policy for that.
        """
        unknown = sorted(set(overrides) - set(self.field_names()))
        require(not unknown,
                f"unknown execution-policy field(s): {', '.join(unknown)}; "
                f"known: {', '.join(self.field_names())}")
        effective = {key: value for key, value in overrides.items() if value is not None}
        return replace(self, **effective) if effective else self

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None,
                 base: "ExecutionPolicy | None" = None) -> "ExecutionPolicy":
        """Resolve ``REPRO_ENGINE`` / ``REPRO_JOBS`` / ``REPRO_TRACE_EDGES``
        / ``REPRO_EPSILON`` / ``REPRO_ELL`` / ``REPRO_METRICS`` /
        ``REPRO_DEADLINE_MS`` over ``base`` (or defaults)."""
        env = os.environ if env is None else env
        overrides: dict[str, Any] = {}
        for field_name, variable in _ENV_VARS.items():
            raw = env.get(variable)
            if raw is None or raw == "":
                continue
            try:
                if field_name == "jobs":
                    overrides[field_name] = int(raw)
                elif field_name in ("trace_edges", "metrics"):
                    overrides[field_name] = _parse_bool(raw, variable)
                elif field_name in ("epsilon", "ell", "deadline_ms"):
                    overrides[field_name] = float(raw)
                else:
                    overrides[field_name] = raw
            except ValueError as exc:
                raise ValueError(f"invalid {variable}={raw!r}: {exc}") from None
        return (base if base is not None else cls()).merge(**overrides)

    @classmethod
    def from_args(cls, args: Any, base: "ExecutionPolicy | None" = None,
                  *, env: Mapping[str, str] | None = None) -> "ExecutionPolicy":
        """Resolve CLI flags over the environment over ``base``.

        ``args`` is any object with optional ``engine`` / ``jobs`` /
        ``trace_edges`` / ``epsilon`` / ``ell`` attributes (an argparse
        namespace); missing or ``None`` attributes stay unset so absent
        flags never clobber the environment layer.
        """
        resolved = cls.from_env(env=env, base=base)
        overrides = {
            name: getattr(args, name, None)
            for name in ("engine", "jobs", "trace_edges", "epsilon", "ell",
                         "metrics", "deadline_ms", "algorithm")
        }
        return resolved.merge(**overrides)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self.field_names()}

    def sampling_kwargs(self) -> dict[str, Any]:
        """The subset every sampling entry point understands."""
        return {"engine": self.engine, "jobs": self.jobs}
