"""Versioned typed request/response operations — the service protocol.

One schema, three fronts: :meth:`repro.sketch.service.InfluenceService.execute`,
:meth:`repro.api.session.InfluenceSession.execute`, and the ``serve`` /
``update`` CLI subcommands all speak these types.  The JSONL wire format is
unchanged from the dict protocol the service always used — these classes
*are* its schema, made explicit, validated, and versioned:

=================  ==========================================================
request            wire shape
=================  ==========================================================
`SelectRequest`    ``{"op": "select", "k": 10, "include": [..], "exclude": [..]}``
`SpreadRequest`    ``{"op": "spread", "seeds": [3, 17, 42]}``
`MarginalRequest`  ``{"op": "marginal_gain", "seeds": [..], "candidate": 42}``
`UpdateRequest`    ``{"op": "update", "action": "insert", "u": 3, "v": 7, "p": 0.2}``
`StatsRequest`     ``{"op": "stats"}``
=================  ==========================================================

Every request additionally accepts ``id`` (echoed on the response),
``model`` (where meaningful) and ``schema_version``; anything else is an
**error** (``unknown_field``) — a typo like ``"includ"`` used to be silently
ignored, now it comes back as a structured payload::

    {"ok": false, "error": {"code": "unknown_field", "message": ...}, ...}

Responses carry ``schema_version`` so clients can detect protocol drift;
:data:`SCHEMA_VERSION` bumps only on breaking wire changes.  Both sides
round-trip: ``parse_request(req.to_wire()) == req`` and
``response_from_wire(resp.to_wire()) == resp`` (modulo float latency),
which the golden-fixture suite in ``tests/api`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, ClassVar

from repro.faults.errors import error_code, is_retryable
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.dynamic.updates import EdgeUpdate

__all__ = [
    "SCHEMA_VERSION",
    "ApiError",
    "Request",
    "SelectRequest",
    "SpreadRequest",
    "MarginalRequest",
    "UpdateRequest",
    "StatsRequest",
    "Response",
    "SelectResponse",
    "SpreadResponse",
    "MarginalResponse",
    "UpdateResponse",
    "StatsResponse",
    "ErrorResponse",
    "parse_request",
    "response_from_wire",
]

#: Protocol version stamped on every response (and accepted on requests).
#: Bumps only on breaking wire-format changes.
SCHEMA_VERSION = 1


class ApiError(ValueError):
    """A protocol-level failure with a stable machine-readable code.

    Codes: ``bad_request`` (malformed value), ``unknown_op``,
    ``unknown_field`` (typo'd key), ``unsupported_schema_version``,
    ``invalid_json`` (JSONL decode failures).  Runtime failures surface
    through the :mod:`repro.faults.errors` taxonomy instead —
    ``transient``, ``fatal``, ``deadline_exceeded``, ``resource_exhausted``
    — with the payload's ``retryable`` flag telling clients whether a
    resubmit can help.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    @property
    def message(self) -> str:
        return self.args[0]


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _int_tuple(value: object, what: str) -> tuple[int, ...]:
    if value is None:
        return ()
    if not isinstance(value, (list, tuple)):
        raise ApiError("bad_request", f"{what} must be a list of integers; got {value!r}")
    out: list[int] = []
    for item in value:
        if not _is_int(item):
            raise ApiError("bad_request", f"{what} must contain only integers; got {item!r}")
        out.append(int(item))
    return tuple(out)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class Request:
    """Base request: ``id`` is opaque and echoed back on the response.

    ``deadline_ms`` (any op, optional) caps the request's wall clock:
    past the budget the service answers with a structured
    ``deadline_exceeded`` error instead of keeping the caller waiting.
    """

    op: ClassVar[str] = ""
    #: Wire keys this op accepts beyond its dataclass fields.
    _extra_keys: ClassVar[frozenset[str]] = frozenset()

    id: object = None
    deadline_ms: int | float | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is None:
            return
        if (isinstance(self.deadline_ms, bool)
                or not isinstance(self.deadline_ms, (int, float))
                or self.deadline_ms <= 0):
            raise ApiError(
                "bad_request",
                f"deadline_ms must be a number > 0; got {self.deadline_ms!r}")

    @classmethod
    def allowed_keys(cls) -> frozenset[str]:
        own = {f.name for f in fields(cls)}
        return frozenset(own | {"op", "schema_version"} | cls._extra_keys)

    def _payload(self) -> dict[str, Any]:
        """Op-specific wire keys (compact: defaults are omitted)."""
        return {}

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"op": self.op, "schema_version": SCHEMA_VERSION}
        if self.id is not None:
            wire["id"] = self.id
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        wire.update(self._payload())
        return wire


@dataclass(frozen=True, kw_only=True)
class _ModelRequest(Request):
    """Requests that may name a diffusion model (default: the serve-level one)."""

    model: str | None = None

    def _payload(self) -> dict[str, Any]:
        return {"model": self.model} if self.model is not None else {}


@dataclass(frozen=True, kw_only=True)
class SelectRequest(_ModelRequest):
    """Greedy seed selection over the sketch for budget ``k``."""

    op: ClassVar[str] = "select"

    k: int
    include: tuple[int, ...] = ()
    exclude: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not _is_int(self.k) or self.k < 1:
            raise ApiError("bad_request", f"select needs an integer k >= 1; got {self.k!r}")
        object.__setattr__(self, "include", _int_tuple(self.include, "include"))
        object.__setattr__(self, "exclude", _int_tuple(self.exclude, "exclude"))

    def _payload(self) -> dict[str, Any]:
        payload = super()._payload()
        payload["k"] = self.k
        if self.include:
            payload["include"] = list(self.include)
        if self.exclude:
            payload["exclude"] = list(self.exclude)
        return payload


@dataclass(frozen=True, kw_only=True)
class SpreadRequest(_ModelRequest):
    """Corollary-1 spread estimate of a fixed seed set."""

    op: ClassVar[str] = "spread"

    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "seeds", _int_tuple(self.seeds, "seeds"))
        if not self.seeds:
            raise ApiError("bad_request", "spread needs a non-empty seeds list")

    def _payload(self) -> dict[str, Any]:
        payload = super()._payload()
        payload["seeds"] = list(self.seeds)
        return payload


@dataclass(frozen=True, kw_only=True)
class MarginalRequest(_ModelRequest):
    """Marginal spread gain of ``candidate`` on top of ``seeds``."""

    op: ClassVar[str] = "marginal_gain"

    seeds: tuple[int, ...]
    candidate: int

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "seeds", _int_tuple(self.seeds, "seeds"))
        if not _is_int(self.candidate):
            raise ApiError("bad_request",
                           f"marginal_gain needs an integer candidate; got {self.candidate!r}")

    def _payload(self) -> dict[str, Any]:
        payload = super()._payload()
        payload["seeds"] = list(self.seeds)
        payload["candidate"] = self.candidate
        return payload


@dataclass(frozen=True, kw_only=True)
class UpdateRequest(Request):
    """One edge mutation: insert / delete / reweight."""

    op: ClassVar[str] = "update"
    _extra_keys: ClassVar[frozenset[str]] = frozenset({"prob"})  # legacy alias of "p"

    action: str
    u: int
    v: int
    p: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        # EdgeUpdate owns the domain validation (action set, probability
        # range, delete-takes-no-p); surface its message under bad_request.
        try:
            self.to_edge_update()
        except ValueError as exc:
            raise ApiError("bad_request", str(exc)) from None

    def to_edge_update(self) -> "EdgeUpdate":
        from repro.dynamic.updates import EdgeUpdate

        return EdgeUpdate(action=self.action, u=self.u, v=self.v,
                          prob=None if self.p is None else float(self.p))

    def _payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"action": self.action, "u": self.u, "v": self.v}
        if self.p is not None:
            payload["p"] = float(self.p)
        return payload


@dataclass(frozen=True, kw_only=True)
class StatsRequest(Request):
    """Service-level counters (queries, cache hits, repairs, latency)."""

    op: ClassVar[str] = "stats"


_REQUEST_TYPES: dict[str, type[Request]] = {
    cls.op: cls
    for cls in (SelectRequest, SpreadRequest, MarginalRequest, UpdateRequest, StatsRequest)
}


def _check_schema_version(wire: dict[str, Any]) -> None:
    version = wire.get("schema_version")
    if version is not None and version != SCHEMA_VERSION:
        raise ApiError(
            "unsupported_schema_version",
            f"this server speaks schema_version {SCHEMA_VERSION}; request "
            f"declared {version!r}",
        )


def parse_request(request: object) -> Request:
    """Typed, strictly-validated request from a wire dict (or passthrough).

    Raises :class:`ApiError` — never a bare ``ValueError`` — so callers can
    map failures onto structured error payloads.  Unknown keys are rejected
    (``unknown_field``): silently ignoring a typo'd ``"includ"`` key would
    return a *wrong answer* that looks healthy.
    """
    if isinstance(request, Request):
        return request
    if not isinstance(request, dict):
        raise ApiError("bad_request", "request must be a JSON object")
    op = request.get("op")
    if not isinstance(op, str):
        raise ApiError("bad_request", "request needs an 'op' string")
    cls = _REQUEST_TYPES.get(op)
    if cls is None:
        raise ApiError(
            "unknown_op",
            f"unknown op {op!r}; expected one of {sorted(_REQUEST_TYPES)}",
        )
    _check_schema_version(request)
    unknown = sorted(set(request) - cls.allowed_keys())
    if unknown:
        allowed = sorted(cls.allowed_keys())
        raise ApiError(
            "unknown_field",
            f"unknown field(s) for op '{op}': {', '.join(unknown)}; "
            f"allowed: {', '.join(allowed)}",
        )
    kwargs = {
        key: value for key, value in request.items()
        if key not in ("op", "schema_version")
    }
    if cls is UpdateRequest and "prob" in kwargs:
        value = kwargs.pop("prob")
        if "p" in kwargs and kwargs["p"] != value:
            raise ApiError("bad_request", "update carries conflicting 'p' and 'prob'")
        kwargs["p"] = value
    try:
        return cls(**kwargs)
    except ApiError:
        raise
    except (TypeError, ValueError) as exc:
        raise ApiError("bad_request", str(exc)) from None


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(kw_only=True)
class Response:
    """Base response envelope; ``to_wire()`` emits the JSONL shape."""

    op: ClassVar[str] = ""
    ok: ClassVar[bool] = True

    id: object = None
    cache: str | None = None
    latency_ms: float = 0.0
    schema_version: int = SCHEMA_VERSION

    def result(self) -> dict[str, Any]:
        """The op-specific ``"result"`` payload."""
        return {}

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {}
        if self.id is not None:
            wire["id"] = self.id
        wire["op"] = self.op
        wire["ok"] = True
        wire["schema_version"] = self.schema_version
        if self.cache is not None:
            wire["cache"] = self.cache
        wire["result"] = self.result()
        wire["latency_ms"] = self.latency_ms
        return wire


@dataclass(kw_only=True)
class SelectResponse(Response):
    op: ClassVar[str] = "select"

    seeds: list[int] = field(default_factory=list)
    coverage_fraction: float = 0.0
    estimated_spread: float = 0.0
    num_rr_sets: int = 0

    def result(self) -> dict[str, Any]:
        return {
            "seeds": list(self.seeds),
            "coverage_fraction": self.coverage_fraction,
            "estimated_spread": self.estimated_spread,
            "num_rr_sets": self.num_rr_sets,
        }


@dataclass(kw_only=True)
class SpreadResponse(Response):
    op: ClassVar[str] = "spread"

    spread: float = 0.0
    coverage_fraction: float = 0.0
    num_rr_sets: int = 0

    def result(self) -> dict[str, Any]:
        return {
            "spread": self.spread,
            "coverage_fraction": self.coverage_fraction,
            "num_rr_sets": self.num_rr_sets,
        }


@dataclass(kw_only=True)
class MarginalResponse(Response):
    op: ClassVar[str] = "marginal_gain"

    gain: float = 0.0
    num_rr_sets: int = 0

    def result(self) -> dict[str, Any]:
        return {"gain": self.gain, "num_rr_sets": self.num_rr_sets}


@dataclass(kw_only=True)
class UpdateResponse(Response):
    op: ClassVar[str] = "update"

    action: str = ""
    u: int = -1
    v: int = -1
    version: int = 0
    fingerprint: str = ""
    num_edges: int = 0
    repaired_indexes: list[Any] = field(default_factory=list)

    def result(self) -> dict[str, Any]:
        return {
            "action": self.action,
            "u": self.u,
            "v": self.v,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "num_edges": self.num_edges,
            "repaired_indexes": list(self.repaired_indexes),
        }


@dataclass(kw_only=True)
class StatsResponse(Response):
    """Service counters (``ServiceStats.as_dict()``) as one flat dict.

    The payload grows **additively** under ``schema_version=1``: the
    historical keys (``queries``, ``errors``, cache/build/repair counters,
    ``total_latency_seconds``, ``mean_latency_ms``, ``queries_per_second``,
    ``per_op``) stay byte-identical, and :mod:`repro.obs` appended
    ``error_latency_seconds``, ``success_mean_latency_ms``, interpolated
    ``latency_p50_ms`` / ``latency_p90_ms`` / ``latency_p99_ms``, and the
    per-phase span rollup under ``phases`` (empty unless metrics are on).
    Consumers must tolerate new keys.
    """

    op: ClassVar[str] = "stats"

    stats: dict[str, Any] = field(default_factory=dict)

    def result(self) -> dict[str, Any]:
        return dict(self.stats)


@dataclass(kw_only=True)
class ErrorResponse(Response):
    """Structured failure: a stable ``code`` plus a human message.

    ``retryable`` (additive under ``schema_version=1``) tells clients
    whether resubmitting the same request may succeed — ``True`` for
    transient runtime failures and resource exhaustion, ``False`` for
    protocol errors, fatal failures, and blown deadlines.
    """

    ok: ClassVar[bool] = False

    code: str = "bad_request"
    message: str = ""
    retryable: bool = False
    failed_op: str | None = None
    line: int | None = None

    @classmethod
    def from_exception(cls, exc: Exception, *, op: str | None = None,
                       id: Any = None, line: int | None = None) -> "ErrorResponse":
        # ApiError and the repro.faults taxonomy both carry .code; anything
        # else maps through error_code (MemoryError → resource_exhausted,
        # fallback bad_request).
        code = error_code(exc)
        # str(KeyError) is the repr of its argument — unwrap the quotes.
        message = (str(exc.args[0]) if isinstance(exc, KeyError) and exc.args
                   else str(exc))
        return cls(code=code, message=message, retryable=is_retryable(exc),
                   failed_op=op, id=id, line=line)

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {}
        if self.id is not None:
            wire["id"] = self.id
        if self.failed_op is not None:
            wire["op"] = self.failed_op
        wire["ok"] = False
        wire["schema_version"] = self.schema_version
        if self.line is not None:
            wire["line"] = self.line
        wire["error"] = {"code": self.code, "message": self.message,
                         "retryable": self.retryable}
        wire["latency_ms"] = self.latency_ms
        return wire


_RESPONSE_TYPES: dict[str, type[Response]] = {
    cls.op: cls
    for cls in (SelectResponse, SpreadResponse, MarginalResponse,
                UpdateResponse, StatsResponse)
}


def response_from_wire(wire: dict[str, Any]) -> Response:
    """Rebuild a typed response from its JSONL form (client-side helper)."""
    require(isinstance(wire, dict), "response wire form must be a JSON object")
    _check_schema_version(wire)
    common: dict[str, Any] = {
        "id": wire.get("id"),
        "latency_ms": wire.get("latency_ms", 0.0),
        "schema_version": wire.get("schema_version", SCHEMA_VERSION),
    }
    if not wire.get("ok", False):
        error = wire.get("error")
        retryable = False
        if isinstance(error, dict):
            code, message = error.get("code", "bad_request"), error.get("message", "")
            retryable = bool(error.get("retryable", False))
        else:  # pre-v1 stringly-typed error payloads
            code, message = "bad_request", str(error)
        return ErrorResponse(code=code, message=message, retryable=retryable,
                             failed_op=wire.get("op"), line=wire.get("line"),
                             **common)
    op = wire.get("op")
    cls = _RESPONSE_TYPES.get(op)
    if cls is None:
        raise ApiError("unknown_op", f"unknown response op {op!r}")
    common["cache"] = wire.get("cache")
    result = wire.get("result") or {}
    if cls is StatsResponse:
        return StatsResponse(stats=dict(result), **common)
    try:
        return cls(**result, **common)
    except TypeError as exc:
        raise ApiError("bad_request", f"malformed {op} result payload: {exc}") from None
