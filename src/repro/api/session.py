"""`InfluenceSession` — one object that owns a whole influence workload.

The facade over everything the library grew subsystem by subsystem: the
graph (with a :class:`~repro.dynamic.graph.DynamicDiGraph` overlay so it
can evolve), one RR sketch (:class:`~repro.sketch.index.SketchIndex`) that
is built lazily, reused, warm-extended and repaired in place, and the
worker-pool lifecycle behind it — all configured by a single
:class:`~repro.api.policy.ExecutionPolicy`.

Where :class:`~repro.sketch.service.InfluenceService` is the *multi-graph
LRU server* (JSONL front, cache statistics), the session is the *Python
caller's* surface: one graph, one model, typed results, deterministic under
a seed, and a context manager so the pool can never leak::

    from repro import ExecutionPolicy, InfluenceSession

    with InfluenceSession(graph, "IC", policy=ExecutionPolicy(jobs=0),
                          rng=0) as session:
        picked = session.select(50)                  # SelectResponse
        reach = session.spread(picked.seeds)         # float
        lift = session.marginal(picked.seeds, 7)     # float
        session.apply_update(action="insert", u=3, v=7, p=0.2)
        tightened = session.ensure(epsilon=0.1)      # grow the sketch

Determinism: the session draws every sampling wave from spawned children of
its ``rng``, so a session constructed with the same seed, policy, and call
sequence reproduces byte-identical sketches and seed sets — including
across worker counts (``policy.jobs`` never changes results).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

from repro.api.ops import (
    SelectRequest,
    SpreadRequest,
    MarginalRequest,
    UpdateRequest,
    StatsRequest,
    Request,
    Response,
    SelectResponse,
    SpreadResponse,
    MarginalResponse,
    UpdateResponse,
    StatsResponse,
    ApiError,
    parse_request,
)
from repro.api.policy import ExecutionPolicy
from repro.diffusion.base import resolve_model
from repro.utils.rng import resolve_rng
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.dynamic.graph import DynamicDiGraph
    from repro.graphs.digraph import DiGraph
    from repro.sketch.index import SketchIndex

__all__ = ["InfluenceSession"]


class InfluenceSession:
    """Facade owning graph + dynamic overlay + sketch + pool lifecycle.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.digraph.DiGraph` snapshot or an existing
        :class:`~repro.dynamic.graph.DynamicDiGraph` overlay (adopted, not
        copied — updates applied here are visible to other holders).
    model:
        Diffusion model name or instance for every query in this session.
    policy:
        The :class:`ExecutionPolicy` (or a dict of its fields / ``None``
        for defaults) governing engine, worker pool, tracing, accuracy,
        and sketch reuse.
    rng:
        Seed or source; all sampling determinism flows from it.
    default_k:
        Budget used to derive the first sketch's θ when a query arrives
        before any explicit :meth:`ensure` (the TIM derivation at
        ``policy.epsilon``); later ``select(k)`` calls re-ensure for their
        own ``k``.
    index:
        Adopt a pre-built/loaded :class:`SketchIndex` instead of building
        lazily.  It must serve this session's graph and model.
    """

    def __init__(self, graph: DiGraph | DynamicDiGraph, model: Any = "IC", *,
                 policy: ExecutionPolicy | dict[str, Any] | None = None,
                 rng: Any = None, default_k: int = 10,
                 index: SketchIndex | None = None) -> None:
        from repro.dynamic.graph import DynamicDiGraph

        self.policy = ExecutionPolicy.coerce(policy)
        self._dynamic = graph if isinstance(graph, DynamicDiGraph) else DynamicDiGraph(graph)
        self._model = resolve_model(model)
        self._model.validate_graph(self._dynamic.graph)
        self._rng = resolve_rng(rng)
        self.default_k = int(default_k)
        require(self.default_k >= 1, "default_k must be >= 1")
        self._index: SketchIndex | None = None
        if index is not None:
            require(index.meta.get("model") == self._model.name,
                    f"adopted index serves model {index.meta.get('model')!r}, "
                    f"not {self._model.name!r}")
            recorded = index.meta.get("graph_fingerprint")
            require(recorded is None or recorded == self._dynamic.fingerprint(),
                    "adopted index was built for a different graph snapshot")
            if index.graph is None:
                index.graph = self._dynamic.graph
            self._index = index
        self._closed = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current (post-update) immutable snapshot."""
        return self._dynamic.graph

    @property
    def dynamic_graph(self) -> DynamicDiGraph:
        """The mutable overlay; versioned by fingerprint."""
        return self._dynamic

    @property
    def model(self) -> str:
        return self._model.name

    @property
    def index(self) -> SketchIndex | None:
        """The owned sketch index, or ``None`` before the first query."""
        return self._index

    @property
    def num_rr_sets(self) -> int:
        return 0 if self._index is None else self._index.num_sets

    # ------------------------------------------------------------------
    # Sketch lifecycle
    # ------------------------------------------------------------------
    def _build_index(self, k: int) -> SketchIndex:
        from repro.sketch.index import SketchIndex

        return SketchIndex.build(
            self.graph,
            self._model,
            k=k,
            epsilon=self.policy.epsilon,
            ell=self.policy.ell,
            rng=self._rng.spawn(),
            policy=self.policy,
        )

    def _ensure_index(self, k: int | None = None) -> SketchIndex:
        """Build (or rebuild, when reuse is off) the sketch for budget ``k``."""
        require(not self._closed, "session is closed")
        k = self.default_k if k is None else int(k)
        if self._index is None:
            self._index = self._build_index(k)
        elif not self.policy.reuse_sketch:
            self._index.close()
            self._index = self._build_index(k)
        else:
            # Warm path: grow (never resample) until ε-adequate for this k.
            self._index.ensure_epsilon(
                k, self.policy.epsilon, ell=self.policy.ell,
                rng=self._rng.spawn(), jobs=self.policy.jobs,
            )
        return self._index

    def ensure(self, *, epsilon: float | None = None, theta: int | None = None,
               k: int | None = None) -> int:
        """Grow the sketch to a target accuracy or size; returns sets added.

        Exactly one of ``epsilon`` (ε-adequacy for budget ``k``, defaulting
        to ``default_k``) or ``theta`` (absolute RR-set count) must be
        given.  Existing RR sets are never resampled — i.i.d. sets extend.
        On a fresh session the first sketch is built straight to the
        requested target (never to ``policy.epsilon`` first), so
        ``ensure(theta=100)`` samples exactly 100 sets.
        """
        from repro.sketch.index import SketchIndex

        require((epsilon is None) != (theta is None),
                "ensure() takes exactly one of epsilon= or theta=")
        require(not self._closed, "session is closed")
        k = self.default_k if k is None else int(k)
        if self._index is None:
            if theta is not None:
                self._index = SketchIndex.build(
                    self.graph, self._model, theta=int(theta),
                    rng=self._rng.spawn(), policy=self.policy,
                )
            else:
                self._index = SketchIndex.build(
                    self.graph, self._model, k=k, epsilon=float(epsilon),
                    ell=self.policy.ell, rng=self._rng.spawn(),
                    policy=self.policy,
                )
            return self._index.num_sets
        if theta is not None:
            return self._index.ensure_theta(int(theta), rng=self._rng.spawn(),
                                            jobs=self.policy.jobs)
        return self._index.ensure_epsilon(
            k, float(epsilon),
            ell=self.policy.ell, rng=self._rng.spawn(), jobs=self.policy.jobs,
        )

    def close(self) -> None:
        """Release the sketch's worker pool and end the session.

        Idempotent.  A closed session rejects further queries and updates
        (``ValueError: session is closed``) — the strict lifecycle keeps
        the facade's surface uniform; query the owned :attr:`index`
        directly if read-only access past close is needed.
        """
        if self._index is not None:
            self._index.close()
        self._closed = True

    def __enter__(self) -> "InfluenceSession":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries (typed results)
    # ------------------------------------------------------------------
    def select(self, k: int, include: Iterable[int] = (),
               exclude: Iterable[int] = ()) -> SelectResponse:
        """Greedy seed selection for budget ``k`` over the (ensured) sketch."""
        index = self._ensure_index(k)
        result = index.select(k, forced_include=include, forced_exclude=exclude)
        return SelectResponse(
            seeds=list(result.seeds),
            coverage_fraction=result.fraction,
            estimated_spread=index.num_nodes * result.fraction,
            num_rr_sets=index.num_sets,
        )

    def spread(self, seeds: Iterable[int]) -> float:
        """``n · F_R(S)`` — the Corollary 1 estimate over the sketch."""
        return float(self._ensure_index().spread(seeds))

    def marginal(self, seeds: Iterable[int], candidate: int) -> float:
        """Estimated spread lift from adding ``candidate`` to ``seeds``."""
        return float(self._ensure_index().marginal_gain(seeds, candidate))

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def apply_update(self, update: Any = None, *, action: str | None = None,
                     u: int | None = None, v: int | None = None,
                     p: float | None = None) -> UpdateResponse:
        """Apply one edge mutation and repair the owned sketch in place.

        Accepts an :class:`~repro.dynamic.updates.EdgeUpdate`, an
        :class:`~repro.api.ops.UpdateRequest`, a request dict, or the bare
        ``action=``/``u=``/``v=``/``p=`` keywords.  Validation happens on a
        *preview* — a rejected update (missing edge, LT weight violation)
        leaves graph and sketch untouched.
        """
        from repro.dynamic.updates import EdgeUpdate, parse_update

        require(not self._closed, "session is closed")
        if update is None:
            require(action is not None and u is not None and v is not None,
                    "apply_update needs an update object or action=/u=/v= keywords")
            update = EdgeUpdate(action=action, u=int(u), v=int(v),
                                prob=None if p is None else float(p))
        elif isinstance(update, UpdateRequest):
            update = update.to_edge_update()
        elif not isinstance(update, EdgeUpdate):
            update = parse_update(update)

        delta = self._dynamic.preview(update)
        # Validate unconditionally — an update that breaks the model's
        # invariants (e.g. LT in-weight sums) must be rejected even before
        # the first sketch exists, or it would wedge every later query.
        self._model.validate_graph(delta.new_graph)
        repaired: list[Any] = []
        if self._index is not None:
            report = self._index.apply_update(delta, rng=self._rng.spawn(),
                                              jobs=self.policy.jobs)
            repaired.append(report.as_dict())
        self._dynamic.commit(delta)
        return UpdateResponse(
            action=update.action,
            u=update.u,
            v=update.v,
            version=self._dynamic.version,
            fingerprint=delta.new_fingerprint,
            num_edges=self._dynamic.m,
            repaired_indexes=repaired,
        )

    # ------------------------------------------------------------------
    # Typed-op front (the same protocol the service speaks)
    # ------------------------------------------------------------------
    def execute(self, request: Request | dict[str, Any]) -> Response:
        """Answer one typed request (or wire dict) against this session.

        The session has no LRU, so ``stats`` reports the sketch shape
        rather than cache counters.  Raises :class:`ApiError` on protocol
        failures — unlike the service front, the session is a Python API
        and failing loudly is the right default here.
        """
        request = parse_request(request)
        requested_model = getattr(request, "model", None)
        response: Response
        if requested_model is not None and requested_model != self.model:
            raise ApiError(
                "bad_request",
                f"this session serves model {self.model!r}; per-request model "
                f"overrides ({requested_model!r}) need an InfluenceService",
            )
        if isinstance(request, SelectRequest):
            response = self.select(request.k, include=request.include,
                                   exclude=request.exclude)
        elif isinstance(request, SpreadRequest):
            index = self._ensure_index()
            response = SpreadResponse(
                spread=index.spread(request.seeds),
                coverage_fraction=index.coverage_fraction(request.seeds),
                num_rr_sets=index.num_sets,
            )
        elif isinstance(request, MarginalRequest):
            index = self._ensure_index()
            response = MarginalResponse(
                gain=index.marginal_gain(request.seeds, request.candidate),
                num_rr_sets=index.num_sets,
            )
        elif isinstance(request, UpdateRequest):
            response = self.apply_update(request)
        elif isinstance(request, StatsRequest):
            # "sketch" reports what the owned sketch *certifies* (additive
            # payload; schema_version stays 1): the tightest ε it meets, the
            # θ derivation used, and whether a max_theta cap ever voided the
            # guarantee for a run routed through it.
            sketch_stats: dict[str, Any] = {
                "theta": self.num_rr_sets,
                "algorithm": None,
                "epsilon": None,
                "theta_capped": False,
            }
            if self._index is not None:
                sketch_stats.update(
                    algorithm=self._index.meta.get("algorithm"),
                    epsilon=self._index.meta.get("epsilon"),
                    theta_capped=bool(self._index.meta.get("theta_capped", False)),
                )
            response = StatsResponse(stats={
                "model": self.model,
                "num_rr_sets": self.num_rr_sets,
                "num_nodes": self._dynamic.n,
                "num_edges": self._dynamic.m,
                "graph_version": self._dynamic.version,
                "policy": self.policy.as_dict(),
                "sketch": sketch_stats,
            })
        else:  # pragma: no cover - parse_request exhausts the op set
            raise ApiError("unknown_op", f"unhandled request type {type(request).__name__}")
        response.id = request.id
        return response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InfluenceSession(model={self.model!r}, n={self._dynamic.n}, "
            f"m={self._dynamic.m}, rr_sets={self.num_rr_sets}, "
            f"policy={self.policy!r})"
        )
