"""repro — TIM/TIM+ influence maximization (SIGMOD 2014), reproduced in full.

A production-quality Python implementation of Tang, Xiao & Shi,
*Influence Maximization: Near-Optimal Time Complexity Meets Practical
Efficiency* (SIGMOD 2014), together with every substrate and baseline its
evaluation depends on.

Quickstart::

    from repro import ExecutionPolicy, InfluenceSession, build_dataset

    graph = build_dataset("nethept").weighted_for("IC")
    with InfluenceSession(graph, "IC", policy=ExecutionPolicy(epsilon=0.2),
                          rng=0) as session:
        picked = session.select(50)
        print(picked.seeds, session.spread(picked.seeds))

(or the one-shot drivers: ``tim_plus(graph, k=50, epsilon=0.2, rng=0)``.)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graphs` — CSR digraph, builders, generators, weights, I/O;
* :mod:`repro.diffusion` — IC, LT and general triggering propagation;
* :mod:`repro.rrset` — reverse-reachable set sampling and max coverage;
* :mod:`repro.core` — Algorithms 1-3, TIM and TIM+;
* :mod:`repro.algorithms` — Greedy, CELF, CELF++, RIS, IRIE, SIMPATH, ...;
* :mod:`repro.api` — the unified typed surface: :class:`ExecutionPolicy`
  (one validated object for engine/jobs/tracing/ε/ℓ),
  :class:`InfluenceSession` (graph + sketch + pool facade), and the
  versioned request/response ops behind the query service and CLI;
* :mod:`repro.analysis` — Chernoff bounds, exact oracles, cost models;
* :mod:`repro.datasets` — scaled stand-ins for the paper's five datasets;
* :mod:`repro.sketch` — persistent RR-sketch index + influence query service;
* :mod:`repro.parallel` — multicore sharded RR generation (the worker pool
  behind ``ExecutionPolicy.jobs``; byte-identical results for any count);
* :mod:`repro.dynamic` — evolving graphs: edge updates + incremental
  RR-sketch repair;
* :mod:`repro.experiments` — regeneration of every evaluation table/figure.
"""

from repro.algorithms import (
    algorithm_names,
    celf,
    celf_plus_plus,
    greedy,
    irie,
    maximize_influence,
    ris,
    simpath,
)
from repro.core import IMMResult, TIMResult, imm, tim, tim_plus, weighted_tim_plus
from repro.datasets import build_dataset, dataset_names
from repro.diffusion import (
    BoundedIndependentCascade,
    IndependentCascade,
    LinearThreshold,
    TriggeringModel,
    estimate_spread,
    simulate_ic,
    simulate_lt,
)
from repro.graphs import (
    DiGraph,
    GraphBuilder,
    from_edges,
    load_edge_list,
    uniform_random_lt,
    weighted_cascade,
)
from repro.rrset import (
    FlatRRCollection,
    RRCollection,
    RRSet,
    greedy_max_coverage,
    make_rr_sampler,
)
from repro.api import (
    SCHEMA_VERSION,
    ExecutionPolicy,
    InfluenceSession,
    MarginalRequest,
    SelectRequest,
    SpreadRequest,
    StatsRequest,
    UpdateRequest,
)
from repro.dynamic import DynamicDiGraph, EdgeUpdate
from repro.parallel import ParallelSampler
from repro.sketch import InfluenceService, SketchIndex

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "algorithm_names",
    "celf",
    "celf_plus_plus",
    "greedy",
    "irie",
    "maximize_influence",
    "ris",
    "simpath",
    "IMMResult",
    "TIMResult",
    "imm",
    "tim",
    "tim_plus",
    "weighted_tim_plus",
    "build_dataset",
    "dataset_names",
    "BoundedIndependentCascade",
    "IndependentCascade",
    "LinearThreshold",
    "TriggeringModel",
    "estimate_spread",
    "simulate_ic",
    "simulate_lt",
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "load_edge_list",
    "uniform_random_lt",
    "weighted_cascade",
    "FlatRRCollection",
    "RRCollection",
    "RRSet",
    "greedy_max_coverage",
    "make_rr_sampler",
    "DynamicDiGraph",
    "EdgeUpdate",
    "ExecutionPolicy",
    "InfluenceService",
    "InfluenceSession",
    "MarginalRequest",
    "ParallelSampler",
    "SCHEMA_VERSION",
    "SelectRequest",
    "SketchIndex",
    "SpreadRequest",
    "StatsRequest",
    "UpdateRequest",
]
