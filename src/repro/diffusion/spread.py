"""Monte-Carlo estimation of the expected spread ``E[I(S)]`` (Section 2.2).

The paper estimates spreads by averaging ``r`` independent propagation runs
(``r = 10000`` for Greedy/CELF++, ``10^5`` for the reported spread figures).
:func:`estimate_spread` returns a :class:`SpreadEstimate` carrying the mean
together with the sampling uncertainty so tests can assert statistically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["SpreadEstimate", "estimate_spread", "spread_samples", "marginal_gain_estimate"]


@dataclass(frozen=True)
class SpreadEstimate:
    """Result of a Monte-Carlo spread estimation."""

    mean: float
    std: float
    num_samples: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.num_samples <= 1:
            return float("inf")
        return self.std / math.sqrt(self.num_samples)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        half = z * self.stderr
        return self.mean - half, self.mean + half

    def __float__(self) -> float:
        return self.mean


def spread_samples(graph: DiGraph, seeds, model="IC", num_samples: int = 1000, rng=None) -> np.ndarray:
    """Raw per-run activation counts as a float array of length ``num_samples``."""
    check_positive_int(num_samples, "num_samples")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    seed_list = [int(s) for s in seeds]
    counts = np.empty(num_samples, dtype=np.float64)
    for i in range(num_samples):
        counts[i] = len(resolved.simulate(graph, seed_list, source))
    return counts


def estimate_spread(
    graph: DiGraph, seeds, model="IC", num_samples: int = 1000, rng=None
) -> SpreadEstimate:
    """Estimate ``E[I(S)]`` by averaging ``num_samples`` propagation runs."""
    counts = spread_samples(graph, seeds, model=model, num_samples=num_samples, rng=rng)
    return SpreadEstimate(
        mean=float(counts.mean()),
        std=float(counts.std(ddof=1)) if num_samples > 1 else 0.0,
        num_samples=num_samples,
    )


def marginal_gain_estimate(
    graph: DiGraph, seeds, candidate: int, model="IC", num_samples: int = 1000, rng=None
) -> float:
    """Estimate ``E[I(S ∪ {v})] - E[I(S)]`` with common random seeds.

    Uses one child RNG per run shared between the two simulations so the two
    estimates are positively correlated, which shrinks the variance of their
    difference (classic common-random-numbers trick; Greedy's selection only
    depends on differences).
    """
    check_positive_int(num_samples, "num_samples")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    base = [int(s) for s in seeds]
    extended = base + [int(candidate)]
    total = 0.0
    for _ in range(num_samples):
        child_seed = source.py.getrandbits(63)
        with_candidate = len(resolved.simulate(graph, extended, resolve_rng(child_seed)))
        without_candidate = len(resolved.simulate(graph, base, resolve_rng(child_seed)))
        total += with_candidate - without_candidate
    return total / num_samples
