"""Diffusion models: IC, LT, general triggering; Monte-Carlo spread."""

from repro.diffusion.base import DiffusionModel, model_names, register_model, resolve_model
from repro.diffusion.bounded import BoundedIndependentCascade, simulate_bounded_ic
from repro.diffusion.independent_cascade import (
    IndependentCascade,
    live_edge_reachable_ic,
    simulate_ic,
)
from repro.diffusion.linear_threshold import (
    LinearThreshold,
    live_edge_reachable_lt,
    sample_lt_in_edge,
    simulate_lt,
)
from repro.diffusion.spread import (
    SpreadEstimate,
    estimate_spread,
    marginal_gain_estimate,
    spread_samples,
)
from repro.diffusion.triggering import (
    FixedTriggering,
    ICTriggering,
    LTTriggering,
    TriggeringDistribution,
    TriggeringModel,
)

__all__ = [
    "DiffusionModel",
    "model_names",
    "register_model",
    "resolve_model",
    "BoundedIndependentCascade",
    "simulate_bounded_ic",
    "IndependentCascade",
    "live_edge_reachable_ic",
    "simulate_ic",
    "LinearThreshold",
    "live_edge_reachable_lt",
    "sample_lt_in_edge",
    "simulate_lt",
    "SpreadEstimate",
    "estimate_spread",
    "marginal_gain_estimate",
    "spread_samples",
    "FixedTriggering",
    "ICTriggering",
    "LTTriggering",
    "TriggeringDistribution",
    "TriggeringModel",
]
