"""The linear threshold (LT) model.

Each node ``v`` draws a threshold ``θ_v ~ U[0, 1]``; ``v`` activates once the
total weight of its *active* in-neighbours reaches ``θ_v``.  Edge weights
must satisfy ``Σ_{u -> v} w(u, v) <= 1`` per node (the paper normalises them
to sum to exactly 1, Section 7.1).

Kempe et al. proved LT equivalent to a live-edge process in which every node
keeps *at most one* in-edge, chosen with probability equal to its weight —
this is the singleton triggering distribution of the paper's Section 7.1 and
the basis of the LT RR-set sampler.  Both formulations are implemented here
and tests check they agree in distribution.
"""

from __future__ import annotations

from collections import deque

from repro.diffusion.base import DiffusionModel, register_model
from repro.graphs.digraph import DiGraph
from repro.graphs.weights import validate_lt_weights
from repro.utils.rng import RandomSource, resolve_rng

__all__ = ["LinearThreshold", "simulate_lt", "live_edge_reachable_lt", "sample_lt_in_edge"]


class LinearThreshold(DiffusionModel):
    """Stateless LT model; influence weights live on the graph."""

    name = "LT"

    def simulate(self, graph: DiGraph, seeds, rng: RandomSource) -> set[int]:
        return simulate_lt(graph, seeds, rng)

    def validate_graph(self, graph: DiGraph) -> None:
        validate_lt_weights(graph)


def simulate_lt(graph: DiGraph, seeds, rng=None) -> set[int]:
    """One LT propagation via lazily drawn thresholds.

    Thresholds are sampled only for nodes that receive influence, so a run
    touching ``t`` nodes costs ``O(t + edges out of activated nodes)`` rather
    than ``O(n)``.
    """
    source = resolve_rng(rng)
    random01 = source.py.random
    out_adj, out_probs = graph.out_adjacency()
    activated = set(int(s) for s in seeds)
    thresholds: dict[int, float] = {}
    incoming_weight: dict[int, float] = {}
    queue = deque(activated)
    while queue:
        current = queue.popleft()
        neighbors = out_adj[current]
        weights = out_probs[current]
        for index in range(len(neighbors)):
            target = neighbors[index]
            if target in activated:
                continue
            if target not in thresholds:
                thresholds[target] = random01()
            total = incoming_weight.get(target, 0.0) + weights[index]
            incoming_weight[target] = total
            if total >= thresholds[target]:
                activated.add(target)
                queue.append(target)
    return activated


def sample_lt_in_edge(in_neighbors: list[int], in_weights: list[float], random01) -> int | None:
    """Sample the single live in-neighbour of a node (or ``None``).

    Inverse-CDF over the in-edge weights: with probability ``w_i`` pick
    neighbour ``i``; with probability ``1 - Σ w_i`` pick nobody.  ``random01``
    is a callable returning U[0, 1) floats (passed in so callers can reuse a
    bound method in hot loops).
    """
    if not in_neighbors:
        return None
    draw = random01()
    cumulative = 0.0
    for index in range(len(in_neighbors)):
        cumulative += in_weights[index]
        if draw < cumulative:
            return in_neighbors[index]
    return None


def live_edge_reachable_lt(graph: DiGraph, seeds, rng=None) -> set[int]:
    """Live-edge formulation: every node keeps at most one in-edge.

    Samples the full live graph then takes forward reachability from the
    seeds — ``O(n)`` per run but a literal transcription of the triggering
    construction, which makes it the reference implementation for tests.
    """
    source = resolve_rng(rng)
    random01 = source.py.random
    in_adj, in_weights = graph.in_adjacency()
    chosen_parent: list[int | None] = [
        sample_lt_in_edge(in_adj[v], in_weights[v], random01) for v in range(graph.n)
    ]
    live_out: list[list[int]] = [[] for _ in range(graph.n)]
    for v in range(graph.n):
        parent = chosen_parent[v]
        if parent is not None:
            live_out[parent].append(v)
    visited = set(int(s) for s in seeds)
    queue = deque(visited)
    while queue:
        current = queue.popleft()
        for target in live_out[current]:
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited


register_model("lt", LinearThreshold)
